"""Unit tests for the receiver application instrumentation."""

import pytest

from repro.net import Address, ApplicationData, Host, Ipv6Packet, Network
from repro.workloads import ReceiverApp

GROUP = Address("ff1e::1")
SRC = Address("2001:db8:1::10")


def receiver(seed=1):
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64")
    h = Host(net.sim, "H", tracer=net.tracer, rng=net.rng)
    h.attach_to(link, link.prefix.address_for_host(1))
    net.register_node(h)
    h.joined_groups.add(GROUP)
    return net, h, ReceiverApp(h)


def inject(net, h, seqno, at, flow="f", sent_at=None):
    pkt = Ipv6Packet(
        SRC, GROUP,
        ApplicationData(seqno=seqno, flow=flow,
                        sent_at=sent_at if sent_at is not None else at),
    )
    net.sim.schedule_at(at, h.handle_multicast, pkt, h.interfaces[0])


class TestDeliveries:
    def test_records_deliveries(self):
        net, h, app = receiver()
        inject(net, h, 0, 1.0)
        inject(net, h, 1, 2.0)
        net.sim.run()
        assert app.unique_count == 2
        assert [d.seqno for d in app.deliveries] == [0, 1]

    def test_duplicates_flagged(self):
        net, h, app = receiver()
        inject(net, h, 0, 1.0)
        inject(net, h, 0, 2.0)
        net.sim.run()
        assert app.unique_count == 1
        assert app.duplicate_count == 1
        assert [d.duplicate for d in app.deliveries] == [False, True]

    def test_flows_independent(self):
        net, h, app = receiver()
        inject(net, h, 0, 1.0, flow="a")
        inject(net, h, 0, 2.0, flow="b")
        net.sim.run()
        assert app.unique_count == 2
        assert app.delivered_seqnos("a") == [0]

    def test_latency_computed(self):
        net, h, app = receiver()
        inject(net, h, 0, 5.0, sent_at=4.9)
        net.sim.run()
        assert app.deliveries[0].latency == pytest.approx(0.1)


class TestProbes:
    def _filled(self):
        net, h, app = receiver()
        for k in range(5):
            inject(net, h, k, 1.0 + k)
        net.sim.run()
        return app

    def test_first_delivery_after(self):
        app = self._filled()
        assert app.first_delivery_after(2.5).seqno == 2
        assert app.first_delivery_after(3.0).seqno == 2
        assert app.first_delivery_after(99.0) is None

    def test_join_delay(self):
        app = self._filled()
        assert app.join_delay(2.5) == pytest.approx(0.5)
        assert app.join_delay(99.0) is None

    def test_mean_latency_window(self):
        net, h, app = receiver()
        inject(net, h, 0, 1.0, sent_at=0.8)
        inject(net, h, 1, 5.0, sent_at=4.9)
        net.sim.run()
        assert app.mean_latency(since=4.0) == pytest.approx(0.1)
        assert app.mean_latency(since=90.0) is None

    def test_mean_latency_excludes_duplicates(self):
        net, h, app = receiver()
        inject(net, h, 0, 1.0, sent_at=0.9)
        inject(net, h, 0, 9.0, sent_at=0.9)  # dup with huge 'latency'
        net.sim.run()
        assert app.mean_latency() == pytest.approx(0.1)

    def test_loss_count(self):
        net, h, app = receiver()
        for k in (0, 1, 4):
            inject(net, h, k, 1.0 + k, flow="f")
        net.sim.run()
        assert app.loss_count("f", 0, 4) == 2

    def test_deliveries_between(self):
        app = self._filled()
        window = app.deliveries_between(2.0, 4.0)
        assert [d.seqno for d in window] == [1, 2, 3]
