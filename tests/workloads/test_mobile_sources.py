"""Traffic sources driving mobile nodes: losses and mode interactions."""

import pytest

from repro.mipv6 import DeliveryMode, MobileIpv6Config, MobileNode
from repro.net import Address
from repro.workloads import CbrSource, OnOffSource

from topo_helpers import build_line

GROUP = Address("ff1e::1")


def mobile_sender(send_mode=DeliveryMode.LOCAL, handoff_delay=0.5):
    topo = build_line(2, use_home_agents=True)
    mn = MobileNode(
        topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
        home_link=topo.links[0],
        home_agent_address=topo.routers[0].address_on(topo.links[0]),
        host_id=0x64,
        config=MobileIpv6Config(handoff_delay=handoff_delay),
        send_mode=send_mode,
    )
    topo.net.register_node(mn)
    return topo, mn


class TestCbrOnMobileNode:
    def test_datagrams_lost_while_detached(self):
        topo, mn = mobile_sender(handoff_delay=2.0)
        src = CbrSource(mn, GROUP, packet_interval=0.1)
        src.start(at=1.0)
        topo.net.run(until=5.0)
        mn.move_to(topo.links[2])  # 2 s detached
        topo.net.run(until=10.0)
        # ~20 ticks fall into the detached window
        assert 15 <= mn.handoff_losses <= 25
        assert src.sent > mn.handoff_losses

    def test_source_uses_tunnel_mode_after_move(self):
        topo, mn = mobile_sender(send_mode=DeliveryMode.HA_TUNNEL)
        src = CbrSource(mn, GROUP, packet_interval=0.1)
        src.start(at=1.0)
        topo.net.run(until=3.0)
        assert mn.load["encapsulations"] == 0  # at home: native
        mn.move_to(topo.links[2])
        topo.net.run(until=20.0)
        assert mn.load["encapsulations"] > 100  # away: tunneled
        assert topo.routers[0].reverse_tunneled > 100

    def test_erroneous_window_counted(self):
        topo, mn = mobile_sender()
        src = CbrSource(mn, GROUP, packet_interval=0.05)
        src.start(at=1.0)
        topo.net.run(until=3.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        # attach at +0.5s, CoA at +2.0s: ~1.5s of stale-source sends
        stale = topo.net.tracer.count("mobility", event="erroneous-source-send")
        assert 20 <= stale <= 40


class TestOnOffDeterminism:
    def test_same_seed_same_phases(self):
        def run(seed):
            topo = build_line(1, seed=seed)
            host = topo.host_on(0, 100, "S")
            src = OnOffSource(host, GROUP, packet_interval=0.1,
                              mean_on=3.0, mean_off=3.0, flow="d")
            src.start()
            topo.net.run(until=60.0)
            return src.sent

        assert run(5) == run(5)

    def test_stop_mid_phase(self):
        topo = build_line(1)
        host = topo.host_on(0, 100, "S")
        src = OnOffSource(host, GROUP, packet_interval=0.1,
                          mean_on=5.0, mean_off=5.0)
        src.start()
        topo.net.run(until=10.0)
        count = src.sent
        src.stop()
        topo.net.run(until=60.0)
        assert src.sent == count
