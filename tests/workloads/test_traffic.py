"""Unit tests for traffic sources."""

import pytest

from repro.net import Address, Host, Network
from repro.workloads import CbrSource, OnOffSource

GROUP = Address("ff1e::1")


def host_pair(seed=1):
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64")
    a = Host(net.sim, "A", tracer=net.tracer, rng=net.rng)
    a.attach_to(link, link.prefix.address_for_host(1))
    b = Host(net.sim, "B", tracer=net.tracer, rng=net.rng)
    b.attach_to(link, link.prefix.address_for_host(2))
    net.register_node(a)
    net.register_node(b)
    b.joined_groups.add(GROUP)
    return net, a, b


class TestCbrSource:
    def test_sends_at_rate(self):
        net, a, b = host_pair()
        src = CbrSource(a, GROUP, packet_interval=0.5)
        src.start()
        net.sim.run(until=10.0)
        assert src.sent == 21  # t=0..10 inclusive

    def test_start_at_absolute_time(self):
        net, a, b = host_pair()
        src = CbrSource(a, GROUP, packet_interval=1.0)
        src.start(at=5.0)
        net.sim.run(until=7.5)
        assert src.sent == 3  # 5, 6, 7

    def test_stop(self):
        net, a, b = host_pair()
        src = CbrSource(a, GROUP, packet_interval=1.0)
        src.start()
        net.sim.run(until=3.5)
        src.stop()
        net.sim.run(until=10.0)
        assert src.sent == 4

    def test_seqnos_monotonic(self):
        net, a, b = host_pair()
        got = []
        b.on_app_data(lambda p, m: got.append(m.seqno))
        CbrSource(a, GROUP, packet_interval=1.0).start()
        net.sim.run(until=5.0)
        assert got == list(range(len(got)))
        assert len(got) >= 5

    def test_sent_at_stamped(self):
        net, a, b = host_pair()
        stamps = []
        b.on_app_data(lambda p, m: stamps.append((m.sent_at, net.sim.now)))
        CbrSource(a, GROUP, packet_interval=1.0).start(at=2.0)
        net.sim.run(until=4.5)
        for sent_at, arrived in stamps:
            assert sent_at <= arrived
            assert arrived - sent_at < 0.01

    def test_bit_rate(self):
        net, a, b = host_pair()
        src = CbrSource(a, GROUP, packet_interval=0.1, payload_bytes=1000)
        assert src.bit_rate == pytest.approx(80_000.0)

    def test_invalid_interval(self):
        net, a, b = host_pair()
        with pytest.raises(ValueError):
            CbrSource(a, GROUP, packet_interval=0.0)

    def test_unique_flow_names(self):
        net, a, b = host_pair()
        s1 = CbrSource(a, GROUP)
        s2 = CbrSource(a, GROUP)
        assert s1.flow != s2.flow

    def test_start_idempotent(self):
        net, a, b = host_pair()
        src = CbrSource(a, GROUP, packet_interval=1.0)
        src.start()
        src.start()
        net.sim.run(until=3.5)
        assert src.sent == 4  # not doubled


class TestOnOffSource:
    def test_sends_less_than_cbr(self):
        net, a, b = host_pair()
        src = OnOffSource(a, GROUP, packet_interval=0.1, mean_on=5.0, mean_off=5.0)
        src.start()
        net.sim.run(until=100.0)
        cbr_equiv = 1001
        assert 0 < src.sent < cbr_equiv

    def test_phases_alternate(self):
        net, a, b = host_pair()
        got = []
        b.on_app_data(lambda p, m: got.append(net.sim.now))
        src = OnOffSource(a, GROUP, packet_interval=0.1, mean_on=2.0, mean_off=2.0)
        src.start()
        net.sim.run(until=60.0)
        gaps = [y - x for x, y in zip(got, got[1:])]
        assert any(g > 0.5 for g in gaps), "no off-phase observed"

    def test_invalid_phases(self):
        net, a, b = host_pair()
        with pytest.raises(ValueError):
            OnOffSource(a, GROUP, mean_on=0.0)
