"""Unit tests for home-agent internals not covered by the mobility flows."""

import pytest

from repro.mipv6 import (
    BindingUpdateOption,
    DeliveryMode,
    HomeAgent,
    MobileNode,
    MulticastGroupListSubOption,
)
from repro.net import Address, ApplicationData, ControlPayload, Host, Ipv6Packet

from topo_helpers import build_line

GROUP = Address("ff1e::1")
GROUP2 = Address("ff1e::2")


def setup():
    topo = build_line(2, use_home_agents=True)
    ha = topo.routers[0]
    return topo, ha


def inject_bu(ha, home, coa, lifetime=100.0, seq=1, groups=None, home_reg=True):
    subs = ()
    if groups is not None:
        subs = (MulticastGroupListSubOption(groups),)
    bu = BindingUpdateOption(
        home, coa, lifetime, sequence=seq, home_registration=home_reg,
        sub_options=subs,
    )
    pkt = Ipv6Packet(coa, ha.primary_address(), ControlPayload(), dest_options=(bu,))
    ha.receive(pkt, ha.interfaces[0])


class TestHomeIfaceLookup:
    def test_serves_attached_prefixes(self):
        topo, ha = setup()
        assert ha.serves_home_address(topo.links[0].prefix.address_for_host(9))
        assert ha.serves_home_address(topo.links[1].prefix.address_for_host(9))
        assert not ha.serves_home_address(topo.links[2].prefix.address_for_host(9))

    def test_home_iface_for(self):
        topo, ha = setup()
        iface = ha.home_iface_for(topo.links[0].prefix.address_for_host(9))
        assert iface is not None and iface.link is topo.links[0]


class TestBindingUpdateEdgeCases:
    def test_non_home_registration_ignored(self):
        topo, ha = setup()
        home = topo.links[0].prefix.address_for_host(0x70)
        coa = topo.links[2].prefix.address_for_host(0x70)
        inject_bu(ha, home, coa, home_reg=False)
        assert ha.binding_cache.get(home) is None

    def test_lifetime_capped_at_config(self):
        topo, ha = setup()
        home = topo.links[0].prefix.address_for_host(0x70)
        coa = topo.links[2].prefix.address_for_host(0x70)
        inject_bu(ha, home, coa, lifetime=10_000.0)
        entry = ha.binding_cache.get(home)
        assert entry.lifetime <= ha.mipv6_config.binding_lifetime

    def test_group_list_absent_keeps_groups(self):
        topo, ha = setup()
        home = topo.links[0].prefix.address_for_host(0x70)
        coa = topo.links[2].prefix.address_for_host(0x70)
        inject_bu(ha, home, coa, seq=1, groups=[GROUP])
        inject_bu(ha, home, coa, seq=2, groups=None)  # refresh, no sub-option
        assert ha.binding_cache.get(home).groups == {GROUP}
        assert ha.groups_on_behalf() == [GROUP]

    def test_empty_group_list_clears_groups(self):
        topo, ha = setup()
        home = topo.links[0].prefix.address_for_host(0x70)
        coa = topo.links[2].prefix.address_for_host(0x70)
        inject_bu(ha, home, coa, seq=1, groups=[GROUP])
        inject_bu(ha, home, coa, seq=2, groups=[])
        assert ha.groups_on_behalf() == []

    def test_group_refcount_across_two_mobiles(self):
        topo, ha = setup()
        h1 = topo.links[0].prefix.address_for_host(0x70)
        h2 = topo.links[0].prefix.address_for_host(0x71)
        coa1 = topo.links[2].prefix.address_for_host(0x70)
        coa2 = topo.links[2].prefix.address_for_host(0x71)
        inject_bu(ha, h1, coa1, seq=1, groups=[GROUP, GROUP2])
        inject_bu(ha, h2, coa2, seq=1, groups=[GROUP])
        assert ha.groups_on_behalf() == [GROUP, GROUP2]
        # first mobile drops both groups; GROUP still held for the second
        inject_bu(ha, h1, coa1, seq=2, groups=[])
        assert ha.groups_on_behalf() == [GROUP]
        assert GROUP in ha.pim.node_groups
        assert GROUP2 not in ha.pim.node_groups

    def test_deregistration_sends_ack_to_home_address(self):
        topo, ha = setup()
        home = topo.links[0].prefix.address_for_host(0x70)
        coa = topo.links[2].prefix.address_for_host(0x70)
        inject_bu(ha, home, coa, seq=1)
        inject_bu(ha, home, home, lifetime=0.0, seq=2)
        assert ha.binding_cache.get(home) is None
        ev = topo.net.tracer.last("mipv6", node="R0", event="ba-sent")
        assert ev.detail["to"] == str(home)


class TestReverseTunnel:
    def test_unserved_source_rejected(self):
        """A tunneled multicast datagram whose inner source is not on any
        of this HA's links must be rejected, not forwarded."""
        topo, ha = setup()
        foreign_src = topo.links[2].prefix.address_for_host(0x99)
        inner = Ipv6Packet(foreign_src, GROUP, ApplicationData(seqno=0))
        outer = inner.encapsulate(foreign_src, ha.primary_address())
        ha.receive(outer, ha.interfaces[0])
        assert topo.net.tracer.count("mipv6", event="reverse-tunnel-rejected") == 1
        assert ha.reverse_tunneled == 0

    def test_tunneled_unicast_falls_through(self):
        """IPv6-in-IPv6 unicast (not multicast) uses default handling."""
        topo, ha = setup()
        got = []
        ha.register_message_handler(
            ApplicationData, lambda p, m, i: got.append(m.seqno)
        )
        inner = Ipv6Packet(
            topo.links[2].prefix.address_for_host(0x99),
            ha.primary_address(),
            ApplicationData(seqno=5),
        )
        outer = inner.encapsulate(
            topo.links[2].prefix.address_for_host(0x99), ha.primary_address()
        )
        ha.receive(outer, ha.interfaces[0])
        assert got == [5]


class TestIntercept:
    def test_intercepts_only_cached_addresses(self):
        topo, ha = setup()
        home = topo.links[0].prefix.address_for_host(0x70)
        assert not ha.intercepts(home)
        inject_bu(ha, home, topo.links[2].prefix.address_for_host(0x70))
        assert ha.intercepts(home)

    def test_proxy_not_removed_if_mn_reclaimed_address(self):
        """When the MN returns home and re-registers its own address in
        the neighbor cache, a later binding teardown must not unregister
        the MN's entry."""
        topo = build_line(2, use_home_agents=True)
        ha = topo.routers[0]
        mn = MobileNode(
            topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
            home_link=topo.links[0],
            home_agent_address=ha.address_on(topo.links[0]),
            host_id=0x64,
        )
        topo.net.register_node(mn)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        mn.move_to(topo.links[0])
        topo.net.run(until=20.0)
        # home link resolves the address to the MN (not to the HA, and
        # not dropped by the binding teardown)
        assert topo.links[0].resolve(mn.home_address) is mn.iface
