"""Unit tests for the binding cache."""

import pytest

from repro.mipv6 import BindingCache
from repro.net import Address
from repro.sim import Simulator

HOME = Address("2001:db8:4::67")
COA1 = Address("2001:db8:6::67")
COA2 = Address("2001:db8:1::67")
G1, G2 = Address("ff1e::1"), Address("ff1e::2")


class TestBindingCache:
    def test_update_creates_entry(self, sim):
        cache = BindingCache(sim)
        entry = cache.update(HOME, COA1, lifetime=100.0)
        assert cache.get(HOME) is entry
        assert entry.care_of_address == COA1
        assert HOME in cache and len(cache) == 1

    def test_update_refreshes_coa(self, sim):
        cache = BindingCache(sim)
        cache.update(HOME, COA1, lifetime=100.0, sequence=1)
        cache.update(HOME, COA2, lifetime=100.0, sequence=2)
        assert cache.get(HOME).care_of_address == COA2

    def test_stale_sequence_ignored(self, sim):
        cache = BindingCache(sim)
        cache.update(HOME, COA1, lifetime=100.0, sequence=5)
        cache.update(HOME, COA2, lifetime=100.0, sequence=3)
        assert cache.get(HOME).care_of_address == COA1

    def test_expiry_removes_and_notifies(self, sim):
        expired = []
        cache = BindingCache(sim, on_expired=expired.append)
        cache.update(HOME, COA1, lifetime=50.0)
        sim.run(until=49.0)
        assert HOME in cache
        sim.run(until=51.0)
        assert HOME not in cache
        assert len(expired) == 1 and expired[0].home_address == HOME

    def test_refresh_extends_lifetime(self, sim):
        cache = BindingCache(sim)
        cache.update(HOME, COA1, lifetime=50.0, sequence=1)
        sim.run(until=40.0)
        cache.update(HOME, COA1, lifetime=50.0, sequence=2)
        sim.run(until=60.0)
        assert HOME in cache
        sim.run(until=95.0)
        assert HOME not in cache

    def test_remove_deregisters(self, sim):
        expired = []
        cache = BindingCache(sim, on_expired=expired.append)
        cache.update(HOME, COA1, lifetime=50.0)
        removed = cache.remove(HOME)
        assert removed is not None
        sim.run()
        assert expired == []  # explicit removal is not an expiry

    def test_remove_absent_returns_none(self, sim):
        assert BindingCache(sim).remove(HOME) is None

    def test_groups_tracked(self, sim):
        cache = BindingCache(sim)
        cache.update(HOME, COA1, lifetime=100.0, groups=[G1, G2])
        assert cache.get(HOME).groups == {G1, G2}

    def test_groups_none_keeps_existing(self, sim):
        cache = BindingCache(sim)
        cache.update(HOME, COA1, lifetime=100.0, sequence=1, groups=[G1])
        cache.update(HOME, COA2, lifetime=100.0, sequence=2, groups=None)
        assert cache.get(HOME).groups == {G1}

    def test_subscribers_of(self, sim):
        cache = BindingCache(sim)
        other = Address("2001:db8:4::68")
        cache.update(HOME, COA1, lifetime=100.0, groups=[G1])
        cache.update(other, COA2, lifetime=100.0, groups=[G1, G2])
        assert {e.home_address for e in cache.subscribers_of(G1)} == {HOME, other}
        assert {e.home_address for e in cache.subscribers_of(G2)} == {other}

    def test_all_groups_union(self, sim):
        cache = BindingCache(sim)
        other = Address("2001:db8:4::68")
        cache.update(HOME, COA1, lifetime=100.0, groups=[G1])
        cache.update(other, COA2, lifetime=100.0, groups=[G2])
        assert cache.all_groups() == {G1, G2}

    def test_registered_at_stamp(self, sim):
        cache = BindingCache(sim)
        sim.run(until=12.0)
        entry = cache.update(HOME, COA1, lifetime=100.0)
        assert entry.registered_at == 12.0
