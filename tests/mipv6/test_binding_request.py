"""Tests for Binding Request probing (draft §5.3).

The home agent probes a mobile whose refreshes stopped arriving at 90%
of the binding lifetime; a reachable mobile answers with a fresh
Binding Update, keeping the binding (and any on-behalf multicast
memberships) alive.
"""

import pytest

from repro.mipv6 import DeliveryMode, MobileIpv6Config, MobileNode
from repro.net import Address

from topo_helpers import build_line

GROUP = Address("ff1e::1")


def setup(refresh_interval=200.0, lifetime=30.0, recv=DeliveryMode.LOCAL):
    """A deliberately lazy mobile: its own refresh interval exceeds the
    binding lifetime, so only the HA's probe can keep the binding."""
    topo = build_line(2, use_home_agents=True)
    ha = topo.routers[0]
    mn = MobileNode(
        topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
        home_link=topo.links[0],
        home_agent_address=ha.address_on(topo.links[0]),
        host_id=0x64,
        config=MobileIpv6Config(
            binding_lifetime=lifetime,
            binding_refresh_interval=min(refresh_interval, lifetime - 1.0),
        ),
        recv_mode=recv,
    )
    topo.net.register_node(mn)
    return topo, ha, mn


class TestBindingRequest:
    def test_probe_sent_near_expiry(self):
        topo, ha, mn = setup()
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        # break the MN's own refresh timer to simulate a lazy client
        topo.net.run(until=5.0)
        mn._refresh_timer.stop()
        topo.net.run(until=40.0)
        assert topo.net.tracer.count(
            "mipv6", node="R0", event="binding-request-sent"
        ) >= 1

    def test_probe_answered_keeps_binding_alive(self):
        topo, ha, mn = setup()
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=5.0)
        mn._refresh_timer.stop()  # MN would otherwise let it lapse
        topo.net.run(until=100.0)
        # the probe re-elicited a BU; the BA restarted the MN's refresh
        # cycle, so the binding stays alive from then on
        assert ha.binding_cache.get(mn.home_address) is not None
        assert topo.net.tracer.count(
            "mipv6", node="MN", event="binding-request-received"
        ) >= 1

    def test_unanswerable_probe_lets_binding_expire(self):
        topo, ha, mn = setup()
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=5.0)
        mn._refresh_timer.stop()
        mn.iface.detach()  # gone for good
        topo.net.run(until=60.0)
        assert ha.binding_cache.get(mn.home_address) is None

    def test_probe_not_needed_with_healthy_refreshes(self):
        """With a normal refresh interval the probe event is always
        rescheduled before it fires."""
        topo, ha, mn = setup(lifetime=40.0, refresh_interval=10.0)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=120.0)
        assert topo.net.tracer.count(
            "mipv6", node="R0", event="binding-request-sent"
        ) == 0
        assert ha.binding_cache.get(mn.home_address) is not None

    def test_probe_keeps_group_memberships(self):
        topo, ha, mn = setup(recv=DeliveryMode.HA_TUNNEL)
        mn.join_group(GROUP)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=5.0)
        mn._refresh_timer.stop()
        topo.net.run(until=100.0)
        assert ha.groups_on_behalf() == [GROUP]
