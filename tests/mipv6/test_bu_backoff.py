"""Exponential backoff on Binding Update retransmission (draft §5.1).

The draft prescribes retransmitting an unacknowledged BU "using an
exponential back-off process"; the previous fixed-interval behavior is
recoverable with ``bu_backoff_factor=1.0``.  Acks reset the process,
so loss-free handovers are timing-identical either way.
"""

import pytest

from repro.mipv6 import DeliveryMode, HomeAgent, MobileIpv6Config, MobileNode
from repro.net import Network


def lone_ha_network(config, seed=3):
    """One HA on the home link, a foreign link to move to."""
    net = Network(seed=seed)
    home = net.add_link("home", "2001:db8:1::/64")
    backbone = net.add_link("backbone", "2001:db8:2::/64")
    foreign = net.add_link("foreign", "2001:db8:3::/64")
    ha = HomeAgent(net.sim, "HA", tracer=net.tracer, rng=net.rng)
    ha.attach_to(home, home.prefix.address_for_host(1))
    ha.attach_to(backbone, backbone.prefix.address_for_host(1))
    net.register_node(ha)
    net.on_start(ha.start)
    edge = HomeAgent(net.sim, "EDGE", tracer=net.tracer, rng=net.rng)
    edge.attach_to(backbone, backbone.prefix.address_for_host(3))
    edge.attach_to(foreign, foreign.prefix.address_for_host(3))
    net.register_node(edge)
    net.on_start(edge.start)
    mn = MobileNode(
        net.sim, "MN", tracer=net.tracer, rng=net.rng,
        home_link=home,
        home_agent_address=ha.address_on(home),
        host_id=0x64,
        config=config,
        recv_mode=DeliveryMode.HA_TUNNEL,
        send_mode=DeliveryMode.HA_TUNNEL,
    )
    net.register_node(mn)
    return net, (home, backbone, foreign), (ha, edge), mn


def kill(ha, net):
    for iface in list(ha.interfaces):
        iface.detach()
    net.build_routes()


def bu_times(net):
    times = []
    net.tracer.add_listener(
        lambda ev: times.append(ev.time)
        if ev.node == "MN" and ev.detail.get("event") == "bu-sent"
        else None,
        categories=("mipv6",),
    )
    return times


def test_backoff_doubles_then_caps():
    cfg = MobileIpv6Config(
        bu_retransmit_interval=1.0,
        bu_backoff_factor=2.0,
        bu_retransmit_max_interval=4.0,
        bu_max_retransmits=6,
    )
    net, links, (ha, edge), mn = lone_ha_network(cfg)
    times = bu_times(net)
    net.run(until=1.0)
    kill(ha, net)
    mn.move_to(links[2])
    net.run(until=30.0)
    gaps = [round(b - a, 6) for a, b in zip(times, times[1:])]
    # 1, 2, 4 then capped at the max interval
    assert gaps[:4] == [1.0, 2.0, 4.0, 4.0]


def test_factor_one_restores_fixed_interval():
    cfg = MobileIpv6Config(
        bu_retransmit_interval=1.0,
        bu_backoff_factor=1.0,
        bu_max_retransmits=4,
    )
    net, links, (ha, edge), mn = lone_ha_network(cfg)
    times = bu_times(net)
    net.run(until=1.0)
    kill(ha, net)
    mn.move_to(links[2])
    net.run(until=20.0)
    gaps = [round(b - a, 6) for a, b in zip(times, times[1:])]
    assert len(gaps) >= 3
    assert all(g == 1.0 for g in gaps)


def test_ack_resets_backoff():
    cfg = MobileIpv6Config(
        bu_retransmit_interval=1.0,
        bu_backoff_factor=2.0,
        bu_retransmit_max_interval=8.0,
    )
    net, links, (ha, edge), mn = lone_ha_network(cfg)
    net.run(until=1.0)
    mn.move_to(links[2])
    net.run(until=10.0)
    # registration succeeded: the counter is back to zero
    assert mn._bu_retries == 0
    assert ha.binding_cache.get(mn.home_address) is not None


def test_config_validation():
    with pytest.raises(ValueError):
        MobileIpv6Config(bu_backoff_factor=0.9)
    with pytest.raises(ValueError):
        MobileIpv6Config(
            bu_retransmit_interval=2.0, bu_retransmit_max_interval=1.0
        )
