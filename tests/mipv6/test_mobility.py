"""Integration tests: mobile node <-> home agent over a small topology."""

import pytest

from repro.mipv6 import DeliveryMode, MobileIpv6Config, MobileNode
from repro.net import Address, ApplicationData, Host, Ipv6Packet

from topo_helpers import build_line

GROUP = Address("ff1e::1")


def make_mobile(topo, recv=DeliveryMode.LOCAL, send=DeliveryMode.LOCAL,
                config=None, host_id=0x64, name="MN"):
    """Mobile node homed on the first link of a line topology."""
    home = topo.links[0]
    ha = topo.routers[0]
    mn = MobileNode(
        topo.net.sim,
        name,
        tracer=topo.net.tracer,
        rng=topo.net.rng,
        home_link=home,
        home_agent_address=ha.address_on(home),
        host_id=host_id,
        config=config,
        recv_mode=recv,
        send_mode=send,
    )
    topo.net.register_node(mn)
    return mn, ha


class TestHandoffPipeline:
    def test_initially_at_home(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo)
        assert mn.at_home
        assert mn.current_source_address() == mn.home_address

    def test_handoff_stages_traced_in_order(self):
        cfg = MobileIpv6Config(
            handoff_delay=0.1, movement_detection_delay=1.0, coa_config_delay=0.5
        )
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, config=cfg)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        t = topo.net.tracer
        detach = t.first("mobility", node="MN", event="detached")
        attach = t.first("mobility", node="MN", event="attached")
        detect = t.first("mobility", node="MN", event="movement-detected")
        coa = t.first("mobility", node="MN", event="coa-configured")
        assert detach.time == 1.0
        assert attach.time == pytest.approx(1.1)
        assert detect.time == pytest.approx(2.1)
        assert coa.time == pytest.approx(2.6)

    def test_coa_has_foreign_prefix(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        assert topo.links[2].prefix.contains(mn.care_of_address)
        assert not mn.at_home

    def test_binding_registered_at_home_agent(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        entry = ha.binding_cache.get(mn.home_address)
        assert entry is not None
        assert entry.care_of_address == mn.care_of_address

    def test_binding_ack_received_and_rtt_recorded(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        assert len(mn.bu_rtts) == 1
        assert 0 < mn.bu_rtts[0] < 0.1

    def test_binding_refreshed_periodically(self):
        cfg = MobileIpv6Config(binding_lifetime=40.0, binding_refresh_interval=15.0)
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, config=cfg)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=100.0)
        # binding survives well past the lifetime thanks to refreshes
        assert ha.binding_cache.get(mn.home_address) is not None
        assert topo.net.tracer.count("mipv6", node="MN", event="bu-sent") >= 4

    def test_binding_expires_without_refresh(self):
        cfg = MobileIpv6Config(binding_lifetime=20.0, binding_refresh_interval=15.0)
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, config=cfg)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=5.0)
        # silence the MN's refreshes by detaching it (it vanished)
        mn.iface.detach()
        topo.net.run(until=40.0)
        assert ha.binding_cache.get(mn.home_address) is None
        assert topo.net.tracer.count("mipv6", event="binding-expired") == 1


class TestUnicastIntercept:
    def test_home_agent_tunnels_unicast_to_coa(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo)
        peer = topo.host_on(1, 0x99, "PEER")
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        got = []
        mn.register_message_handler(ApplicationData, lambda p, m, i: got.append(m.seqno))
        peer.route_and_send(
            Ipv6Packet(peer.primary_address(), mn.home_address, ApplicationData(seqno=4))
        )
        topo.net.run(until=12.0)
        assert got == [4]
        assert ha.load["encapsulations"] >= 1
        assert mn.load["decapsulations"] >= 1

    def test_proxy_removed_after_return_home(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        mn.move_to(topo.links[0])
        topo.net.run(until=20.0)
        assert mn.at_home
        assert ha.binding_cache.get(mn.home_address) is None
        # the home link resolves the address to the MN again
        assert topo.links[0].resolve(mn.home_address) is mn.iface


class TestErroneousSourceWindow:
    def test_stale_source_before_coa(self):
        """§4.3.1: until movement detection + CoA config complete, outgoing
        datagrams carry the old source address."""
        cfg = MobileIpv6Config(movement_detection_delay=2.0, coa_config_delay=1.0)
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, config=cfg)
        topo.net.run(until=1.0)
        home = mn.home_address
        mn.move_to(topo.links[2])
        topo.net.run(until=1.5)  # attached at 1.1, CoA not before 4.1
        pkt = mn.send_app_multicast(GROUP, ApplicationData(seqno=0))
        assert pkt is not None and pkt.src == home
        assert topo.net.tracer.count("mobility", event="erroneous-source-send") == 1

    def test_detached_sends_lost(self):
        cfg = MobileIpv6Config(handoff_delay=1.0)
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, config=cfg)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        # still detached (handoff takes 1 s)
        assert mn.send_app_multicast(GROUP, ApplicationData(seqno=0)) is None
        assert mn.handoff_losses == 1

    def test_local_send_uses_coa_after_configuration(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, send=DeliveryMode.LOCAL)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        pkt = mn.send_app_multicast(GROUP, ApplicationData(seqno=0))
        assert pkt.src == mn.care_of_address

    def test_tunnel_send_wraps_home_address(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, send=DeliveryMode.HA_TUNNEL)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        pkt = mn.send_app_multicast(GROUP, ApplicationData(seqno=0))
        assert pkt.is_tunneled
        assert pkt.src == mn.care_of_address
        assert pkt.dst == mn.home_agent_address
        assert pkt.inner.src == mn.home_address
        assert pkt.inner.dst == GROUP


class TestGroupListSync:
    def test_bu_carries_group_list_in_tunnel_mode(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, recv=DeliveryMode.HA_TUNNEL)
        mn.join_group(GROUP)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        ev = topo.net.tracer.last("mipv6", node="MN", event="bu-sent")
        assert ev.detail["groups"] == [str(GROUP)]
        assert ha.groups_on_behalf() == [GROUP]
        assert GROUP in ha.pim.node_groups

    def test_join_while_away_updates_home_agent(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, recv=DeliveryMode.HA_TUNNEL)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        assert ha.groups_on_behalf() == []
        mn.join_group(GROUP)
        topo.net.run(until=15.0)
        assert ha.groups_on_behalf() == [GROUP]

    def test_leave_while_away_updates_home_agent(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, recv=DeliveryMode.HA_TUNNEL)
        mn.join_group(GROUP)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        mn.leave_group(GROUP)
        topo.net.run(until=15.0)
        assert ha.groups_on_behalf() == []

    def test_local_mode_bu_has_no_group_list(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, recv=DeliveryMode.LOCAL)
        mn.join_group(GROUP)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        ev = topo.net.tracer.last("mipv6", node="MN", event="bu-sent")
        assert ev.detail["groups"] == []
        assert ha.groups_on_behalf() == []

    def test_binding_expiry_drops_on_behalf_groups(self):
        cfg = MobileIpv6Config(binding_lifetime=20.0, binding_refresh_interval=15.0)
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, recv=DeliveryMode.HA_TUNNEL, config=cfg)
        mn.join_group(GROUP)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=5.0)
        assert ha.groups_on_behalf() == [GROUP]
        mn.iface.detach()  # MN vanishes; refreshes stop
        topo.net.run(until=40.0)
        assert ha.groups_on_behalf() == []

    def test_deregistration_on_return_home(self):
        topo = build_line(2, use_home_agents=True)
        mn, ha = make_mobile(topo, recv=DeliveryMode.HA_TUNNEL)
        mn.join_group(GROUP)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        mn.move_to(topo.links[0])
        topo.net.run(until=20.0)
        assert ha.groups_on_behalf() == []
        assert topo.net.tracer.count("mipv6", event="binding-deregistered") == 1


class TestBuRejection:
    def test_bu_for_foreign_home_address_rejected(self):
        """A BU whose home address is not on any of the HA's links gets a
        status-132 Binding Acknowledgement."""
        topo = build_line(2, use_home_agents=True)
        # MN homed on the *last* link, served by R1 — but we aim its BUs at R0
        last = topo.links[2]
        wrong_ha = topo.routers[0].address_on(topo.links[0])
        mn = MobileNode(
            topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
            home_link=last, home_agent_address=wrong_ha, host_id=0x64,
        )
        topo.net.register_node(mn)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[1])
        topo.net.run(until=10.0)
        assert topo.net.tracer.count("mipv6", node="R0", event="bu-rejected") >= 1
        ev = topo.net.tracer.first("mipv6", node="MN", event="ba-received")
        assert ev is not None and ev.detail["status"] == 132
