"""Unit + property tests for Mobile IPv6 option wire formats (Figure 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.net import Address
from repro.mipv6 import (
    AlternateCareOfAddressSubOption,
    BindingAckOption,
    BindingRequestOption,
    BindingUpdateOption,
    HomeAddressOption,
    MulticastGroupListSubOption,
    UniqueIdentifierSubOption,
    parse_sub_options,
)

HOME = Address("2001:db8:4::67")
COA = Address("2001:db8:6::67")

multicast_addrs = st.integers(min_value=1, max_value=2**32 - 1).map(
    lambda i: Address(Address("ff1e::").as_int() + i)
)


class TestMulticastGroupListSubOption:
    """The paper's Figure 5 proposal."""

    def test_suboption_len_is_16n(self):
        """Figure 5: 'The Sub-Option Len fields must be set to 16N'."""
        for n in (0, 1, 2, 5):
            groups = [Address(Address("ff1e::").as_int() + k + 1) for k in range(n)]
            raw = MulticastGroupListSubOption(groups).serialize()
            assert raw[1] == 16 * n

    def test_type_code(self):
        raw = MulticastGroupListSubOption([Address("ff1e::1")]).serialize()
        assert raw[0] == 3

    def test_roundtrip(self):
        groups = [Address("ff1e::1"), Address("ff1e::2")]
        opt = MulticastGroupListSubOption(groups)
        parsed = MulticastGroupListSubOption.parse(opt.data_bytes())
        assert parsed.groups == groups

    def test_rejects_unicast_group(self):
        with pytest.raises(ValueError):
            MulticastGroupListSubOption([HOME])

    def test_parse_rejects_bad_length(self):
        with pytest.raises(ValueError):
            MulticastGroupListSubOption.parse(b"\x00" * 15)

    def test_empty_list_valid(self):
        opt = MulticastGroupListSubOption([])
        assert opt.serialize() == bytes([3, 0])

    def test_size_bytes(self):
        opt = MulticastGroupListSubOption([Address("ff1e::1")])
        assert opt.size_bytes == 2 + 16

    @given(st.lists(multicast_addrs, max_size=10))
    def test_roundtrip_property(self, groups):
        opt = MulticastGroupListSubOption(groups)
        raw = opt.serialize()
        assert raw[1] == 16 * len(groups)
        (parsed,) = parse_sub_options(raw) if groups or True else []
        assert isinstance(parsed, MulticastGroupListSubOption)
        assert parsed.groups == [Address(g) for g in groups]


class TestOtherSubOptions:
    def test_unique_identifier_roundtrip(self):
        opt = UniqueIdentifierSubOption(0xBEEF)
        assert UniqueIdentifierSubOption.parse(opt.data_bytes()) == opt

    def test_unique_identifier_bad_length(self):
        with pytest.raises(ValueError):
            UniqueIdentifierSubOption.parse(b"\x00\x01\x02")

    def test_alternate_coa_roundtrip(self):
        opt = AlternateCareOfAddressSubOption(COA)
        assert AlternateCareOfAddressSubOption.parse(opt.data_bytes()) == opt

    def test_parse_sub_options_mixed(self):
        raw = (
            UniqueIdentifierSubOption(7).serialize()
            + MulticastGroupListSubOption([Address("ff1e::9")]).serialize()
        )
        a, b = parse_sub_options(raw)
        assert isinstance(a, UniqueIdentifierSubOption) and a.identifier == 7
        assert isinstance(b, MulticastGroupListSubOption)

    def test_parse_truncated_header(self):
        with pytest.raises(ValueError):
            parse_sub_options(b"\x01")

    def test_parse_truncated_body(self):
        with pytest.raises(ValueError):
            parse_sub_options(bytes([1, 10, 0, 0]))

    def test_parse_unknown_type(self):
        with pytest.raises(ValueError):
            parse_sub_options(bytes([99, 0]))


class TestBindingUpdate:
    def _bu(self, **kw):
        defaults = dict(
            home_address=HOME, care_of_address=COA, lifetime=256.0, sequence=9
        )
        defaults.update(kw)
        return BindingUpdateOption(**defaults)

    def test_roundtrip_plain(self):
        bu = self._bu()
        raw = bu.serialize()
        parsed = BindingUpdateOption.parse(raw[2:], HOME, COA)
        assert parsed.sequence == 9
        assert parsed.lifetime == 256.0
        assert parsed.ack_requested and parsed.home_registration

    def test_roundtrip_with_group_list(self):
        """The paper's 'extended Binding Update' (§4.3.2)."""
        groups = [Address("ff1e::1"), Address("ff1e::2")]
        bu = self._bu(sub_options=(MulticastGroupListSubOption(groups),))
        parsed = BindingUpdateOption.parse(bu.serialize()[2:], HOME, COA)
        assert parsed.multicast_groups() == groups

    def test_flags_roundtrip(self):
        bu = self._bu(ack_requested=False, home_registration=True)
        parsed = BindingUpdateOption.parse(bu.serialize()[2:], HOME, COA)
        assert not parsed.ack_requested and parsed.home_registration

    def test_size_matches_serialization(self):
        bu = self._bu(sub_options=(MulticastGroupListSubOption([Address("ff1e::1")]),))
        assert bu.size_bytes == len(bu.serialize())

    def test_multicast_groups_empty_without_suboption(self):
        assert self._bu().multicast_groups() == []

    def test_parse_too_short(self):
        with pytest.raises(ValueError):
            BindingUpdateOption.parse(b"\x00" * 4, HOME, COA)

    def test_describe_mentions_groups(self):
        bu = self._bu(sub_options=(MulticastGroupListSubOption([Address("ff1e::1")]),))
        assert "groups=1" in bu.describe()

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=100000),
        st.lists(multicast_addrs, max_size=6),
    )
    def test_roundtrip_property(self, seq, lifetime, groups):
        bu = BindingUpdateOption(
            HOME, COA, float(lifetime), sequence=seq,
            sub_options=(MulticastGroupListSubOption(groups),),
        )
        parsed = BindingUpdateOption.parse(bu.serialize()[2:], HOME, COA)
        assert parsed.sequence == seq
        assert parsed.lifetime == float(lifetime)
        assert parsed.multicast_groups() == [Address(g) for g in groups]


class TestBindingAckAndOthers:
    def test_ba_roundtrip(self):
        ba = BindingAckOption(status=0, sequence=5, lifetime=200.0, refresh=100.0)
        parsed = BindingAckOption.parse(ba.serialize()[2:])
        assert (parsed.status, parsed.sequence, parsed.lifetime, parsed.refresh) == (
            0, 5, 200.0, 100.0,
        )

    def test_ba_accepted_threshold(self):
        assert BindingAckOption(status=0).accepted
        assert BindingAckOption(status=127).accepted
        assert not BindingAckOption(status=128).accepted
        assert not BindingAckOption(status=132).accepted

    def test_ba_too_short(self):
        with pytest.raises(ValueError):
            BindingAckOption.parse(b"\x00" * 8)

    def test_home_address_roundtrip(self):
        opt = HomeAddressOption(HOME)
        raw = opt.serialize()
        assert raw[1] == 16
        assert HomeAddressOption.parse(raw[2:]).home_address == HOME

    def test_home_address_size(self):
        assert HomeAddressOption(HOME).size_bytes == 18

    def test_binding_request_minimal(self):
        br = BindingRequestOption()
        assert br.size_bytes == 2
        assert br.serialize() == bytes([0x08, 0])
