"""Tests for home-agent redundancy / failover.

The paper's outlook (§5) points at home agent redundancy and load
balancing (its reference [10]).  A mobile node configured with
alternate home agents rotates to the next one when Binding Updates to
the current one go unanswered.
"""

import pytest

from repro.mipv6 import DeliveryMode, HomeAgent, MobileIpv6Config, MobileNode
from repro.net import Address, ApplicationData, Host, Network
from repro.workloads import CbrSource, ReceiverApp

GROUP = Address("ff1e::1")


def dual_ha_network(seed=3):
    """Home link with two home agents, a backbone, and a foreign link."""
    net = Network(seed=seed)
    home = net.add_link("home", "2001:db8:1::/64")
    backbone = net.add_link("backbone", "2001:db8:2::/64")
    foreign = net.add_link("foreign", "2001:db8:3::/64")
    ha1 = HomeAgent(net.sim, "HA1", tracer=net.tracer, rng=net.rng)
    ha2 = HomeAgent(net.sim, "HA2", tracer=net.tracer, rng=net.rng)
    for i, ha in enumerate((ha1, ha2), start=1):
        ha.attach_to(home, home.prefix.address_for_host(i))
        ha.attach_to(backbone, backbone.prefix.address_for_host(i))
        net.register_node(ha)
        net.on_start(ha.start)
    edge = HomeAgent(net.sim, "EDGE", tracer=net.tracer, rng=net.rng)
    edge.attach_to(backbone, backbone.prefix.address_for_host(3))
    edge.attach_to(foreign, foreign.prefix.address_for_host(3))
    net.register_node(edge)
    net.on_start(edge.start)
    mn = MobileNode(
        net.sim, "MN", tracer=net.tracer, rng=net.rng,
        home_link=home,
        home_agent_address=ha1.address_on(home),
        alternate_home_agents=[ha2.address_on(home)],
        host_id=0x64,
        config=MobileIpv6Config(bu_retransmit_interval=0.5, bu_max_retransmits=2),
        recv_mode=DeliveryMode.HA_TUNNEL,
        send_mode=DeliveryMode.HA_TUNNEL,
    )
    net.register_node(mn)
    return net, (home, backbone, foreign), (ha1, ha2, edge), mn


def fail(ha, net):
    """Take a router down and let unicast routing reconverge.

    Mobile IPv6 and PIM both assume a working unicast routing protocol;
    rebuilding the FIBs models its convergence after the failure."""
    for iface in list(ha.interfaces):
        iface.detach()
    net.build_routes()


class TestFailover:
    def test_no_failover_when_primary_alive(self):
        net, links, (ha1, ha2, edge), mn = dual_ha_network()
        net.run(until=1.0)
        mn.move_to(links[2])
        net.run(until=10.0)
        assert mn.ha_failovers == 0
        assert ha1.binding_cache.get(mn.home_address) is not None
        assert ha2.binding_cache.get(mn.home_address) is None

    def test_failover_to_backup_when_primary_dead(self):
        net, links, (ha1, ha2, edge), mn = dual_ha_network()
        net.run(until=1.0)
        fail(ha1, net)
        mn.move_to(links[2])
        net.run(until=20.0)
        assert mn.ha_failovers >= 1
        assert net.tracer.count("mipv6", node="MN", event="ha-failover") >= 1
        assert ha2.binding_cache.get(mn.home_address) is not None
        assert mn.home_agent_address == ha2.address_on(links[0])

    def test_multicast_resumes_via_backup(self):
        net, links, (ha1, ha2, edge), mn = dual_ha_network()
        src_host = Host(net.sim, "SRC", tracer=net.tracer, rng=net.rng)
        src_host.attach_to(links[0], links[0].prefix.address_for_host(100))
        net.register_node(src_host)
        app = ReceiverApp(mn)
        mn.join_group(GROUP)
        source = CbrSource(src_host, GROUP, packet_interval=0.2)
        source.start(at=2.0)
        net.run(until=5.0)
        fail(ha1, net)
        mn.move_to(links[2])
        net.run(until=40.0)
        # the backup HA joined on behalf and tunnels the stream
        assert ha2.groups_on_behalf() == [GROUP]
        assert app.first_delivery_after(20.0) is not None

    def test_failover_cycles_back(self):
        """With both HAs dead the mobile keeps rotating (and trying)."""
        net, links, (ha1, ha2, edge), mn = dual_ha_network()
        net.run(until=1.0)
        fail(ha1, net)
        fail(ha2, net)
        mn.move_to(links[2])
        net.run(until=30.0)
        assert mn.ha_failovers >= 2
        # no binding anywhere, but the node never crashed
        assert ha1.binding_cache.get(mn.home_address) is None
        assert ha2.binding_cache.get(mn.home_address) is None

    def test_single_ha_gives_up(self):
        net = Network(seed=4)
        home = net.add_link("home", "2001:db8:1::/64")
        foreign = net.add_link("foreign", "2001:db8:2::/64")
        ha = HomeAgent(net.sim, "HA", tracer=net.tracer, rng=net.rng)
        ha.attach_to(home, home.prefix.address_for_host(1))
        ha.attach_to(foreign, foreign.prefix.address_for_host(1))
        net.register_node(ha)
        net.on_start(ha.start)
        mn = MobileNode(
            net.sim, "MN", tracer=net.tracer, rng=net.rng,
            home_link=home, home_agent_address=ha.address_on(home),
            host_id=0x64,
            config=MobileIpv6Config(bu_retransmit_interval=0.5,
                                    bu_max_retransmits=2),
        )
        net.register_node(mn)
        net.run(until=1.0)
        fail(ha, net)
        mn.move_to(foreign)
        net.run(until=20.0)
        assert net.tracer.count("mipv6", node="MN", event="bu-gave-up") == 1
        assert mn.ha_failovers == 0
