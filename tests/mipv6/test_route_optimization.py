"""Tests for correspondent-node route optimization (draft §8 / paper §2).

A mobile away from home sends directly from its care-of address with a
Home Address option; a correspondent that processes its Binding Updates
sends directly to the care-of address, bypassing the home agent.
"""

import pytest

from repro.mipv6 import CorrespondentHost, DeliveryMode, MobileNode
from repro.net import Address, ApplicationData

from topo_helpers import build_line

GROUP = Address("ff1e::1")


def build(seed=5):
    """line: home(L0) -R0- L1 -R1- L2; CN on L1, MN homed on L0."""
    topo = build_line(2, seed=seed, use_home_agents=True)
    cn = CorrespondentHost(topo.net.sim, "CN", tracer=topo.net.tracer,
                           rng=topo.net.rng)
    cn.attach_to(topo.links[1], topo.links[1].prefix.address_for_host(0x99))
    topo.net.register_node(cn)
    mn = MobileNode(
        topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
        home_link=topo.links[0],
        home_agent_address=topo.routers[0].address_on(topo.links[0]),
        host_id=0x64,
    )
    topo.net.register_node(mn)
    return topo, cn, mn


class TestHomeAddressOption:
    def test_away_sends_carry_home_address_option(self):
        topo, cn, mn = build()
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        pkt = mn.send_to_correspondent(
            cn.primary_address(), ApplicationData(seqno=0)
        )
        assert pkt.src == mn.care_of_address
        from repro.mipv6 import HomeAddressOption

        opt = pkt.find_option(HomeAddressOption)
        assert opt is not None and opt.home_address == mn.home_address

    def test_at_home_sends_plain(self):
        topo, cn, mn = build()
        topo.net.run(until=1.0)
        pkt = mn.send_to_correspondent(
            cn.primary_address(), ApplicationData(seqno=0)
        )
        assert pkt.src == mn.home_address
        assert pkt.dest_options == ()


class TestCorrespondentBindingCache:
    def test_cn_learns_binding_from_bu(self):
        topo, cn, mn = build()
        mn.register_correspondent(cn.primary_address())
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        assert cn.peer_binding(mn.home_address) == mn.care_of_address
        assert topo.net.tracer.count("mipv6", node="MN", event="cn-bu-sent") >= 1

    def test_cn_binding_expires(self):
        from repro.mipv6 import MobileIpv6Config

        topo = build_line(2, seed=6, use_home_agents=True)
        cn = CorrespondentHost(topo.net.sim, "CN", tracer=topo.net.tracer,
                               rng=topo.net.rng)
        cn.attach_to(topo.links[1], topo.links[1].prefix.address_for_host(0x99))
        topo.net.register_node(cn)
        mn = MobileNode(
            topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
            home_link=topo.links[0],
            home_agent_address=topo.routers[0].address_on(topo.links[0]),
            host_id=0x64,
            config=MobileIpv6Config(binding_lifetime=20.0,
                                    binding_refresh_interval=9.0),
        )
        topo.net.register_node(mn)
        mn.register_correspondent(cn.primary_address())
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        assert cn.peer_binding(mn.home_address) is not None
        mn.iface.detach()  # MN disappears; no more refreshes
        topo.net.run(until=60.0)
        assert cn.peer_binding(mn.home_address) is None

    def test_home_registration_bu_not_cached_by_cn(self):
        """A CN receiving a misdirected home-registration BU ignores it."""
        topo, cn, mn = build()
        from repro.mipv6 import BindingUpdateOption
        from repro.net import ControlPayload, Ipv6Packet

        bu = BindingUpdateOption(
            mn.home_address, Address("2001:db8:3::64"), 100.0,
            home_registration=True,
        )
        pkt = Ipv6Packet(
            Address("2001:db8:3::64"), cn.primary_address(),
            ControlPayload(), dest_options=(bu,),
        )
        cn.receive(pkt, cn.interfaces[0])
        assert cn.peer_binding(mn.home_address) is None


class TestRouteOptimizedPath:
    def test_without_binding_triangle_via_home_agent(self):
        topo, cn, mn = build()
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        got = []
        mn.register_message_handler(
            ApplicationData, lambda p, m, i: got.append(m.seqno)
        )
        cn.send_to_peer(mn.home_address, ApplicationData(seqno=1))
        topo.net.run(until=12.0)
        assert got == [1]
        assert cn.triangle_sends == 1
        # the packet was intercepted and tunneled by the home agent
        assert topo.routers[0].load["encapsulations"] >= 1

    def test_with_binding_direct_to_coa(self):
        topo, cn, mn = build()
        mn.register_correspondent(cn.primary_address())
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])
        topo.net.run(until=10.0)
        ha_encaps_before = topo.routers[0].load["encapsulations"]
        got = []
        mn.register_message_handler(
            ApplicationData, lambda p, m, i: got.append(m.seqno)
        )
        cn.send_to_peer(mn.home_address, ApplicationData(seqno=2))
        topo.net.run(until=12.0)
        assert got == [2]
        assert cn.route_optimized_sends == 1
        # the home agent was not involved
        assert topo.routers[0].load["encapsulations"] == ha_encaps_before

    def test_route_optimization_cuts_latency(self):
        """CN on the MN's foreign link: direct is 1 hop, triangle is 4."""
        topo = build_line(2, seed=8, use_home_agents=True)
        cn = CorrespondentHost(topo.net.sim, "CN", tracer=topo.net.tracer,
                               rng=topo.net.rng)
        cn.attach_to(topo.links[2], topo.links[2].prefix.address_for_host(0x99))
        topo.net.register_node(cn)
        mn = MobileNode(
            topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
            home_link=topo.links[0],
            home_agent_address=topo.routers[0].address_on(topo.links[0]),
            host_id=0x64,
        )
        topo.net.register_node(mn)
        topo.net.run(until=1.0)
        mn.move_to(topo.links[2])  # same link as the CN
        topo.net.run(until=10.0)

        times = []
        mn.register_message_handler(
            ApplicationData, lambda p, m, i: times.append(topo.net.sim.now)
        )
        t0 = topo.net.sim.now
        cn.send_to_peer(mn.home_address, ApplicationData(seqno=0))
        topo.net.run(until=t0 + 2.0)
        triangle_latency = times[0] - t0

        mn.register_correspondent(cn.primary_address())
        topo.net.run(until=topo.net.sim.now + 2.0)
        t1 = topo.net.sim.now
        cn.send_to_peer(mn.home_address, ApplicationData(seqno=1))
        topo.net.run(until=t1 + 2.0)
        direct_latency = times[1] - t1
        assert direct_latency < triangle_latency / 2
