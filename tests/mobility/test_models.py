"""Unit tests for mobility models."""

import pytest

from repro.mipv6 import MobileNode
from repro.mobility import PoissonMobility, RandomWaypointMobility, ScriptedMobility

from topo_helpers import build_line


def mobile_on_line(n_routers=3):
    topo = build_line(n_routers, use_home_agents=True)
    home = topo.links[0]
    mn = MobileNode(
        topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
        home_link=home,
        home_agent_address=topo.routers[0].address_on(home),
        host_id=0x64,
    )
    topo.net.register_node(mn)
    return topo, mn


class TestScripted:
    def test_replays_schedule(self):
        topo, mn = mobile_on_line()
        model = ScriptedMobility(
            mn, [(10.0, topo.links[2]), (30.0, topo.links[3])]
        )
        topo.net.on_start(model.start)
        topo.net.run(until=20.0)
        assert mn.current_link is topo.links[2]
        topo.net.run(until=40.0)
        assert mn.current_link is topo.links[3]
        assert model.moves_done == 2

    def test_schedule_sorted(self):
        topo, mn = mobile_on_line()
        model = ScriptedMobility(
            mn, [(30.0, topo.links[3]), (10.0, topo.links[2])]
        )
        assert [t for t, _ in model.schedule] == [10.0, 30.0]


class TestRandomWaypoint:
    def test_moves_within_dwell_bounds(self):
        topo, mn = mobile_on_line()
        model = RandomWaypointMobility(
            mn, topo.links, min_dwell=5.0, max_dwell=10.0
        )
        topo.net.on_start(model.start)
        topo.net.run(until=100.0)
        assert model.moves_done >= 8
        gaps = [
            b - a for a, b in zip(model.move_times, model.move_times[1:])
        ]
        assert all(4.9 <= g <= 10.1 for g in gaps)

    def test_never_moves_to_current_link(self):
        topo, mn = mobile_on_line()
        model = RandomWaypointMobility(
            mn, topo.links, min_dwell=2.0, max_dwell=4.0
        )
        topo.net.on_start(model.start)
        seen = []
        orig = mn.move_to

        def spy(link):
            seen.append((mn.current_link, link))
            orig(link)

        mn.move_to = spy  # type: ignore
        topo.net.run(until=60.0)
        assert all(cur is not dst for cur, dst in seen)

    def test_max_moves_cap(self):
        topo, mn = mobile_on_line()
        model = RandomWaypointMobility(
            mn, topo.links, min_dwell=1.0, max_dwell=2.0, max_moves=3
        )
        topo.net.on_start(model.start)
        topo.net.run(until=100.0)
        assert model.moves_done == 3

    def test_exclude_home(self):
        topo, mn = mobile_on_line()
        model = RandomWaypointMobility(
            mn, topo.links, min_dwell=1.0, max_dwell=2.0, include_home=False
        )
        topo.net.on_start(model.start)
        topo.net.run(until=60.0)
        assert all(
            mn.home_link is not link
            for link in [mn.current_link]
        )

    def test_invalid_parameters(self):
        topo, mn = mobile_on_line()
        with pytest.raises(ValueError):
            RandomWaypointMobility(mn, topo.links[:1])
        with pytest.raises(ValueError):
            RandomWaypointMobility(mn, topo.links, min_dwell=5.0, max_dwell=2.0)

    def test_stop(self):
        topo, mn = mobile_on_line()
        model = RandomWaypointMobility(mn, topo.links, min_dwell=1.0, max_dwell=2.0)
        topo.net.on_start(model.start)
        topo.net.run(until=10.0)
        count = model.moves_done
        model.stop()
        topo.net.run(until=50.0)
        assert model.moves_done == count


class TestPoisson:
    def test_rate_controls_move_count(self):
        topo, mn = mobile_on_line()
        fast = PoissonMobility(mn, topo.links, rate=0.5)
        topo.net.on_start(fast.start)
        topo.net.run(until=200.0)
        # ~100 expected; generous tolerance
        assert 50 <= fast.moves_done <= 160

    def test_invalid_rate(self):
        topo, mn = mobile_on_line()
        with pytest.raises(ValueError):
            PoissonMobility(mn, topo.links, rate=0.0)

    def test_deterministic_per_seed(self):
        def run(seed):
            topo = build_line(3, seed=seed, use_home_agents=True)
            mn = MobileNode(
                topo.net.sim, "MN", tracer=topo.net.tracer, rng=topo.net.rng,
                home_link=topo.links[0],
                home_agent_address=topo.routers[0].address_on(topo.links[0]),
                host_id=0x64,
            )
            topo.net.register_node(mn)
            model = PoissonMobility(mn, topo.links, rate=0.1)
            topo.net.on_start(model.start)
            topo.net.run(until=100.0)
            return model.move_times

        assert run(9) == run(9)
        assert run(9) != run(10)
