"""Contract tests for ``repro bench`` and the perf-regression gate.

The CI ``bench-smoke`` job relies on exactly this behaviour: a
schema-stable ``BENCH_KERNEL.json`` and a non-zero exit when events/sec
regresses beyond the tolerance against the committed baseline
(``benchmarks/results/bench_kernel_baseline.json``).  Runs use
``--scale`` to keep the workloads tiny.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    SCHEMA,
    SCHEMA_VERSION,
    check_regression,
    run_benchmarks,
    write_report,
)
from repro.cli import main

SCALE = "0.01"  # ~2k events per kernel phase: milliseconds, not seconds


@pytest.fixture(scope="module")
def quick_payload():
    return run_benchmarks(quick=True, scale=0.01)


class TestBenchReport:
    def test_schema_and_phases(self, quick_payload):
        payload = quick_payload
        assert payload["schema"] == SCHEMA
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["quick"] is True
        for key in ("python", "implementation", "platform", "cpu_count"):
            assert key in payload["env"]
        # quick mode: kernel + scenario + fluid + sharded phases,
        # campaign/topogen skipped
        assert set(payload["phases"]) == {
            "dispatch", "timer_restart", "scenario", "traffic_fluid",
            "kernel_sharded",
        }
        for phase in payload["phases"].values():
            assert phase["events"] > 0
            assert phase["wall_time_s"] > 0
            assert phase["events_per_sec"] > 0
        restart = payload["phases"]["timer_restart"]
        assert restart["peak_heap"] >= 1
        assert restart["final_heap"] == 0
        sharded = payload["phases"]["kernel_sharded"]
        assert sharded["shards"] == 4
        assert sharded["rounds"] > 1
        assert sharded["single_events_per_sec"] > 0
        assert sharded["speedup"] > 0
        assert len(sharded["digest"]) == 64
        assert payload["events_per_sec"] == (
            payload["phases"]["dispatch"]["events_per_sec"]
        )

    def test_cli_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_KERNEL.json"
        main(["bench", "--quick", "--scale", SCALE, "--output", str(out)])
        payload = json.loads(out.read_text())
        assert payload["schema"] == SCHEMA
        assert "wrote" in capsys.readouterr().out

    def test_cli_json_mode(self, tmp_path, capsys):
        out = tmp_path / "BENCH_KERNEL.json"
        main(["bench", "--quick", "--scale", SCALE, "--output", str(out),
              "--json"])
        printed = json.loads(capsys.readouterr().out)
        assert printed == json.loads(out.read_text())

    def test_invalid_flags_rejected(self, tmp_path):
        for argv in (
            ["bench", "--scale", "0"],
            ["bench", "--tolerance", "1.5"],
        ):
            with pytest.raises(SystemExit):
                main(argv)


class TestRegressionGate:
    def test_within_tolerance_passes(self, quick_payload):
        assert check_regression(quick_payload, quick_payload) == []

    def test_regression_detected(self, quick_payload):
        inflated = copy.deepcopy(quick_payload)
        for phase in inflated["phases"].values():
            if phase.get("events_per_sec"):
                phase["events_per_sec"] *= 10.0
        failures = check_regression(quick_payload, inflated, tolerance=0.2)
        assert len(failures) == len(quick_payload["phases"])
        assert all("below the baseline" in f for f in failures)

    def test_new_phases_dont_break_old_baselines(self, quick_payload):
        baseline = copy.deepcopy(quick_payload)
        del baseline["phases"]["scenario"]
        assert check_regression(quick_payload, baseline) == []

    def test_skip_phases_excluded_from_gate(self, quick_payload):
        """A phase named in ``skip_phases`` never fails the gate — the
        machine-shaped ``kernel_sharded`` exemption relies on this."""
        inflated = copy.deepcopy(quick_payload)
        inflated["phases"]["kernel_sharded"]["events_per_sec"] *= 10.0
        assert check_regression(quick_payload, inflated) != []
        assert check_regression(
            quick_payload, inflated, skip_phases=("kernel_sharded",)
        ) == []

    def test_cpu_count_mismatch_warns_and_skips_kernel_sharded(
        self, tmp_path, capsys
    ):
        """A baseline produced on a machine with a different core count
        must not gate the core-count-dependent ``kernel_sharded`` phase:
        the CLI warns and exempts it, while other phases still gate."""
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "BENCH_KERNEL.json"
        main(["bench", "--quick", "--scale", SCALE, "--output", str(baseline)])
        doctored = json.loads(baseline.read_text())
        doctored["env"]["cpu_count"] = (doctored["env"]["cpu_count"] or 1) + 7
        # timing-independent: every other phase's floor is ~zero, and
        # kernel_sharded alone is impossibly fast in the baseline
        for name, phase in doctored["phases"].items():
            if phase.get("events_per_sec"):
                phase["events_per_sec"] = 1e-6
        doctored["phases"]["kernel_sharded"]["events_per_sec"] = 1e12
        write_report(doctored, str(baseline))
        # with the fingerprint mismatch the run must pass, with a warning
        main(["bench", "--quick", "--scale", SCALE, "--output", str(out),
              "--baseline", str(baseline)])
        printed = capsys.readouterr().out
        assert "warning: baseline cpu_count=" in printed
        assert "PERF REGRESSION" not in printed
        # ... but a regression in any other phase still fails
        doctored["phases"]["dispatch"]["events_per_sec"] = 1e12
        write_report(doctored, str(baseline))
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--quick", "--scale", SCALE, "--output", str(out),
                  "--baseline", str(baseline)])
        assert exc.value.code == 1
        assert "PERF REGRESSION — dispatch" in capsys.readouterr().out

    def test_profile_mismatch_is_a_failure(self, quick_payload):
        """A full-profile run gated on a quick baseline (or vice versa)
        compares different workloads; the gate must say so, not emit a
        bogus pass/fail verdict."""
        full_ish = copy.deepcopy(quick_payload)
        full_ish["quick"] = False
        failures = check_regression(full_ish, quick_payload)
        assert len(failures) == 1
        assert "profile mismatch" in failures[0]

    def test_invalid_tolerance_rejected(self, quick_payload):
        with pytest.raises(ValueError):
            check_regression(quick_payload, quick_payload, tolerance=1.0)

    def test_cli_gate_passes_against_own_run(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "BENCH_KERNEL.json"
        main(["bench", "--quick", "--scale", SCALE, "--output", str(baseline)])
        # Loose tolerance: tiny workloads jitter, and this test pins the
        # gate plumbing (exit 0 on pass), not real throughput.
        main(["bench", "--quick", "--scale", SCALE, "--output", str(out),
              "--baseline", str(baseline), "--tolerance", "0.95"])

    def test_cli_gate_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "BENCH_KERNEL.json"
        main(["bench", "--quick", "--scale", SCALE, "--output", str(baseline)])
        doctored = json.loads(baseline.read_text())
        for phase in doctored["phases"].values():
            if phase.get("events_per_sec"):
                phase["events_per_sec"] *= 1000.0
        write_report(doctored, str(baseline))
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--quick", "--scale", SCALE, "--output", str(out),
                  "--baseline", str(baseline)])
        assert exc.value.code == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_cli_gate_missing_baseline_errors(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--quick", "--scale", SCALE,
                  "--output", str(tmp_path / "b.json"),
                  "--baseline", str(tmp_path / "missing.json")])
        assert exc.value.code == 1
