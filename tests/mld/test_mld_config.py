"""Unit tests for MLD configuration and derived timers."""

import pytest

from repro.mld import MldConfig


class TestDefaults:
    def test_rfc_defaults(self):
        cfg = MldConfig()
        assert cfg.query_interval == 125.0
        assert cfg.query_response_interval == 10.0
        assert cfg.robustness == 2

    def test_t_mli_formula(self):
        """Paper §3.2: T_MLI = 2 * T_Query + T_RespDel = 260 s."""
        assert MldConfig().multicast_listener_interval == 260.0

    def test_other_querier_present(self):
        assert MldConfig().other_querier_present_interval == 255.0


class TestTuning:
    def test_with_query_interval(self):
        cfg = MldConfig().with_query_interval(20.0)
        assert cfg.query_interval == 20.0
        assert cfg.multicast_listener_interval == 2 * 20 + 10
        assert cfg.startup_query_interval == 5.0

    def test_t_mli_scales_with_robustness(self):
        cfg = MldConfig(robustness=3)
        assert cfg.multicast_listener_interval == 3 * 125 + 10

    def test_footnote5_lower_bound_enforced(self):
        """Paper footnote 5: T_Query must not go below T_RespDel."""
        with pytest.raises(ValueError):
            MldConfig(query_interval=5.0, query_response_interval=10.0)
        # exactly at the bound is allowed
        MldConfig(query_interval=10.0, query_response_interval=10.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            MldConfig(query_interval=0.0)
        with pytest.raises(ValueError):
            MldConfig(query_response_interval=-1.0)
        with pytest.raises(ValueError):
            MldConfig(robustness=0)

    def test_frozen(self):
        cfg = MldConfig()
        with pytest.raises(Exception):
            cfg.query_interval = 1.0  # type: ignore
