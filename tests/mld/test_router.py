"""Unit tests for the MLD router part."""

import pytest

from repro.mld import MldConfig, MldDone, MldHost, MldQuery, MldReport, MldRouter
from repro.net import Address, Host, Ipv6Packet, Network

GROUP = Address("ff1e::1")


def router_with_hosts(seed=1, config=None, n_hosts=1, n_routers=1):
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64")
    routers, engines = [], []
    for i in range(n_routers):
        from repro.net import Node

        r = Node(net.sim, f"R{i}", tracer=net.tracer, rng=net.rng)
        r.is_router = True
        r.attach_to(link, link.prefix.address_for_host(i + 1))
        net.register_node(r)
        engine = MldRouter(r, config)
        net.on_start(engine.start)
        routers.append(r)
        engines.append(engine)
    hosts, mlds = [], []
    for i in range(n_hosts):
        h = Host(net.sim, f"H{i}", tracer=net.tracer, rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(100 + i))
        net.register_node(h)
        hosts.append(h)
        mlds.append(MldHost(h, config))
    return net, link, routers, engines, hosts, mlds


class TestQuerier:
    def test_sends_startup_queries(self):
        cfg = MldConfig(query_interval=100.0, startup_query_interval=25.0,
                        startup_query_count=2)
        net, link, routers, engines, hosts, mlds = router_with_hosts(config=cfg)
        net.run(until=30.0)
        # startup queries at t=0 and t=25
        assert net.tracer.count("mld", event="query-sent") == 2

    def test_steady_period_after_startup(self):
        cfg = MldConfig(query_interval=50.0, startup_query_interval=10.0,
                        startup_query_count=2)
        net, link, routers, engines, hosts, mlds = router_with_hosts(config=cfg)
        net.run(until=121.0)
        times = [e.time for e in net.tracer.query("mld", event="query-sent")]
        assert times == [0.0, 10.0, 60.0, 110.0]

    def test_querier_election_lowest_address_wins(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts(n_routers=2)
        net.run(until=5.0)
        # R0 has ::1, R1 has ::2 -> R1 must stand down
        assert engines[0].is_querier(routers[0].interfaces[0])
        assert not engines[1].is_querier(routers[1].interfaces[0])
        assert net.tracer.count("mld", event="querier-standdown", node="R1") == 1

    def test_non_querier_resumes_after_interval(self):
        cfg = MldConfig(query_interval=20.0, query_response_interval=10.0,
                        startup_query_interval=5.0)
        net, link, routers, engines, hosts, mlds = router_with_hosts(
            config=cfg, n_routers=2
        )
        net.run(until=5.0)
        assert not engines[1].is_querier(routers[1].interfaces[0])
        # silence R0's queries: detach it
        routers[0].interfaces[0].detach()
        net.run(until=5.0 + cfg.other_querier_present_interval + 25.0)
        assert engines[1].is_querier(routers[1].interfaces[0])


class TestMembership:
    def test_report_creates_membership(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        net.start()
        mlds[0].join(GROUP)
        net.run(until=1.0)
        assert engines[0].has_members(routers[0].interfaces[0], GROUP)

    def test_membership_notification_fired(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        changes = []
        engines[0].on_membership_change(
            lambda iface, group, present: changes.append((str(group), present))
        )
        net.start()
        mlds[0].join(GROUP)
        net.run(until=1.0)
        assert changes == [(str(GROUP), True)]

    def test_membership_expires_after_t_mli(self):
        cfg = MldConfig(query_interval=10.0, query_response_interval=10.0)
        net, link, routers, engines, hosts, mlds = router_with_hosts(config=cfg)
        net.start()
        mlds[0].join(GROUP)  # report at ~t0
        net.run(until=0.5)
        # silence the host so reports stop refreshing the timer
        mlds[0].suspend()
        net.run(until=0.5 + cfg.multicast_listener_interval + 1.0)
        assert not engines[0].has_members(routers[0].interfaces[0], GROUP)
        assert net.tracer.count("mld", event="members-gone") == 1

    def test_reports_refresh_timer(self):
        cfg = MldConfig(query_interval=10.0, query_response_interval=10.0)
        net, link, routers, engines, hosts, mlds = router_with_hosts(config=cfg)
        net.start()
        mlds[0].join(GROUP)
        # periodic queries keep eliciting reports; membership must persist
        net.run(until=3 * cfg.multicast_listener_interval)
        assert engines[0].has_members(routers[0].interfaces[0], GROUP)

    def test_link_scope_groups_ignored(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        net.start()
        iface = routers[0].interfaces[0]
        pkt = Ipv6Packet(
            hosts[0].primary_address(), Address("ff02::99"),
            MldReport(Address("ff02::99")), hop_limit=1,
        )
        routers[0].receive(pkt, iface)
        assert not engines[0].has_members(iface, Address("ff02::99"))

    def test_groups_on(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        net.start()
        mlds[0].join(GROUP)
        mlds[0].join(Address("ff1e::2"))
        net.run(until=1.0)
        assert engines[0].groups_on(routers[0].interfaces[0]) == {
            GROUP, Address("ff1e::2"),
        }

    def test_membership_expiry_time_query(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        net.start()
        mlds[0].join(GROUP)
        net.run(until=1.0)
        expiry = engines[0].membership_expiry(routers[0].interfaces[0], GROUP)
        assert expiry is not None and expiry > net.now


class TestDone:
    def test_done_triggers_fast_leave(self):
        cfg = MldConfig(last_listener_query_count=2, last_listener_query_interval=1.0)
        net, link, routers, engines, hosts, mlds = router_with_hosts(config=cfg)
        net.start()
        mlds[0].join(GROUP)
        net.run(until=1.0)
        mlds[0].leave(GROUP)  # sends Done
        net.run(until=5.0)
        assert not engines[0].has_members(routers[0].interfaces[0], GROUP)
        ev = net.tracer.first("mld", event="members-gone")
        assert ev.time <= 1.0 + 2 * 1.0 + 0.1  # within LLQC * LLQI

    def test_done_answered_by_remaining_member(self):
        cfg = MldConfig(last_listener_query_count=2, last_listener_query_interval=1.0)
        net, link, routers, engines, hosts, mlds = router_with_hosts(
            config=cfg, n_hosts=2
        )
        net.start()
        mlds[0].join(GROUP)
        mlds[1].join(GROUP)
        net.run(until=1.0)
        mlds[0].leave(GROUP)
        net.run(until=6.0)
        # H1 answered the specific query; membership survives
        assert engines[0].has_members(routers[0].interfaces[0], GROUP)

    def test_done_for_unknown_group_ignored(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        net.start()
        iface = routers[0].interfaces[0]
        pkt = Ipv6Packet(
            hosts[0].primary_address(), Address("ff02::2"), MldDone(GROUP), hop_limit=1
        )
        routers[0].receive(pkt, iface)  # no state, no crash
        net.run(until=3.0)


class TestStaticMembership:
    def test_static_join_notifies(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        changes = []
        engines[0].on_membership_change(
            lambda iface, g, present: changes.append(present)
        )
        iface = routers[0].interfaces[0]
        engines[0].add_static_membership(iface, GROUP)
        assert changes == [True]
        assert engines[0].has_members(iface, GROUP)

    def test_static_membership_never_expires(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        net.start()
        iface = routers[0].interfaces[0]
        engines[0].add_static_membership(iface, GROUP)
        net.run(until=1000.0)
        assert engines[0].has_members(iface, GROUP)

    def test_static_refcounting(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        iface = routers[0].interfaces[0]
        changes = []
        engines[0].on_membership_change(lambda i, g, p: changes.append(p))
        engines[0].add_static_membership(iface, GROUP)
        engines[0].add_static_membership(iface, GROUP)
        engines[0].remove_static_membership(iface, GROUP)
        assert engines[0].has_members(iface, GROUP)
        engines[0].remove_static_membership(iface, GROUP)
        assert not engines[0].has_members(iface, GROUP)
        assert changes == [True, False]

    def test_static_plus_dynamic_membership(self):
        """A report-backed membership and a static one coexist; removing
        the static one keeps the reported membership alive."""
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        net.start()
        iface = routers[0].interfaces[0]
        mlds[0].join(GROUP)
        net.run(until=1.0)
        engines[0].add_static_membership(iface, GROUP)
        engines[0].remove_static_membership(iface, GROUP)
        assert engines[0].has_members(iface, GROUP)

    def test_remove_absent_static_is_noop(self):
        net, link, routers, engines, hosts, mlds = router_with_hosts()
        engines[0].remove_static_membership(routers[0].interfaces[0], GROUP)
