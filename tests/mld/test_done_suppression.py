"""Tests for the RFC 2710 'Done only if last reporter' refinement."""

from repro.mld import MldConfig, MldDone, MldHost, MldQuery
from repro.net import ALL_NODES, Address, Host, Ipv6Packet, Network

GROUP = Address("ff1e::1")
STRICT = MldConfig(done_only_if_last_reporter=True)


def lan(config, n=2, seed=11):
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64")
    hosts, mlds = [], []
    for i in range(n):
        h = Host(net.sim, f"H{i}", tracer=net.tracer, rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(i + 1))
        net.register_node(h)
        hosts.append(h)
        mlds.append(MldHost(h, config))
    return net, link, hosts, mlds


def query_all(net, hosts, mrd=10.0):
    src = Address("2001:db8:1::fe")
    for h in hosts:
        h.receive(Ipv6Packet(src, ALL_NODES, MldQuery(None, mrd), hop_limit=1),
                  h.interfaces[0])


class TestDoneSuppression:
    def test_last_reporter_sends_done(self):
        net, link, hosts, mlds = lan(STRICT, n=1)
        mlds[0].join(GROUP)  # our unsolicited Report makes us last reporter
        net.sim.run(until=1.0)
        mlds[0].leave(GROUP)
        net.sim.run()
        assert net.tracer.count("mld", event="done-sent") == 1

    def test_suppressed_host_skips_done(self):
        """Both join; the query-response race leaves one host suppressed;
        that host must not send Done in strict mode."""
        net, link, hosts, mlds = lan(STRICT, n=2)
        mlds[0].join(GROUP, send_unsolicited=False)
        mlds[1].join(GROUP, send_unsolicited=False)
        query_all(net, hosts)
        net.sim.run(until=12.0)
        suppressed = [m for m in mlds if GROUP not in m._last_reporter]
        reporters = [m for m in mlds if GROUP in m._last_reporter]
        assert len(suppressed) == 1 and len(reporters) == 1
        suppressed[0].leave(GROUP)
        net.sim.run()
        assert net.tracer.count("mld", event="done-sent") == 0
        reporters[0].leave(GROUP)
        net.sim.run()
        assert net.tracer.count("mld", event="done-sent") == 1

    def test_default_mode_always_sends_done(self):
        net, link, hosts, mlds = lan(MldConfig(), n=2)
        mlds[0].join(GROUP, send_unsolicited=False)
        mlds[1].join(GROUP)  # H1 reported; H0 never did
        net.sim.run(until=1.0)
        mlds[0].leave(GROUP)
        net.sim.run()
        assert net.tracer.count("mld", event="done-sent") == 1

    def test_hearing_other_report_clears_flag(self):
        net, link, hosts, mlds = lan(STRICT, n=2)
        mlds[0].join(GROUP)  # H0 reports -> last reporter
        net.sim.run(until=1.0)
        assert GROUP in mlds[0]._last_reporter
        mlds[1].join(GROUP)  # H1's unsolicited Report overrides
        net.sim.run(until=2.0)
        assert GROUP not in mlds[0]._last_reporter
        assert GROUP in mlds[1]._last_reporter
