"""MLD Robustness Variable under injected loss (repro.faults).

RFC 2710 sends ``robustness`` unsolicited Reports per join so a single
lost frame cannot hide a member.  With *all* unsolicited Reports lost,
the join must still complete at the next General Query.
"""

from repro.faults import FaultInjector, FaultPlan, link_down
from repro.mld import MldConfig, MldHost, MldRouter
from repro.net import Address, Host, Network, Node

GROUP = Address("ff1e::1")

CFG = MldConfig(
    robustness=2,
    unsolicited_report_interval=2.0,  # Reports at join and join+2
    query_interval=20.0,
    startup_query_interval=5.0,  # startup Queries at t=0, 5
    startup_query_count=2,
    query_response_interval=5.0,
)


def lan(seed=4):
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64")
    r = Node(net.sim, "R", tracer=net.tracer, rng=net.rng)
    r.is_router = True
    r.attach_to(link, link.prefix.address_for_host(1))
    net.register_node(r)
    engine = MldRouter(r, CFG)
    net.on_start(engine.start)
    h = Host(net.sim, "H", tracer=net.tracer, rng=net.rng)
    h.attach_to(link, link.prefix.address_for_host(100))
    net.register_node(h)
    mld = MldHost(h, CFG)
    return net, link, r, engine, mld


class TestRobustness:
    def test_one_lost_report_still_joins(self):
        """First unsolicited Report (t=6) lost; the second (t=8) lands."""
        net, link, r, engine, mld = lan()
        FaultInjector(net, FaultPlan(link_down(5.9, "LAN", duration=1.1))).arm()
        net.sim.schedule_at(6.0, mld.join, GROUP)
        net.run(until=9.0)
        assert engine.has_members(r.interfaces[0], GROUP)
        assert net.stats.link_drops("LAN", "link-down") >= 1

    def test_all_reports_lost_join_completes_at_next_query(self):
        """Both unsolicited Reports (t=6, 8) lost; the steady Query at
        t=25 solicits the Report that completes the join."""
        net, link, r, engine, mld = lan()
        FaultInjector(net, FaultPlan(link_down(5.9, "LAN", duration=4.6))).arm()
        net.sim.schedule_at(6.0, mld.join, GROUP)
        net.run(until=24.9)
        assert not engine.has_members(r.interfaces[0], GROUP)
        # steady query: startup at 0 and 5, then 5 + query_interval = 25
        net.run(until=25.0 + CFG.query_response_interval + 0.1)
        assert engine.has_members(r.interfaces[0], GROUP)
        assert net.stats.link_drops("LAN", "link-down") >= 2
