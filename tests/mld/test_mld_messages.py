"""Unit tests for MLD message types."""

from repro.mld import MLD_MESSAGE_BYTES, MldDone, MldQuery, MldReport
from repro.net import Address

GROUP = Address("ff1e::1")


class TestSizes:
    def test_all_messages_24_bytes(self):
        assert MldQuery().size_bytes == MLD_MESSAGE_BYTES == 24
        assert MldReport(GROUP).size_bytes == 24
        assert MldDone(GROUP).size_bytes == 24

    def test_protocol_tag(self):
        assert MldQuery().protocol == "mld"
        assert MldReport(GROUP).protocol == "mld"
        assert MldDone(GROUP).protocol == "mld"


class TestQuery:
    def test_general_query(self):
        q = MldQuery()
        assert q.is_general
        assert "general" in q.describe()

    def test_specific_query(self):
        q = MldQuery(GROUP, 1.0)
        assert not q.is_general
        assert str(GROUP) in q.describe()

    def test_default_mrd(self):
        assert MldQuery().max_response_delay == 10.0


class TestReportDone:
    def test_describe(self):
        assert str(GROUP) in MldReport(GROUP).describe()
        assert str(GROUP) in MldDone(GROUP).describe()

    def test_hashable(self):
        assert MldReport(GROUP) == MldReport(GROUP)
        assert len({MldReport(GROUP), MldReport(GROUP)}) == 1
