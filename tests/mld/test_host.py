"""Unit tests for the MLD host part."""

import pytest

from repro.mld import MldConfig, MldDone, MldHost, MldQuery, MldReport
from repro.net import ALL_NODES, ALL_ROUTERS, Address, Host, Ipv6Packet, Network

GROUP = Address("ff1e::1")
GROUP2 = Address("ff1e::2")


def host_pair(seed=1, config=None, n=2):
    """n hosts with MLD host parts on one link; returns net, link, hosts, mlds."""
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64")
    hosts, mlds = [], []
    for i in range(n):
        h = Host(net.sim, f"H{i}", tracer=net.tracer, rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(i + 1))
        net.register_node(h)
        hosts.append(h)
        mlds.append(MldHost(h, config))
    return net, link, hosts, mlds


def reports_sent(net, node=None):
    return net.tracer.count("mld", event="report-sent", node=node)


class TestJoinLeave:
    def test_join_sends_unsolicited_report(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP)
        net.sim.run(until=0.1)
        assert reports_sent(net, "H0") == 1

    def test_join_repeats_unsolicited_reports(self):
        cfg = MldConfig(unsolicited_report_count=3, unsolicited_report_interval=5.0)
        net, link, hosts, mlds = host_pair(config=cfg)
        mlds[0].join(GROUP)
        net.sim.run(until=20.0)
        assert reports_sent(net, "H0") == 3

    def test_join_without_unsolicited(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        net.sim.run(until=1.0)
        assert reports_sent(net) == 0
        assert GROUP in mlds[0].groups

    def test_join_non_multicast_rejected(self):
        net, link, hosts, mlds = host_pair()
        with pytest.raises(ValueError):
            mlds[0].join(Address("2001:db8::1"))

    def test_join_updates_host_joined_groups(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        assert GROUP in hosts[0].joined_groups

    def test_leave_sends_done_to_all_routers(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        dones = []
        hosts[1].register_message_handler(
            MldDone, lambda p, m, i: dones.append((str(p.dst), str(m.group)))
        )
        mlds[0].leave(GROUP)
        net.sim.run()
        assert dones == [(str(ALL_ROUTERS), str(GROUP))]

    def test_leave_without_done(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        mlds[0].leave(GROUP, send_done=False)
        net.sim.run()
        assert net.tracer.count("mld", event="done-sent") == 0
        assert GROUP not in mlds[0].groups


class TestQueryResponse:
    def _query(self, net, link, hosts, general=True, group=None, mrd=10.0):
        src = Address("2001:db8:1::fe")  # pretend-router address
        q = MldQuery(None if general else group, mrd)
        dst = ALL_NODES if general else group
        # inject at each host directly as if from the link
        for h in hosts:
            h.receive(Ipv6Packet(src, dst, q, hop_limit=1), h.interfaces[0])

    def test_general_query_triggers_report_within_mrd(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        self._query(net, link, hosts)
        net.sim.run(until=10.5)
        assert reports_sent(net, "H0") == 1
        ev = net.tracer.first("mld", event="report-sent")
        assert 0 <= ev.time <= 10.0

    def test_specific_query_only_that_group(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        mlds[0].join(GROUP2, send_unsolicited=False)
        self._query(net, link, hosts, general=False, group=GROUP2, mrd=1.0)
        net.sim.run(until=2.0)
        assert reports_sent(net) == 1

    def test_specific_query_not_joined_ignored(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        self._query(net, link, hosts, general=False, group=GROUP2, mrd=1.0)
        net.sim.run(until=2.0)
        assert reports_sent(net) == 0

    def test_not_joined_no_response(self):
        net, link, hosts, mlds = host_pair()
        self._query(net, link, hosts)
        net.sim.run(until=11.0)
        assert reports_sent(net) == 0

    def test_report_suppression(self):
        """Only one member answers per group per query (RFC 2710 §4)."""
        net, link, hosts, mlds = host_pair(n=5)
        for m in mlds:
            m.join(GROUP, send_unsolicited=False)
        self._query(net, link, hosts)
        net.sim.run(until=11.0)
        total = reports_sent(net)
        suppressed = net.tracer.count("mld", event="suppressed")
        assert total + suppressed == 5
        assert total >= 1
        assert suppressed >= 1

    def test_earlier_deadline_kept_on_requery(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        self._query(net, link, hosts, mrd=1.0)
        self._query(net, link, hosts, mrd=100.0)
        net.sim.run(until=5.0)
        assert reports_sent(net) == 1  # the 1 s deadline survived


class TestMobility:
    def test_after_move_resends_reports(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        mlds[0].after_move()
        net.sim.run(until=0.1)
        assert reports_sent(net, "H0") == 1

    def test_after_move_disabled_by_config(self):
        cfg = MldConfig(unsolicited_reports_on_move=False)
        net, link, hosts, mlds = host_pair(config=cfg)
        mlds[0].join(GROUP, send_unsolicited=False)
        mlds[0].after_move()
        net.sim.run(until=1.0)
        assert reports_sent(net) == 0

    def test_suspend_clears_state_silently(self):
        net, link, hosts, mlds = host_pair()
        mlds[0].join(GROUP, send_unsolicited=False)
        mlds[0].suspend()
        net.sim.run()
        assert mlds[0].groups == set()
        assert GROUP not in hosts[0].joined_groups
        assert net.tracer.count("mld", event="done-sent") == 0

    def test_detached_host_sends_nothing(self):
        net, link, hosts, mlds = host_pair()
        hosts[0].interfaces[0].detach()
        mlds[0].join(GROUP)  # must not crash
        net.sim.run()
        assert reports_sent(net) == 0
