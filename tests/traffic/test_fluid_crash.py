"""Fluid-engine behavior across a router crash/restart boundary.

The fluid engine's (S,G) view is rebuilt by sparse real probes; a
restarted router forgets its state and, before the restart-resync fix,
stayed dark for up to a full probe interval (100x the packet interval)
after every crash — delivery integrals underran packet mode by ~18 %
on a single 3 s crash.  These tests pin the byte-agreement contract
(docs/TRAFFIC.md: aggregates within 2 %) across the crash boundary and
prove the resync hook is load-bearing.
"""

import pytest

from repro.chaos.study import (
    chaos_mipv6_config,
    chaos_mld_config,
    chaos_pim_config,
)
from repro.faults import FaultInjector, FaultPlan, node_crash
from repro.net.packet import IPV6_HEADER_BYTES
from repro.net.topogen import build_network, topo_graph
from repro.traffic import make_traffic_model
from repro.traffic.fluid import FluidModel

INNER_BYTES = 1000 + IPV6_HEADER_BYTES  # add_cbr default payload + header


def _delivered_units(traffic_model: str) -> float:
    """Delivered datagram count for one run with a mid-flow crash of an
    on-tree aggregation router (r0001 down 12 s..15 s)."""
    graph = topo_graph({"model": "hier", "depth": 2, "fanout": 3})
    built = build_network(
        graph,
        seed=0,
        pim_config=chaos_pim_config("compact"),
        mld_config=chaos_mld_config(),
        mipv6_config=chaos_mipv6_config(),
    )
    group = built.make_group(1)
    source = built.place_source("s000")
    population = built.place_receivers(6)
    net = built.net
    injector = FaultInjector(net, FaultPlan(node_crash(12.0, "r0001", duration=3.0)))
    traffic = make_traffic_model(traffic_model)
    traffic.attach(net)
    net.start()
    injector.arm()
    built.schedule_joins(
        population, group, start=1.0, spread=4.0, stream="topogen.joins.g0"
    )
    delivered = {"units": 0}
    net.tracer.add_listener(
        lambda ev: delivered.__setitem__("units", delivered["units"] + 1),
        categories=("mcast.deliver",),
    )
    flow = traffic.add_cbr(source, group, packet_interval=0.2, flow="flow-g0")
    flow.start(at=5.0)
    net.run(until=35.0)
    traffic.finish()
    if traffic_model == "fluid":
        return sum(traffic.delivered_bytes.values()) / INNER_BYTES
    return float(delivered["units"])


def test_fluid_matches_packet_across_crash_boundary():
    packet = _delivered_units("packet")
    fluid = _delivered_units("fluid")
    assert packet > 0
    assert fluid == pytest.approx(packet, rel=0.02)


def test_restart_resync_is_load_bearing(monkeypatch):
    """Disabling the restart resync must reopen the post-crash dark
    window — guards against the hook being silently disconnected."""
    packet = _delivered_units("packet")
    monkeypatch.setattr(
        FluidModel, "_resync_after_restart", lambda self: None
    )
    stale = _delivered_units("fluid")
    assert stale < packet * 0.95
