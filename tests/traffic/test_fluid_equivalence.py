"""Packet-vs-fluid equivalence on the paper's §4.3 experiments.

The fluid engine is only useful if it reproduces the packet-mode
figures; these tests pin the tolerance contract of docs/TRAFFIC.md —
byte/load aggregates within 2 % (boundary quantization: the packet
engine rounds every tree change to whole datagrams, the fluid engine
integrates through it), discrete protocol counts exactly equal.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ALL_APPROACHES,
    BIDIRECTIONAL_TUNNEL,
    PaperScenario,
    ScenarioConfig,
    receiver_mobility_run,
    sender_mobility_run,
)

#: docs/TRAFFIC.md tolerance: relative error on §4.3 byte/load metrics.
REL_TOL = 0.02
#: absolute floor — one max-size datagram (1000 B payload + 40 B header)
#: per tree boundary, a handful of boundaries per run.
ABS_BYTES = 5 * 1040


def _close(fluid, packet, rel=REL_TOL, abs_tol=ABS_BYTES):
    if packet is None or fluid is None:
        return packet is None and fluid is None
    return fluid == pytest.approx(packet, rel=rel, abs=abs_tol)


# one packet+fluid pair per (experiment, approach), shared by the
# assertions below — the runs are deterministic per seed
_memo = {}


def _pair(fn, approach):
    key = (fn.__name__, approach.key)
    if key not in _memo:
        _memo[key] = (fn(approach), fn(approach, traffic_model="fluid"))
    return _memo[key]


@pytest.mark.parametrize(
    "approach", ALL_APPROACHES, ids=[a.key for a in ALL_APPROACHES]
)
class TestReceiverEquivalence:
    """Figures 2/3 (R3 moves off-tree) per delivery approach."""

    @pytest.fixture
    def rows(self, approach):
        return _pair(receiver_mobility_run, approach)

    def test_bandwidth_metrics(self, rows):
        packet, fluid = rows
        assert _close(fluid["wasted_bytes_old_link"], packet["wasted_bytes_old_link"])
        assert _close(fluid["tunnel_overhead"], packet["tunnel_overhead"])

    def test_load_metrics(self, rows):
        packet, fluid = rows
        assert _close(
            fluid["ha_encapsulations"], packet["ha_encapsulations"], abs_tol=25
        )
        assert _close(
            fluid["mn_decapsulations"], packet["mn_decapsulations"], abs_tol=25
        )
        assert fluid["ha_groups_on_behalf"] == packet["ha_groups_on_behalf"]

    def test_leave_delay_identical(self, rows):
        """Leave detection is pure control plane (MLD timers) — the
        traffic engine must not perturb it."""
        packet, fluid = rows
        assert _close(fluid["leave_delay"], packet["leave_delay"], rel=0.05, abs_tol=1.0)


@pytest.mark.parametrize(
    "approach", ALL_APPROACHES, ids=[a.key for a in ALL_APPROACHES]
)
class TestSenderEquivalence:
    """Figure 4 (S moves off-tree) per delivery approach."""

    @pytest.fixture
    def rows(self, approach):
        return _pair(sender_mobility_run, approach)

    def test_tree_state_counts_exact(self, rows):
        packet, fluid = rows
        assert fluid["new_sg_entries"] == packet["new_sg_entries"]
        assert fluid["flood_links"] == packet["flood_links"]

    def test_bandwidth_and_load(self, rows):
        packet, fluid = rows
        assert _close(fluid["tunnel_overhead"], packet["tunnel_overhead"])
        assert _close(
            fluid["reverse_tunneled"], packet["reverse_tunneled"], abs_tol=25
        )
        assert _close(
            fluid["mn_encapsulations"], packet["mn_encapsulations"], abs_tol=25
        )


# ----------------------------------------------------------------------
# property tests: random join/move/fault schedules
# ----------------------------------------------------------------------

WIRE = 1040  # 1000 B payload + 40 B IPv6 header


def _spread(times, min_gap=5.0):
    """Sorted move times, at least ``min_gap`` apart."""
    out = []
    for t in sorted(times):
        if not out or t - out[-1] >= min_gap:
            out.append(t)
    return out


def _total_data_bytes(sc):
    snap = sc.metrics.snapshot()
    return snap.total("mcast_data") + snap.total("tunnel_overhead")


class TestRandomSchedules:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        packet_interval=st.sampled_from((0.02, 0.05, 0.1, 0.2)),
        payload=st.integers(min_value=100, max_value=1400),
        window=st.floats(min_value=1.0, max_value=15.0),
    )
    def test_fluid_bytes_equal_closed_form_integral(
        self, packet_interval, payload, window
    ):
        """On a static tree the fluid charge over any window is exactly
        the closed-form integral rate x dt, for arbitrary flow params."""
        sc = PaperScenario(
            ScenarioConfig(
                traffic_model="fluid",
                packet_interval=packet_interval,
                payload_bytes=payload,
            )
        )
        sc.converge()
        before = sc.metrics.snapshot()
        sc.run_for(window)
        delta = sc.metrics.snapshot().delta(before)
        rate = (payload + 40) / packet_interval
        assert delta.bytes_on("L1", "mcast_data") == pytest.approx(
            rate * window, rel=1e-6
        )
        sc.finish()

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(
        join_time=st.floats(min_value=0.5, max_value=5.0),
        move_times=st.lists(
            st.floats(min_value=35.0, max_value=85.0), max_size=3
        ),
        move_links=st.lists(
            st.sampled_from(("L1", "L2", "L4", "L6")), min_size=3, max_size=3
        ),
        loss=st.one_of(st.none(), st.floats(min_value=0.02, max_value=0.2)),
    )
    def test_random_schedule_matches_packet_mode(
        self, join_time, move_times, move_links, loss
    ):
        """Random joins + R3 moves + a Bernoulli link fault: total data
        bytes agree between the engines within the tolerance contract."""
        totals = {}
        for model in ("packet", "fluid"):
            sc = PaperScenario(
                ScenarioConfig(traffic_model=model, join_time=join_time)
            )
            sc.converge()
            for when, link in zip(_spread(move_times), move_links):
                sc.move("R3", link, at=when)
            if loss is not None:
                sc.net.sim.schedule_at(
                    50.0,
                    lambda sc=sc, loss=loss: setattr(
                        sc.paper.link("L2"), "loss_rate", loss
                    ),
                    label="fault.loss",
                )
            sc.run_until(110.0)
            totals[model] = _total_data_bytes(sc)
            sc.finish()
        assert totals["fluid"] == pytest.approx(
            totals["packet"], rel=0.03, abs=10 * WIRE
        )
