"""Regression: fluid-mode §4.3 join delays must not be probe-quantized.

The fluid engine detects delivery at a receiver's new attachment via
sparse probe datagrams.  Before the out-of-cycle resync fix
(``FluidModel._request_resync``), the first probe after a handover
rode the periodic cadence, so the measured join delay snapped to the
probe grid — up to ``probe_interval`` seconds of pure measurement
artifact on a ~1.6 s figure.  The fix emits an immediate probe on
every MLD membership change and handover rejoin; these tests pin the
resulting contract: fluid join delays match packet mode within 2 %
regardless of the probe cadence (docs/TRAFFIC.md).
"""

import pytest

from repro.core import ALL_APPROACHES, receiver_mobility_run

#: docs/TRAFFIC.md §4.3 tolerance, plus one packet interval of slack —
#: the packet engine itself only resolves delivery to datagram arrivals.
REL_TOL = 0.02
ABS_TOL = 0.05

#: one fluid+packet row pair per parameter set (runs are deterministic)
_memo = {}


def _pair(approach, probe_interval=None):
    key = (approach.key, probe_interval)
    if key not in _memo:
        _memo[key] = (
            receiver_mobility_run(approach),
            receiver_mobility_run(
                approach, traffic_model="fluid", probe_interval=probe_interval
            ),
        )
    return _memo[key]


@pytest.mark.parametrize(
    "approach", ALL_APPROACHES, ids=[a.key for a in ALL_APPROACHES]
)
def test_join_delay_matches_packet_mode(approach):
    """Default probe cadence: fluid §4.3 join delay within 2 % of packet."""
    packet, fluid = _pair(approach)
    assert packet["join_delay"] is not None
    assert fluid["join_delay"] is not None
    assert fluid["join_delay"] == pytest.approx(
        packet["join_delay"], rel=REL_TOL, abs=ABS_TOL
    )


def test_join_delay_not_snapped_to_coarse_probe_grid():
    """A 5 s probe cadence must not quantize a ~1.6 s join delay.

    This is the load-bearing regression guard: without the immediate
    out-of-cycle resync probe, the fluid join delay here lands on the
    next periodic probe tick — seconds away from the packet-mode
    figure — and this assertion fails by an order of magnitude.
    """
    approach = ALL_APPROACHES[0]
    packet, fluid = _pair(approach, probe_interval=5.0)
    assert fluid["join_delay"] is not None
    error = abs(fluid["join_delay"] - packet["join_delay"])
    assert error <= max(REL_TOL * packet["join_delay"], ABS_TOL), (
        f"fluid join delay {fluid['join_delay']:.4f}s deviates {error:.4f}s "
        f"from packet mode {packet['join_delay']:.4f}s — probe-grid "
        "quantization is back"
    )


def test_leave_delay_unaffected_by_probe_cadence():
    """Leave detection is pure control plane (MLD timers); a coarse
    probe cadence must leave it untouched."""
    packet, fluid = _pair(ALL_APPROACHES[0], probe_interval=5.0)
    assert fluid["leave_delay"] == pytest.approx(
        packet["leave_delay"], rel=0.05, abs=1.0
    )
