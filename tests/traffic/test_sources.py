"""Source generators: flow naming, validation, rate properties."""

import pytest

from repro.net import Network
from repro.traffic import (
    CbrSource,
    OnOffSource,
    PacketModel,
    FluidModel,
    TRAFFIC_MODELS,
    make_traffic_model,
    reset_flow_counter,
)
from topo_helpers import build_line


def _host_and_group():
    topo = build_line(n_routers=1, seed=3)
    host = topo.host_on(0, 50, "H")
    return topo, host


class TestFlowCounter:
    def test_auto_flow_names_reset_per_network(self):
        """Two scenarios in one process must name their flows
        identically — Network.__init__ resets the counter exactly like
        reset_packet_uids (regression: it used to be process-global)."""
        names = []
        for _ in range(2):
            topo, host = _host_and_group()
            src_a = CbrSource(host, topo.group)
            src_b = CbrSource(host, topo.group)
            names.append((src_a.flow, src_b.flow))
        assert names[0] == names[1]
        assert names[0] == ("H-flow1", "H-flow2")

    def test_reset_flow_counter_restarts_at_one(self):
        topo, host = _host_and_group()
        CbrSource(host, topo.group)
        CbrSource(host, topo.group)
        reset_flow_counter()
        assert CbrSource(host, topo.group).flow == "H-flow1"

    def test_explicit_flow_name_skips_counter(self):
        topo, host = _host_and_group()
        src = CbrSource(host, topo.group, flow="my-flow")
        assert src.flow == "my-flow"
        assert CbrSource(host, topo.group).flow == "H-flow1"


class TestValidation:
    def test_cbr_rejects_nonpositive_payload(self):
        topo, host = _host_and_group()
        with pytest.raises(ValueError, match="payload_bytes"):
            CbrSource(host, topo.group, payload_bytes=0)
        with pytest.raises(ValueError, match="payload_bytes"):
            CbrSource(host, topo.group, payload_bytes=-5)

    def test_onoff_rejects_nonpositive_payload(self):
        topo, host = _host_and_group()
        with pytest.raises(ValueError, match="payload_bytes"):
            OnOffSource(host, topo.group, payload_bytes=0)

    def test_cbr_rejects_nonpositive_interval(self):
        topo, host = _host_and_group()
        with pytest.raises(ValueError, match="packet_interval"):
            CbrSource(host, topo.group, packet_interval=0.0)

    def test_onoff_rejects_nonpositive_phases(self):
        topo, host = _host_and_group()
        with pytest.raises(ValueError, match="mean_on/mean_off"):
            OnOffSource(host, topo.group, mean_on=0.0)


class TestRateProperties:
    def test_cbr_bit_rate(self):
        topo, host = _host_and_group()
        src = CbrSource(host, topo.group, packet_interval=0.05,
                        payload_bytes=1000)
        assert src.bit_rate == pytest.approx(1000 * 8 / 0.05)
        assert src.mean_bit_rate == src.bit_rate

    def test_onoff_duty_cycle_and_mean_rate(self):
        topo, host = _host_and_group()
        src = OnOffSource(host, topo.group, packet_interval=0.1,
                          payload_bytes=500, mean_on=10.0, mean_off=30.0)
        assert src.duty_cycle == pytest.approx(0.25)
        assert src.mean_bit_rate == pytest.approx(src.bit_rate * 0.25)


class TestRegistry:
    def test_default_is_packet(self):
        model = make_traffic_model()
        assert isinstance(model, PacketModel)
        assert model.name == "packet"

    def test_fluid_by_name(self):
        model = make_traffic_model("fluid", probe_interval=5.0)
        assert isinstance(model, FluidModel)
        assert model.probe_interval == 5.0

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown traffic model"):
            make_traffic_model("teleport")

    def test_registry_names(self):
        assert TRAFFIC_MODELS == ("packet", "fluid")

    def test_packet_model_builds_plain_sources(self):
        """Golden-trace parity: PacketModel must construct the exact
        CbrSource/OnOffSource the pre-refactor code did."""
        topo, host = _host_and_group()
        model = make_traffic_model("packet")
        model.attach(Network(seed=0))
        src = model.add_cbr(host, topo.group, packet_interval=0.05,
                            flow="S-flow")
        assert type(src) is CbrSource
        assert (src.flow, src.packet_interval) == ("S-flow", 0.05)


class TestWorkloadsShim:
    def test_legacy_import_path_still_works(self):
        from repro.workloads import CbrSource as ShimCbr
        from repro.workloads.traffic import OnOffSource as ShimOnOff

        assert ShimCbr is CbrSource
        assert ShimOnOff is OnOffSource
