"""FluidModel semantics: analytic exactness, probes, losses, boundaries.

The equivalence suite (test_fluid_equivalence.py) checks fluid against
packet mode; this file checks fluid against *closed form* — between two
protocol boundaries the charged bytes must equal rate x time exactly.
"""

import pytest

from repro.core import PaperScenario, ScenarioConfig
from repro.net.loss import GilbertElliottLoss, gilbert_for_mean_loss
from repro.net.stats import CATEGORIES, FLUID_PROBE_CATEGORY


def _fluid_scenario(**kw):
    sc = PaperScenario(
        ScenarioConfig(traffic_model="fluid", **kw)
    )
    sc.converge()
    return sc


# wire rate of the default 20 pkt/s x 1000 B flow (+40 B IPv6 header)
WIRE_RATE = (1000 + 40) / 0.05


class TestAnalyticExactness:
    def test_static_tree_bytes_equal_rate_times_dt(self):
        """With the tree converged and unchanged, the per-link
        mcast_data accrual over a window is exactly R x dt — the
        closed-form integral of a constant rate."""
        sc = _fluid_scenario()
        before = sc.metrics.snapshot()
        sc.run_until(38.0)
        delta = sc.metrics.snapshot().delta(before)
        dt = 38.0 - before.time
        # L1 (the sender link) carries the flow exactly once
        assert delta.bytes_on("L1", "mcast_data") == pytest.approx(
            WIRE_RATE * dt, rel=1e-9
        )
        sc.finish()

    def test_sync_is_idempotent(self):
        sc = _fluid_scenario()
        sc.traffic.sync()
        snap1 = sc.metrics.snapshot()
        snap2 = sc.metrics.snapshot()  # same sim time, second sync
        assert snap1.total("mcast_data") == snap2.total("mcast_data")
        sc.finish()

    def test_describe_reports_probe_and_recompute_counts(self):
        sc = _fluid_scenario()
        sc.finish()
        desc = sc.traffic.describe()
        assert desc["traffic_model"] == "fluid"
        assert desc["flows"] == 1
        assert desc["probes_sent"] >= 1
        assert desc["recomputes"] > 0
        assert desc["analytic_bytes"] > 0


class TestProbes:
    def test_probe_bytes_in_dedicated_category(self):
        """Probe datagrams are charged to ``fluid_probe`` at full wire
        size so the analytic data categories stay exact."""
        sc = _fluid_scenario()
        sc.finish()
        stats = sc.net.stats
        assert stats.total_bytes(FLUID_PROBE_CATEGORY) > 0
        # probes are whole real packets: byte count divisible by wire size
        assert stats.total_packets(FLUID_PROBE_CATEGORY) >= 1

    def test_probe_category_not_in_public_categories(self):
        """render()/report layouts iterate CATEGORIES; the probe
        category is bookkeeping, not a §4.3 metric."""
        assert FLUID_PROBE_CATEGORY not in CATEGORIES

    def test_probe_decimation(self):
        """Probes replace per-packet events at the configured cadence:
        the default is 100x sparser than the packet interval."""
        sc = _fluid_scenario()
        sc.run_until(80.0)
        sc.finish()
        probes = sc.traffic.probes_sent()
        packets_equiv = (80.0 - 20.0) / 0.05
        assert probes < packets_equiv / 50

    def test_explicit_probe_interval(self):
        sc = _fluid_scenario(probe_interval=2.5)
        assert sc.source.probe_interval == 2.5
        sc.finish()

    def test_probe_interval_below_packet_interval_rejected(self):
        with pytest.raises(ValueError, match="probe_interval"):
            _fluid_scenario(probe_interval=0.01)


class TestLossModels:
    def test_bernoulli_loss_scales_rates(self):
        """A lossy member link leaks rate x mean_loss into the
        analytic loss ledger."""
        sc = _fluid_scenario()
        link = sc.paper.link("L4")
        link.loss_rate = 0.25
        base = sc.traffic.lost_bytes.get("link-loss", 0.0)
        sc.run_for(8.0)
        sc.traffic.sync()
        leaked = sc.traffic.lost_bytes["link-loss"] - base
        assert leaked == pytest.approx(WIRE_RATE * 0.25 * 8.0, rel=1e-6)
        sc.finish()

    def test_gilbert_elliott_uses_stationary_mean(self):
        """GE loss enters the fluid model through ``mean_loss`` — the
        stationary expected-throughput multiplier."""
        ge = gilbert_for_mean_loss(0.2)
        assert isinstance(ge, GilbertElliottLoss)
        sc = _fluid_scenario()
        link = sc.paper.link("L4")
        link.set_loss_model(ge)
        assert link.loss_rate == pytest.approx(ge.mean_loss)
        base = sc.traffic.lost_bytes.get("link-loss", 0.0)
        sc.run_for(5.0)
        sc.traffic.sync()
        leaked = sc.traffic.lost_bytes["link-loss"] - base
        assert leaked == pytest.approx(WIRE_RATE * ge.mean_loss * 5.0, rel=1e-6)
        sc.finish()

    def test_link_down_stops_charging(self):
        """Link.add_on_change: an administrative down immediately
        reroutes the rate into the link-down loss ledger."""
        sc = _fluid_scenario()
        link = sc.paper.link("L1")  # the sender's link: kills the flow
        before = sc.metrics.snapshot()
        link.set_down()
        sc.run_for(5.0)
        sc.traffic.sync()
        delta = sc.metrics.snapshot().delta(before)
        assert delta.bytes_on("L1", "mcast_data") == pytest.approx(0.0, abs=1e-6)
        assert sc.traffic.lost_bytes["link-down"] == pytest.approx(
            WIRE_RATE * 5.0, rel=1e-6
        )
        link.set_up()
        sc.finish()


class TestBoundaryEvents:
    def test_rate_changes_emit_fluid_trace_events(self):
        """Synthetic ``fluid``/``rate-change`` events mark tree
        boundaries so offline span/trace analysis sees the fluid
        run's structure."""
        sc = _fluid_scenario()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(60.0)
        sc.finish()
        events = list(sc.net.tracer.query("fluid"))
        assert events, "expected rate-change boundary events"
        assert all(ev.detail["event"] == "rate-change" for ev in events)
        # the handover changed rates on the new link
        links_touched = {ev.node for ev in events}
        assert "L6" in links_touched

    def test_flow_stop_is_a_boundary(self):
        sc = _fluid_scenario()
        before = sc.metrics.snapshot()
        sc.source.stop()
        sc.run_for(5.0)
        sc.traffic.sync()
        delta = sc.metrics.snapshot().delta(before)
        assert delta.bytes_on("L1", "mcast_data") == pytest.approx(0.0, abs=1e-6)
        sc.finish()


class TestCounterTopUps:
    def test_ha_encapsulation_counters_accrue(self):
        """Figure 3 approach under fluid: the HA's encapsulation load
        grows at the residual analytic rate between probes."""
        from repro.core import BIDIRECTIONAL_TUNNEL

        sc = _fluid_scenario(approach=BIDIRECTIONAL_TUNNEL)
        sc.move("R3", "L1", at=40.0)
        sc.run_until(70.0)
        sc.finish()
        ha = sc.paper.router("D")
        assert ha.load["encapsulations"] > 0
        assert sc.paper.host("R3").load["decapsulations"] > 0
        # delivery continues at the tunnel endpoint
        assert sc.traffic.delivered_bytes["R3"] > 0
