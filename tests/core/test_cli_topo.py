"""CLI contract tests for ``repro topo`` and ``repro sweep scale``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestTopoCommand:
    def test_human_readable_describe(self, capsys):
        main(["topo", "--model", "hier", "--depth", "2", "--fanout", "3"])
        out = capsys.readouterr().out
        assert "model: hier" in out
        assert "routers: 12" in out
        assert "connected: yes" in out
        assert "digest: " in out

    def test_json_payload(self, capsys):
        main(["topo", "--model", "hier", "--depth", "2", "--fanout", "3",
              "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "topo"
        assert payload["model"] == "hier"
        assert payload["routers"] == 12
        assert payload["connected"] is True
        assert len(payload["digest"]) == 64

    def test_json_digest_is_seed_deterministic(self, capsys):
        def digest(seed: str) -> str:
            main(["topo", "--model", "waxman", "--nodes", "10",
                  "--seed", seed, "--json"])
            return json.loads(capsys.readouterr().out)["digest"]

        assert digest("3") == digest("3")
        assert digest("3") != digest("4")

    def test_figure1_model(self, capsys):
        main(["topo", "--model", "figure1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["routers"] == 5
        assert payload["links"] == 6
        assert payload["hosts"] == 4

    def test_invalid_params_exit_cleanly(self):
        with pytest.raises(SystemExit):
            main(["topo", "--model", "fattree", "--k", "3"])  # odd k
        with pytest.raises(SystemExit):
            main(["topo", "--model", "hier", "--depth", "0"])


class TestSweepScale:
    def test_scale_grid_json(self, capsys):
        main([
            "sweep", "scale",
            "--sizes", "1x3", "2x3",
            "--receivers", "10",
            "--groups", "1", "2",
            "--duration", "8",
            "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["grid"] == "scale"
        report = payload["report"]
        assert report["experiment"] == "EXP-S1"
        assert report["cells"] == 4
        assert set(report["curves"]) == {
            "state_vs_nodes",
            "messages_vs_nodes",
            "gain_vs_receivers",
            "gain_vs_groups",
        }
        assert report["gain_trend_increasing"] is True
        assert payload["campaign"]["cells"] == 4

    def test_bad_sizes_token_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "scale", "--sizes", "banana"])
