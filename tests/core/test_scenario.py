"""Unit tests for the scenario harness."""

import pytest

from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig


class TestPaperScenario:
    def test_converge_runs_to_configured_time(self):
        sc = PaperScenario(ScenarioConfig(seed=1, converge_until=25.0))
        sc.converge()
        assert sc.now == 25.0

    def test_converge_idempotent(self):
        sc = PaperScenario(ScenarioConfig(seed=1))
        sc.converge()
        sent = sc.source.sent
        sc.converge()
        assert sc.source.sent == sent

    def test_source_rate(self):
        cfg = ScenarioConfig(seed=1, packet_interval=0.1, traffic_start=20.0,
                             converge_until=30.0)
        sc = PaperScenario(cfg)
        sc.converge()
        # 10 s of traffic at 10 pkt/s (inclusive first tick)
        assert sc.source.sent in (100, 101)

    def test_move_scheduled_in_future(self):
        sc = PaperScenario(ScenarioConfig(seed=1))
        sc.converge()
        when = sc.move("R3", "L6", at=50.0)
        assert when == 50.0
        assert sc.paper.host("R3").current_link.name == "L4"
        sc.run_until(55.0)
        assert sc.paper.host("R3").current_link.name == "L6"

    def test_move_immediate(self):
        sc = PaperScenario(ScenarioConfig(seed=1))
        sc.converge()
        sc.move("R3", "L6")
        sc.run_for(5.0)
        assert sc.paper.host("R3").current_link.name == "L6"

    def test_run_for(self):
        sc = PaperScenario(ScenarioConfig(seed=1))
        sc.converge()
        sc.run_for(7.5)
        assert sc.now == pytest.approx(37.5)

    def test_tree_probe_shapes(self):
        sc = PaperScenario(ScenarioConfig(seed=1))
        sc.converge()
        tree = sc.current_tree()
        assert set(tree) == {"A", "B", "C", "D", "E"}
        assert all(isinstance(v, list) for v in tree.values())

    def test_receivers_instrumented(self):
        sc = PaperScenario(ScenarioConfig(seed=1))
        assert set(sc.apps) == {"R1", "R2", "R3"}
        sc.converge()
        assert sc.apps["R1"].unique_count > 0
