"""Integration tests for the HA-load scaling sweeps (§4.3.2)."""

import pytest

from repro.core import (
    render_scaling,
    run_ha_load_vs_groups,
    run_ha_load_vs_mobiles,
    run_ha_load_vs_rate,
)


class TestHaLoadVsMobiles:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ha_load_vs_mobiles(counts=(1, 2, 4), measure_window=20.0)

    def test_one_binding_per_mobile(self, rows):
        assert [r["bindings"] for r in rows] == [1, 2, 4]

    def test_encapsulations_scale_linearly(self, rows):
        """One tunnel copy per datagram per mobile — the unicast
        replication cost of the bi-directional tunnel (§4.3.2)."""
        base = rows[0]["ha_encapsulations"]
        assert rows[1]["ha_encapsulations"] == pytest.approx(2 * base, rel=0.1)
        assert rows[2]["ha_encapsulations"] == pytest.approx(4 * base, rel=0.1)

    def test_tunnel_overhead_grows(self, rows):
        overheads = [r["tunnel_overhead_bytes"] for r in rows]
        assert overheads[0] < overheads[1] < overheads[2]

    def test_render(self, rows):
        assert "mobiles" in render_scaling(rows, "mobiles")


class TestHaLoadVsGroupsAndRate:
    def test_groups_scale(self):
        rows = run_ha_load_vs_groups(counts=(1, 2), measure_window=20.0)
        assert rows[0]["groups_on_behalf"] == 1
        assert rows[1]["groups_on_behalf"] == 2
        assert rows[1]["ha_encapsulations"] == pytest.approx(
            2 * rows[0]["ha_encapsulations"], rel=0.1
        )

    def test_rate_scales(self):
        rows = run_ha_load_vs_rate(packet_intervals=(0.2, 0.1), measure_window=20.0)
        assert rows[1]["ha_encapsulations"] == pytest.approx(
            2 * rows[0]["ha_encapsulations"], rel=0.15
        )
