"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in COMMANDS:
            args = parser.parse_args([command] if command != "timers" else ["timers"])
            assert args.command == command

    def test_default_seed(self):
        args = build_parser().parse_args(["fig1"])
        assert args.seed == 0

    def test_custom_seed(self):
        args = build_parser().parse_args(["fig2", "--seed", "7"])
        assert args.seed == 7

    def test_timer_arguments(self):
        args = build_parser().parse_args(
            ["timers", "--intervals", "10", "20", "--repeats", "2"]
        )
        assert args.intervals == [10.0, 20.0]
        assert args.repeats == 2


class TestExecution:
    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "fig1" in out and "compare" in out

    def test_no_command_lists(self, capsys):
        main([])
        assert "experiments:" in capsys.readouterr().out

    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Bi-directional tunnel" in out

    def test_fig1_runs(self, capsys):
        main(["fig1", "--seed", "1"])
        out = capsys.readouterr().out
        assert "L1 --A--> L2" in out
        assert "asserts:" in out

    def test_timers_small(self, capsys):
        main(["timers", "--intervals", "10", "--repeats", "1"])
        out = capsys.readouterr().out
        assert "T_Query" in out and "10" in out
