"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in COMMANDS:
            args = parser.parse_args([command] if command != "timers" else ["timers"])
            assert args.command == command

    def test_default_seed(self):
        args = build_parser().parse_args(["fig1"])
        assert args.seed == 0

    def test_custom_seed(self):
        args = build_parser().parse_args(["fig2", "--seed", "7"])
        assert args.seed == 7

    def test_timer_arguments(self):
        args = build_parser().parse_args(
            ["timers", "--intervals", "10", "20", "--repeats", "2"]
        )
        assert args.intervals == [10.0, 20.0]
        assert args.repeats == 2


class TestExecution:
    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "fig1" in out and "compare" in out

    def test_no_command_lists(self, capsys):
        main([])
        assert "experiments:" in capsys.readouterr().out

    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Bi-directional tunnel" in out

    def test_fig1_runs(self, capsys):
        main(["fig1", "--seed", "1"])
        out = capsys.readouterr().out
        assert "L1 --A--> L2" in out
        assert "asserts:" in out

    def test_timers_small(self, capsys):
        main(["timers", "--intervals", "10", "--repeats", "1"])
        out = capsys.readouterr().out
        assert "T_Query" in out and "10" in out


class TestJsonMode:
    def test_fig1_json(self, capsys):
        import json

        main(["fig1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig1"
        assert "tree" in payload and "prunes" in payload

    def test_table1_json(self, capsys):
        import json

        main(["table1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["approaches"]) == 4

    def test_timers_json(self, capsys):
        import json

        main(["timers", "--intervals", "10", "--repeats", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        (point,) = payload["points"]
        assert point["query_interval"] == 10.0
        assert "mean_join_delay" in point


class TestObservabilityCommands:
    def test_trace_export_import_same_numbers(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "run.jsonl")
        main(["trace", "--export", path, "--json"])
        live = json.loads(capsys.readouterr().out)
        main(["trace", "--import", path, "--json"])
        offline = json.loads(capsys.readouterr().out)
        for key in (
            "join_delay",
            "leave_delay",
            "wasted_bytes_old_link",
            "tunnel_overhead",
            "mld_bytes",
            "pim_bytes",
            "mipv6_bytes",
            "events_total",
        ):
            assert live[key] == offline[key], key

    def test_trace_metrics_prometheus(self, capsys):
        main(["trace", "--metrics"])
        out = capsys.readouterr().out
        assert "# TYPE repro_trace_events_total counter" in out
        assert "repro_link_bytes{" in out
        assert "repro_node_load{" in out

    def test_trace_ring_capacity(self, capsys):
        main(["trace", "--capacity", "1000", "--json"])
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["events_total"] == 1000

    def test_profile_fig1(self, capsys):
        main(["profile", "fig1", "--top", "3"])
        out = capsys.readouterr().out
        assert "kernel profile" in out
        assert "share" in out

    def test_profile_json(self, capsys):
        import json

        main(["profile", "fig1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_events"] > 0
        assert payload["entries"][0]["count"] > 0
