"""Unit tests for scenario metrics."""

import pytest

from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.core.metrics import StatsSnapshot, per_hop_latency


@pytest.fixture(scope="module")
def ran():
    sc = PaperScenario(ScenarioConfig(seed=21, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(80.0)
    return sc


class TestSnapshots:
    def test_snapshot_totals(self, ran):
        snap = ran.metrics.snapshot()
        assert snap.total("mcast_data") > 0
        assert snap.total() >= snap.total("mcast_data")

    def test_delta_subtracts(self):
        a = StatsSnapshot(0.0, {"L1": {"mcast_data": 100}})
        b = StatsSnapshot(5.0, {"L1": {"mcast_data": 250, "mld": 24}})
        d = b.delta(a)
        assert d.bytes_on("L1", "mcast_data") == 150
        assert d.bytes_on("L1", "mld") == 24

    def test_bytes_on_unknown_link(self):
        snap = StatsSnapshot(0.0, {})
        assert snap.bytes_on("nope") == 0


class TestDelays:
    def test_move_and_attach_times(self, ran):
        assert ran.metrics.move_start_time("R3") == 40.0
        attach = ran.metrics.attach_time("R3", "L6")
        assert attach == pytest.approx(40.1)

    def test_coa_ready_time(self, ran):
        coa = ran.metrics.coa_ready_time("R3", after=40.0)
        assert coa == pytest.approx(41.6)

    def test_leave_delay_none_before_expiry(self, ran):
        # at t=80 the membership on L4 has not expired yet (T_MLI=260)
        assert ran.metrics.leave_delay("L4", ran.group, 40.0) is None

    def test_bu_rtts_exposed(self, ran):
        assert len(ran.metrics.binding_update_rtts("R3")) >= 1


class TestCounts:
    def test_assert_graft_prune_counts(self, ran):
        assert ran.metrics.assert_count() >= 2
        assert ran.metrics.graft_count(since=40.0) >= 1
        assert ran.metrics.prune_count() >= 1

    def test_entries_created_filter(self, ran):
        src = ran.paper.sender.home_address
        assert ran.metrics.entries_created(source=src) == 5
        assert ran.metrics.entries_created() >= 5

    def test_flood_extent(self, ran):
        src = ran.paper.sender.home_address
        links = ran.metrics.flood_extent(src, ran.group)
        assert "L2" in links and "L3" in links and "L4" in links


class TestOptimality:
    def test_per_hop_latency(self, ran):
        link = ran.net.link("L1")
        expected = (1040 * 8) / link.bandwidth_bps + link.delay
        assert per_hop_latency(link, 1000) == pytest.approx(expected)

    def test_optimal_latency_scales_with_hops(self, ran):
        one = ran.metrics.optimal_latency("L1", "L1", 1000)
        four = ran.metrics.optimal_latency("L1", "L6", 1000)
        assert four == pytest.approx(4 * one)

    def test_stretch_of_optimal_is_one(self, ran):
        lat = ran.metrics.optimal_latency("L1", "L4", 1000)
        assert ran.metrics.stretch(lat, "L1", "L4", 1000) == pytest.approx(1.0)


class TestSystemLoad:
    def test_per_node_rows(self, ran):
        load = ran.metrics.system_load()
        assert set(load) == {"A", "B", "C", "D", "E", "S", "R1", "R2", "R3"}
        assert load["A"]["pim_entries"] >= 1
        assert "bindings" in load["D"]

    def test_local_approach_no_ha_encap(self, ran):
        assert ran.metrics.home_agent_encapsulations() == 0
        assert ran.metrics.total_encapsulations() == 0
