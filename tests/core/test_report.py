"""Tests for the full-report generator (reduced sizes)."""

import pytest

from repro.core.report import generate_report
from repro.mld import MldConfig

FAST_MLD = MldConfig(
    query_interval=15.0, query_response_interval=5.0, startup_query_interval=4.0
)


@pytest.fixture(scope="module")
def report_text():
    return generate_report(
        seed=3,
        mld=FAST_MLD,
        timer_intervals=(10.0, 40.0),
        timer_seeds=(0,),
        include_scaling=False,
    )


class TestGenerateReport:
    def test_has_all_sections(self, report_text):
        for heading in (
            "Figure 1", "Figure 2", "Figures 3 & 4", "Table 1",
            "§4.3 comparison", "§4.4 MLD timer",
        ):
            assert heading in report_text

    def test_claims_all_pass(self, report_text):
        assert "All paper claims hold: True" in report_text
        assert "[FAIL]" not in report_text

    def test_tree_rendered(self, report_text):
        assert "L1 --A--> L2" in report_text

    def test_markdown_code_fences_balanced(self, report_text):
        assert report_text.count("```") % 2 == 0

    def test_deterministic(self):
        kwargs = dict(
            seed=3, mld=FAST_MLD, timer_intervals=(10.0,),
            timer_seeds=(0,), include_scaling=False,
        )
        assert generate_report(**kwargs) == generate_report(**kwargs)
