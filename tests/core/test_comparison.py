"""Integration tests for the §4.3 comparison engine (reduced horizons)."""

import pytest

from repro.core import (
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    TUNNEL_MH_TO_HA,
    run_full_comparison,
)
from repro.core.comparison import receiver_mobility_run, sender_mobility_run
from repro.mld import MldConfig

# A small MLD configuration keeps leave-delay horizons short in tests.
FAST_MLD = MldConfig(
    query_interval=15.0,
    query_response_interval=5.0,
    startup_query_interval=4.0,
)


class TestReceiverRun:
    def test_local_row_shape(self):
        row = receiver_mobility_run(
            LOCAL_MEMBERSHIP, seed=1, mld=FAST_MLD, measure_leave=True
        )
        assert row["approach"] == "local"
        assert 1.0 < row["join_delay"] < 3.0
        assert 0 < row["leave_delay"] <= FAST_MLD.multicast_listener_interval
        assert row["ha_encapsulations"] == 0
        assert row["tunnel_overhead"] == 0
        assert row["stretch"] == pytest.approx(1.0, rel=0.15)

    def test_bidir_row_shape(self):
        row = receiver_mobility_run(
            BIDIRECTIONAL_TUNNEL, seed=1, mld=FAST_MLD, measure_leave=False
        )
        assert row["join_delay"] < 3.0
        assert row["ha_encapsulations"] > 50
        assert row["tunnel_overhead"] > 0
        assert row["stretch"] > 1.1
        assert row["ha_groups_on_behalf"] == 1
        assert row["mn_decapsulations"] > 50

    def test_wait_for_query_join_delay(self):
        row = receiver_mobility_run(
            LOCAL_MEMBERSHIP, seed=1, mld=FAST_MLD,
            unsolicited=False, measure_leave=False,
        )
        # must wait for a query: delay > handoff pipeline, < cycle + MRD
        assert row["join_delay"] > 2.0
        assert row["join_delay"] <= 15.0 + 5.0 + 2.0


class TestSenderRun:
    def test_local_sender_rebuilds_tree(self):
        row = sender_mobility_run(LOCAL_MEMBERSHIP, seed=1, mld=FAST_MLD,
                                  run_until=70.0)
        assert row["new_sg_entries"] == 5
        assert row["tunnel_overhead"] == 0
        assert len(row["flood_links"]) >= 4

    def test_tunnel_sender_keeps_tree(self):
        row = sender_mobility_run(BIDIRECTIONAL_TUNNEL, seed=1, mld=FAST_MLD,
                                  run_until=70.0)
        assert row["new_sg_entries"] == 0
        assert row["tunnel_overhead"] > 0
        assert row["reverse_tunneled"] > 100
        assert row["mn_encapsulations"] > 100

    def test_interruption_bounded_by_handoff_pipeline(self):
        row = sender_mobility_run(TUNNEL_MH_TO_HA, seed=1, mld=FAST_MLD,
                                  run_until=70.0)
        assert row["interruption"] is not None
        assert row["interruption"] < 3.0


class TestFullComparison:
    @pytest.fixture(scope="class")
    def report(self):
        return run_full_comparison(seed=2, mld=FAST_MLD)

    def test_all_paper_claims_hold(self, report):
        failed = [c for c in report.claims if not c[1]]
        assert not failed, failed

    def test_rows_per_approach(self, report):
        assert {r["approach"] for r in report.receiver_rows} == {
            "local", "bidir", "ut-mh-ha", "ut-ha-mh",
        }
        assert len(report.sender_rows) == 4

    def test_render_is_complete(self, report):
        text = report.render()
        assert "join delay" in text
        assert "Mobile sender" in text
        assert "[PASS]" in text and "[FAIL]" not in text

    def test_claims_count(self, report):
        # 2 join-delay claims + 4 leave + 2 optimality + 2 load + 3 sender
        # + 2 uni-directional inheritances
        assert len(report.claims) >= 12
