"""Tests for the EXP-S1 scaling study (repro.core.scalestudy).

The campaign contracts worth pinning: a cell is a pure function of its
parameters (so results cache and shard), running the sweep under
``jobs=1`` and ``jobs=N`` yields byte-identical reports, and the
report carries the machine-readable curves with the Helmy-shaped
aggregation-gain trend.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner
from repro.core.scalestudy import (
    DEFAULT_SIZES,
    render_scale_report,
    run_scale_sweep,
    scale_cell,
    scale_grid,
)

TINY = [{"depth": 1, "fanout": 3}, {"depth": 2, "fanout": 3}]


def tiny_sweep(runner=None, jobs=1):
    return run_scale_sweep(
        sizes=TINY,
        receivers=(12,),
        groups=(1, 2),
        mobility=(0.0,),
        seed=0,
        warmup=6.0,
        duration=8.0,
        runner=runner,
        jobs=jobs,
    )


class TestScaleCell:
    def test_cell_is_deterministic(self):
        kw = dict(
            model_params={"depth": 1, "fanout": 3},
            receivers=8,
            groups=1,
            warmup=4.0,
            duration=6.0,
        )
        a = scale_cell(**kw)
        b = scale_cell(**kw)
        assert a == b
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_cell_reports_the_contract_fields(self):
        row = scale_cell(
            model_params={"depth": 1, "fanout": 2},
            receivers=4,
            warmup=4.0,
            duration=6.0,
        )
        assert row["routers"] == 2
        assert row["events"] > 0
        assert row["graph_digest"]
        snap = row["state"]
        assert snap["total_entries"] == sum(snap["entries"].values())
        assert snap["bytes"]["dict"] >= snap["bytes"]["compact"] > 0
        assert row["aggregation_gain"] >= 1.0
        assert row["control_packets"]["pim"] > 0
        assert row["control_packets"]["mld"] > 0
        # no wall-clock leakage: every value must be JSON-able and
        # reproducible, which the determinism test enforces; spot-check
        # that nothing looks like a timestamp
        assert "wall" not in json.dumps(row)

    def test_mobility_schedules_moves(self):
        row = scale_cell(
            model_params={"depth": 1, "fanout": 3},
            receivers=10,
            mobility=1.0,
            warmup=4.0,
            duration=6.0,
        )
        assert row["moves"] > 0
        assert row["control_packets"]["mipv6"] > 0

    def test_dict_backend_gain_is_unity(self):
        row = scale_cell(
            model_params={"depth": 1, "fanout": 2},
            receivers=4,
            backend="dict",
            warmup=4.0,
            duration=6.0,
        )
        # gain is always dict-bytes / compact-bytes of the *model*, so
        # it is backend-independent; what changes is which backend ran
        assert row["backend"] == "dict"
        assert row["aggregation_gain"] >= 1.0


class TestGridAndSweep:
    def test_grid_covers_the_axes(self):
        grid = scale_grid(sizes=TINY, receivers=(5, 10), groups=(1,))
        cells = list(grid.cells())
        assert len(cells) == len(TINY) * 2
        assert all(c.task == "scale.cell" for c in cells)

    def test_default_sizes_reach_a_thousand_routers(self):
        top = DEFAULT_SIZES[-1]
        n = sum(top["fanout"] ** d for d in range(1, top["depth"] + 1))
        assert n >= 1000

    def test_report_shape_and_gain_trend(self):
        report = tiny_sweep()
        assert report["cells"] == 4
        assert report["max_routers"] == 12
        curves = report["curves"]
        assert [p["routers"] for p in curves["state_vs_nodes"]] == [3, 12]
        assert [p["groups"] for p in curves["gain_vs_groups"]] == [1, 2]
        gains = [p["aggregation_gain"] for p in curves["gain_vs_groups"]]
        assert gains[1] > gains[0], "more groups must aggregate better"
        assert report["gain_trend_increasing"] is True

    def test_jobs_1_and_jobs_n_reports_identical(self):
        serial = tiny_sweep(jobs=1)
        parallel = tiny_sweep(jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_sweep_results_cache(self, tmp_path):
        runner = CampaignRunner(jobs=1, cache_dir=str(tmp_path), master_seed=0)
        tiny_sweep(runner=runner)
        stats = runner.stats()
        assert stats["executed"] == 4 and stats["cached"] == 0
        runner2 = CampaignRunner(jobs=1, cache_dir=str(tmp_path), master_seed=0)
        report2 = tiny_sweep(runner=runner2)
        assert runner2.stats()["cached"] == 4
        assert report2["cells"] == 4

    def test_render_report(self):
        report = tiny_sweep()
        text = render_scale_report(report)
        assert "EXP-S1" in text
        assert "matches Helmy" in text
        assert "routers" in text
