"""Unit tests for the four approaches (Table 1)."""

import pytest

from repro.core import (
    ALL_APPROACHES,
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    TUNNEL_HA_TO_MH,
    TUNNEL_MH_TO_HA,
    approach_for,
    render_table1,
)
from repro.mipv6 import DeliveryMode


class TestTable1:
    def test_four_distinct_approaches(self):
        assert len(ALL_APPROACHES) == 4
        assert len({a.key for a in ALL_APPROACHES}) == 4
        assert len({(a.send_mode, a.recv_mode) for a in ALL_APPROACHES}) == 4

    def test_numbering_matches_paper(self):
        assert LOCAL_MEMBERSHIP.number == 1
        assert BIDIRECTIONAL_TUNNEL.number == 2
        assert TUNNEL_MH_TO_HA.number == 3
        assert TUNNEL_HA_TO_MH.number == 4

    def test_local_membership_modes(self):
        assert LOCAL_MEMBERSHIP.recv_mode is DeliveryMode.LOCAL
        assert LOCAL_MEMBERSHIP.send_mode is DeliveryMode.LOCAL

    def test_bidirectional_modes(self):
        assert BIDIRECTIONAL_TUNNEL.recv_mode is DeliveryMode.HA_TUNNEL
        assert BIDIRECTIONAL_TUNNEL.send_mode is DeliveryMode.HA_TUNNEL

    def test_unidirectional_mh_to_ha(self):
        """Tunnel used for *sending*, local reception (approach 3)."""
        assert TUNNEL_MH_TO_HA.send_mode is DeliveryMode.HA_TUNNEL
        assert TUNNEL_MH_TO_HA.recv_mode is DeliveryMode.LOCAL

    def test_unidirectional_ha_to_mh(self):
        """Tunnel used for *receiving*, local sending (approach 4)."""
        assert TUNNEL_HA_TO_MH.send_mode is DeliveryMode.LOCAL
        assert TUNNEL_HA_TO_MH.recv_mode is DeliveryMode.HA_TUNNEL

    def test_lookup_covers_matrix(self):
        for send in DeliveryMode:
            for recv in DeliveryMode:
                approach = approach_for(send, recv)
                assert approach.send_mode is send
                assert approach.recv_mode is recv

    def test_lookup_corners(self):
        assert approach_for(DeliveryMode.LOCAL, DeliveryMode.LOCAL) is LOCAL_MEMBERSHIP
        assert (
            approach_for(DeliveryMode.HA_TUNNEL, DeliveryMode.HA_TUNNEL)
            is BIDIRECTIONAL_TUNNEL
        )

    def test_render_contains_all_titles(self):
        table = render_table1()
        for approach in ALL_APPROACHES:
            assert approach.title in table

    def test_figures_annotated(self):
        assert "Figure 2" in LOCAL_MEMBERSHIP.figures
        assert "Figure 3" in BIDIRECTIONAL_TUNNEL.figures
        assert "Figure 4" in BIDIRECTIONAL_TUNNEL.figures

    def test_describe(self):
        text = BIDIRECTIONAL_TUNNEL.describe()
        assert "2." in text and "ha-tunnel" in text
