"""Tests for runtime strategy switching and the adaptive controller."""

import pytest

from repro.core import LOCAL_MEMBERSHIP, BIDIRECTIONAL_TUNNEL, PaperScenario, ScenarioConfig
from repro.core.adaptive import AdaptiveStrategyController
from repro.mipv6 import DeliveryMode


class TestRuntimeSwitching:
    def test_switch_to_tunnel_while_away(self):
        sc = PaperScenario(ScenarioConfig(seed=51, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(60.0)
        r3 = sc.paper.host("R3")
        d = sc.paper.router("D")
        assert d.groups_on_behalf() == []
        r3.set_delivery_modes(recv_mode=DeliveryMode.HA_TUNNEL)
        sc.run_until(80.0)
        # HA took over the subscription; reception continues via tunnel
        assert d.groups_on_behalf() == [sc.group]
        assert sc.net.tracer.count(
            "mipv6", node="R3", event="tunnel-mcast-received", since=62.0
        ) > 0

    def test_switch_to_local_while_away(self):
        sc = PaperScenario(ScenarioConfig(seed=52, approach=BIDIRECTIONAL_TUNNEL))
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(60.0)
        r3 = sc.paper.host("R3")
        d = sc.paper.router("D")
        assert d.groups_on_behalf() == [sc.group]
        r3.set_delivery_modes(
            recv_mode=DeliveryMode.LOCAL, send_mode=DeliveryMode.LOCAL
        )
        sc.run_until(85.0)
        # the HA subscription was cleared; E serves Link 6 natively
        assert d.groups_on_behalf() == []
        assert "L6" in sc.current_tree()["E"]
        tunneled_late = sc.net.tracer.count(
            "mipv6", node="D", event="tunnel-mcast-to-mn", since=70.0
        )
        assert tunneled_late == 0
        assert sc.apps["R3"].first_delivery_after(70.0) is not None

    def test_switch_at_home_is_deferred(self):
        sc = PaperScenario(ScenarioConfig(seed=53, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        r3 = sc.paper.host("R3")
        r3.set_delivery_modes(recv_mode=DeliveryMode.HA_TUNNEL)
        sc.run_for(5.0)
        # nothing happens at home; the mode applies on the next move
        assert sc.paper.router("D").groups_on_behalf() == []
        sc.move("R3", "L6")
        sc.run_for(20.0)
        assert sc.paper.router("D").groups_on_behalf() == [sc.group]


class TestAdaptiveController:
    def _controller(self, sc, **kw):
        r3 = sc.paper.host("R3")
        defaults = dict(window=60.0, high_rate=3.0, low_rate=1.0,
                        check_interval=5.0)
        defaults.update(kw)
        ctl = AdaptiveStrategyController(r3, **defaults)
        ctl.start()
        return r3, ctl

    def test_sedentary_node_stays_local(self):
        sc = PaperScenario(ScenarioConfig(seed=54, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        r3, ctl = self._controller(sc)
        sc.move("R3", "L6", at=40.0)  # a single move
        sc.run_until(200.0)
        assert ctl.switches == 0
        assert r3.recv_mode is DeliveryMode.LOCAL

    def test_high_mobility_switches_to_tunnel(self):
        sc = PaperScenario(ScenarioConfig(seed=55, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        r3, ctl = self._controller(sc)
        # ping-pong between L6 and L5 every 10 s: 6 moves per window
        for k, link in enumerate(["L6", "L5", "L6", "L5", "L6"]):
            sc.move("R3", link, at=40.0 + 10.0 * k)
        sc.run_until(120.0)
        assert ctl.switches >= 1
        assert r3.recv_mode is DeliveryMode.HA_TUNNEL
        assert sc.net.tracer.count("mobility", event="adaptive-switch") >= 1

    def test_settling_down_switches_back(self):
        sc = PaperScenario(ScenarioConfig(seed=56, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        r3, ctl = self._controller(sc, window=40.0)
        for k, link in enumerate(["L6", "L5", "L6", "L5"]):
            sc.move("R3", link, at=40.0 + 8.0 * k)
        sc.run_until(70.0)  # mid-churn: high mobility detected
        assert r3.recv_mode is DeliveryMode.HA_TUNNEL
        sc.run_until(300.0)  # no moves for a long time
        assert r3.recv_mode is DeliveryMode.LOCAL
        assert ctl.switches >= 2

    def test_reception_continuous_across_switches(self):
        sc = PaperScenario(ScenarioConfig(seed=57, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        r3, ctl = self._controller(sc, window=40.0)
        for k, link in enumerate(["L6", "L5", "L6", "L5"]):
            sc.move("R3", link, at=40.0 + 8.0 * k)
        sc.run_until(250.0)
        # after all the churn the receiver still gets the stream
        assert sc.apps["R3"].first_delivery_after(sc.now - 10.0) is not None

    def test_hysteresis_validated(self):
        sc = PaperScenario(ScenarioConfig(seed=58))
        sc.converge()
        with pytest.raises(ValueError):
            AdaptiveStrategyController(
                sc.paper.host("R3"), high_rate=1.0, low_rate=2.0
            )
