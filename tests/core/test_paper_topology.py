"""Unit tests for the Figure 1 network construction."""

import pytest

from repro.core import HOST_HOMES, LINK_PREFIXES, ROUTER_LINKS, build_paper_network
from repro.mipv6 import HomeAgent
from repro.net import Address


@pytest.fixture(scope="module")
def paper():
    return build_paper_network(seed=0)


class TestStructure:
    def test_six_links(self, paper):
        assert sorted(paper.net.links) == [f"L{i}" for i in range(1, 7)]

    def test_five_routers_all_home_agents(self, paper):
        assert sorted(paper.routers) == ["A", "B", "C", "D", "E"]
        for router in paper.routers.values():
            assert isinstance(router, HomeAgent)
            assert router.is_router

    def test_router_attachments_match_figure(self, paper):
        for name, links in ROUTER_LINKS.items():
            router = paper.routers[name]
            attached = sorted(
                i.link.name for i in router.interfaces if i.link is not None
            )
            assert attached == sorted(links), name

    def test_parallel_routers_b_c(self, paper):
        """B and C attach the same two links — the assert-election pair."""
        assert ROUTER_LINKS["B"] == ROUTER_LINKS["C"] == ["L2", "L3"]

    def test_d_is_home_agent_of_links_4_and_5(self, paper):
        d = paper.routers["D"]
        assert d.serves_home_address(Address("2001:db8:4::1"))
        assert d.serves_home_address(Address("2001:db8:5::1"))
        assert not d.serves_home_address(Address("2001:db8:1::1"))

    def test_hosts_at_their_home_links(self, paper):
        for name, (home_link, _ha, _id) in HOST_HOMES.items():
            host = paper.hosts[name]
            assert host.current_link.name == home_link
            assert host.at_home

    def test_host_home_agents_match_paper(self, paper):
        # Paper §4.2: A is HA on Link 1, B on Link 2, D on Links 4/5.
        assert paper.hosts["S"].home_agent_address == Address("2001:db8:1::1")
        assert paper.hosts["R1"].home_agent_address == Address("2001:db8:1::1")
        assert paper.hosts["R2"].home_agent_address == Address("2001:db8:2::2")
        assert paper.hosts["R3"].home_agent_address == Address("2001:db8:4::4")

    def test_group_is_global_multicast(self, paper):
        assert paper.group.is_multicast
        assert not paper.group.is_link_scope_multicast

    def test_sugar_accessors(self, paper):
        assert paper.sender is paper.hosts["S"]
        assert [r.name for r in paper.receivers] == ["R1", "R2", "R3"]
        assert paper.link("L3").name == "L3"
        assert paper.router("E").name == "E"
        assert paper.host("R3").name == "R3"

    def test_prefixes_distinct(self, paper):
        assert len(set(LINK_PREFIXES.values())) == 6
