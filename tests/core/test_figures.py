"""Reproduction tests for the paper's Figures 1-4 (integration level).

Each test runs the Figure 1 network through the exact scenario the
figure depicts and checks the resulting distribution tree / tunnels.
"""

import pytest

from repro.core import (
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    PaperScenario,
    ScenarioConfig,
)
from repro.net import Address


@pytest.fixture(scope="module")
def fig1():
    """Converged Figure 1 scenario (local membership approach)."""
    sc = PaperScenario(ScenarioConfig(seed=11, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    return sc


class TestFigure1:
    """Initial multicast distribution tree for (S on Link 1, G)."""

    def test_tree_spans_links_1_to_4(self, fig1):
        tree = fig1.current_tree()
        assert tree["A"] == ["L2"]
        assert tree["D"] == ["L4"]
        # exactly one of the parallel pair forwards onto L3
        assert sorted(tree["B"] + tree["C"]) == ["L3"]

    def test_links_5_and_6_off_tree(self, fig1):
        tree = fig1.current_tree()
        for links in tree.values():
            assert "L5" not in links and "L6" not in links
        assert fig1.net.stats.link_bytes("L5", "mcast_data") == 0
        assert fig1.net.stats.link_bytes("L6", "mcast_data") == 0

    def test_assert_elected_single_forwarder_on_l3(self, fig1):
        """B and C both start forwarding onto L3; the assert election
        (equal metric, higher address wins) leaves only C."""
        tree = fig1.current_tree()
        assert tree["C"] == ["L3"]
        assert tree["B"] == []
        assert fig1.metrics.assert_count() >= 2

    def test_all_receivers_get_traffic(self, fig1):
        for name in ("R1", "R2", "R3"):
            assert fig1.apps[name].unique_count > 150

    def test_e_pruned(self, fig1):
        """E has no members and no downstream routers: it prunes."""
        assert fig1.net.tracer.count("pim", node="E", event="prune-sent") >= 1

    def test_join_override_protected_d(self, fig1):
        """E's prune on L3 must not cut D off: D join-overrides."""
        assert fig1.apps["R3"].unique_count > 150  # D kept receiving


class TestFigure2:
    """Mobile receiver, local group membership: R3 moves Link 4 -> Link 6."""

    @pytest.fixture(scope="class")
    def fig2(self):
        sc = PaperScenario(ScenarioConfig(seed=12, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(80.0)
        return sc

    def test_e_grafts_link6_onto_tree(self, fig2):
        tree = fig2.current_tree()
        assert tree["E"] == ["L6"]
        assert fig2.metrics.graft_count(since=40.0) >= 1

    def test_r3_receives_after_short_join_delay(self, fig2):
        delay = fig2.join_delay("R3", 40.0)
        # handoff (0.1) + detection (1.0) + CoA (0.5) + report/graft
        assert delay is not None and 1.5 < delay < 3.0

    def test_leave_delay_link4_still_forwarding(self, fig2):
        """Router D still 'believes' a member is on Link 4 (Figure 2)."""
        tree = fig2.current_tree()
        assert "L4" in tree["D"]

    def test_leave_detected_within_t_mli(self):
        sc = PaperScenario(ScenarioConfig(seed=13, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(40.0 + 260.0 + 30.0)
        leave = sc.leave_delay("L4", 40.0)
        assert leave is not None and 0 < leave <= 260.0
        assert "L4" not in sc.current_tree()["D"]


class TestFigure3:
    """Mobile receiver via HA tunnel: R3 moves Link 4 -> Link 1."""

    @pytest.fixture(scope="class")
    def fig3(self):
        sc = PaperScenario(ScenarioConfig(seed=14, approach=BIDIRECTIONAL_TUNNEL))
        sc.converge()
        sc.move("R3", "L1", at=40.0)
        sc.run_until(80.0)
        return sc

    def test_tunnel_established_from_router_d(self, fig3):
        d = fig3.paper.router("D")
        entry = d.binding_cache.get(fig3.paper.host("R3").home_address)
        assert entry is not None
        assert fig3.paper.link("L1").prefix.contains(entry.care_of_address)

    def test_home_agent_joined_on_behalf(self, fig3):
        d = fig3.paper.router("D")
        assert d.groups_on_behalf() == [fig3.group]

    def test_datagrams_tunneled_to_r3(self, fig3):
        d = fig3.paper.router("D")
        assert d.tunneled_to_mobiles > 100
        assert fig3.net.tracer.count("mipv6", node="R3", event="tunnel-mcast-received") > 100

    def test_tree_unchanged(self, fig3):
        tree = fig3.current_tree()
        assert tree["A"] == ["L2"]
        assert "L4" in tree["D"]  # leave delay: D still serves Link 4

    def test_routing_suboptimal_links_crossed_twice(self, fig3):
        """Data reaches Link 1's receiver after crossing to D and back:
        latency is several times the one-link optimum."""
        window = [
            d for d in fig3.apps["R3"].deliveries_between(60.0, 80.0)
            if not d.duplicate
        ]
        assert window
        mean_latency = sum(d.latency for d in window) / len(window)
        optimal = fig3.metrics.optimal_latency("L1", "L1", 1000)
        assert mean_latency > 3 * optimal


class TestFigure4:
    """Mobile sender via tunnel to HA: S moves Link 1 -> Link 6."""

    @pytest.fixture(scope="class")
    def fig4(self):
        sc = PaperScenario(ScenarioConfig(seed=15, approach=BIDIRECTIONAL_TUNNEL))
        sc.converge()
        sc.move("S", "L6", at=40.0)
        sc.run_until(90.0)
        return sc

    def test_tree_still_rooted_at_home_link(self, fig4):
        tree = fig4.current_tree()
        assert tree["A"] == ["L2"]
        assert tree["D"] == ["L4"]

    def test_no_new_source_tree(self, fig4):
        coa = fig4.paper.sender.care_of_address
        assert coa is not None
        assert fig4.metrics.entries_created(source=coa, since=40.0) == 0

    def test_reverse_tunnel_carries_traffic(self, fig4):
        a = fig4.paper.router("A")
        assert a.reverse_tunneled > 500
        assert fig4.paper.sender.load["encapsulations"] > 500

    def test_receivers_keep_receiving(self, fig4):
        for name in ("R1", "R2", "R3"):
            assert fig4.apps[name].first_delivery_after(50.0) is not None

    def test_inner_source_is_home_address(self, fig4):
        """Tunneled datagrams carry the home address as inner source, so
        the original (S on Link 1, G) tree keeps matching."""
        home = fig4.paper.sender.home_address
        deliveries = fig4.net.tracer.query(
            "mcast.deliver", node="R3", since=50.0, src=str(home)
        )
        assert next(deliveries, None) is not None
