"""Integration tests for the §4.4 MLD timer sweep (reduced sizes)."""

import pytest

from repro.core import run_timer_sweep
from repro.core.timer_optimization import render_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_timer_sweep(query_intervals=(10.0, 40.0), seeds=(0, 1),
                           packet_interval=0.2)


class TestTimerSweep:
    def test_point_per_interval(self, sweep):
        assert [p.query_interval for p in sweep] == [10.0, 40.0]

    def test_t_mli_derived(self, sweep):
        assert sweep[0].t_mli == 2 * 10 + 10
        assert sweep[1].t_mli == 2 * 40 + 10

    def test_join_delay_decreases_with_query_interval(self, sweep):
        """The paper's central §4.4 claim."""
        assert sweep[0].mean_join_delay < sweep[1].mean_join_delay

    def test_leave_delay_decreases_with_query_interval(self, sweep):
        assert sweep[0].mean_leave_delay < sweep[1].mean_leave_delay

    def test_wasted_bytes_shrink(self, sweep):
        assert sweep[0].mean_wasted_bytes < sweep[1].mean_wasted_bytes

    def test_signaling_cost_grows_but_stays_small(self, sweep):
        """'The bandwidth cost for this tuning step is small, compared
        with the bandwidth saving due to a lower leave delay.'"""
        fast, slow = sweep
        assert fast.mean_mld_bytes_per_s > slow.mean_mld_bytes_per_s
        extra_cost = fast.mean_mld_bytes_per_s - slow.mean_mld_bytes_per_s
        saving = slow.mean_wasted_bytes - fast.mean_wasted_bytes
        # saving per move dwarfs one minute of extra query traffic
        assert saving > 60 * extra_cost

    def test_leave_delay_within_analytic_bounds(self, sweep):
        for point in sweep:
            for measured in point.leave_delays:
                assert measured is not None
                assert measured <= point.t_mli + 1.0

    def test_join_delay_within_cycle_bound(self, sweep):
        for point in sweep:
            for measured in point.join_delays:
                assert measured is not None
                # bounded by one query cycle + max response delay + slack
                assert measured <= point.query_interval + 10.0 + 5.0

    def test_render(self, sweep):
        text = render_sweep(sweep)
        assert "T_Query" in text and "10" in text and "40" in text
