"""Scenario variants: non-default link parameters and configurations.

The paper gives no link parameters; these tests check that the
reproduction's *conclusions* (orderings, bounds) are insensitive to the
substrate parameters, while absolute latencies scale as expected.
"""

import pytest

from repro.core import (
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    PaperScenario,
    ScenarioConfig,
)
from repro.mld import MldConfig
from repro.pimdm import PimDmConfig


class TestLinkParameterSensitivity:
    def test_tree_shape_independent_of_bandwidth(self):
        slow = PaperScenario(ScenarioConfig(seed=71, link_bandwidth_bps=10e6))
        fast = PaperScenario(ScenarioConfig(seed=71, link_bandwidth_bps=1e9))
        slow.converge()
        fast.converge()
        assert slow.current_tree() == fast.current_tree()

    def test_latency_scales_with_link_delay(self):
        short = PaperScenario(ScenarioConfig(seed=72, link_delay=0.5e-3))
        long = PaperScenario(ScenarioConfig(seed=72, link_delay=5e-3))
        short.converge()
        long.converge()
        lat_short = short.apps["R3"].mean_latency(since=25.0)
        lat_long = long.apps["R3"].mean_latency(since=25.0)
        # 4 links crossed; delay dominates: ~10x the propagation part
        assert lat_long > 5 * lat_short

    def test_stretch_conclusion_holds_on_slow_links(self):
        sc = PaperScenario(
            ScenarioConfig(seed=73, approach=BIDIRECTIONAL_TUNNEL,
                           link_bandwidth_bps=10e6, link_delay=5e-3)
        )
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(70.0)
        window = [
            d for d in sc.apps["R3"].deliveries_between(55.0, 70.0)
            if not d.duplicate
        ]
        mean = sum(d.latency for d in window) / len(window)
        stretch = sc.metrics.stretch(mean, "L1", "L6", 1000)
        assert stretch > 1.1  # tunnel still suboptimal


class TestConfigurationVariants:
    def test_larger_payloads(self):
        sc = PaperScenario(ScenarioConfig(seed=74, payload_bytes=8000,
                                          packet_interval=0.2))
        sc.converge()
        assert sc.apps["R3"].unique_count > 30
        # accounting reflects the payload size
        assert sc.net.stats.link_bytes("L4", "mcast_data") % (8000 + 40) == 0

    def test_robustness_three_mld(self):
        mld = MldConfig(robustness=3)
        sc = PaperScenario(ScenarioConfig(seed=75, mld=mld))
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(40.0 + mld.multicast_listener_interval + 40.0)
        leave = sc.leave_delay("L4", 40.0)
        # bound scales with robustness: T_MLI = 3*125 + 10 = 385
        assert leave is not None and leave <= 385.0 + 1.0

    def test_state_refresh_on_paper_topology(self):
        """State Refresh enabled network-wide: Figure 1 still converges
        and the pruned Link-6 branch never refloods."""
        pim = PimDmConfig(
            prune_hold_time=30.0, state_refresh_enabled=True,
            state_refresh_interval=10.0,
        )
        sc = PaperScenario(ScenarioConfig(seed=76, pim=pim))
        sc.converge()
        assert sc.current_tree()["D"] == ["L4"]
        sc.run_until(200.0)
        assert sc.net.tracer.count("pim.state", event="oif-prune-expired") == 0
        assert sc.net.stats.link_bytes("L6", "mcast_data") == 0
        # receivers still served throughout
        assert sc.apps["R3"].first_delivery_after(190.0) is not None

    def test_faster_handoff_pipeline_shrinks_join_delay(self):
        from repro.mipv6 import MobileIpv6Config

        quick = MobileIpv6Config(
            handoff_delay=0.01, movement_detection_delay=0.1,
            coa_config_delay=0.05,
        )
        sc = PaperScenario(ScenarioConfig(seed=77, mipv6=quick))
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(60.0)
        join = sc.join_delay("R3", 40.0)
        assert join is not None and join < 0.5

    def test_two_scenarios_same_seed_identical(self):
        a = PaperScenario(ScenarioConfig(seed=78))
        b = PaperScenario(ScenarioConfig(seed=78))
        a.converge()
        b.converge()
        assert a.current_tree() == b.current_tree()
        assert [d.time for d in a.apps["R3"].deliveries] == [
            d.time for d in b.apps["R3"].deliveries
        ]
        assert a.net.stats.snapshot() == b.net.stats.snapshot()

    def test_different_seeds_differ_in_randomized_paths(self):
        """Seeds shift MLD response delays (the only randomness during a
        converge with unsolicited joins may be small — compare a
        wait-for-query run instead)."""
        from dataclasses import replace

        mld = replace(MldConfig(), unsolicited_reports_on_move=False)
        delays = []
        for seed in (1, 2, 3, 4):
            sc = PaperScenario(ScenarioConfig(seed=seed, mld=mld))
            sc.converge()
            sc.move("R3", "L6", at=40.0)
            sc.run_until(40.0 + 125.0 + 15.0)
            delays.append(sc.join_delay("R3", 40.0))
        assert len(set(delays)) > 1
