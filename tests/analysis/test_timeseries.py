"""Unit tests for the bandwidth recorder and sparkline rendering."""

import pytest

from repro.analysis.timeseries import BandwidthRecorder, render_series, sparkline
from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.net import ApplicationData


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_peak_is_full_block(self):
        line = sparkline([0.0, 5.0, 10.0])
        assert line[-1] == "█"
        assert line[0] == " "

    def test_monotone_values_monotone_blocks(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line, key=" ▁▂▃▄▅▆▇█".index)


class TestBandwidthRecorder:
    def _run(self, period=1.0):
        sc = PaperScenario(ScenarioConfig(seed=61, approach=LOCAL_MEMBERSHIP))
        rec = BandwidthRecorder(sc.net, period=period)
        rec.start()
        sc.converge()
        return sc, rec

    def test_rate_matches_source_bitrate(self):
        sc, rec = self._run()
        series = rec.rate_series(link="L1", category="mcast_data")
        # after traffic start (t=20): 20 pkt/s * 1040 B = 20800 B/s
        steady = [r for t, r in series if t > 22.0]
        assert steady
        assert steady[-1] == pytest.approx(20800, rel=0.05)

    def test_quiet_before_traffic_start(self):
        sc, rec = self._run()
        early = [r for t, r in rec.rate_series(link="L1", category="mcast_data")
                 if t <= 19.0]
        assert all(r == 0.0 for r in early)

    def test_aggregate_over_links(self):
        sc, rec = self._run()
        total = rec.rate_series(category="mcast_data")
        single = rec.rate_series(link="L1", category="mcast_data")
        t_last = total[-1][0]
        total_rate = dict(total)[t_last]
        single_rate = dict(single)[t_last]
        assert total_rate > single_rate  # several links carry the tree

    def test_peak_and_busy_bins(self):
        sc, rec = self._run()
        assert rec.peak_rate(link="L1", category="mcast_data") == pytest.approx(
            20800, rel=0.05
        )
        busy = rec.busy_bins(link="L1", category="mcast_data", threshold=1000.0)
        # traffic starts exactly at t=20, inside the bin that ends at 20
        assert busy and all(t >= 20.0 for t in busy)

    def test_captures_graft_burst_on_new_link(self):
        """Link 6 goes from silent to full rate when R3 moves there."""
        sc, rec = self._run()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(60.0)
        series = rec.rate_series(link="L6", category="mcast_data")
        before = [r for t, r in series if t <= 40.0]
        after = [r for t, r in series if t >= 45.0]
        assert all(r == 0.0 for r in before)
        assert after and after[-1] > 15_000

    def test_stop(self):
        sc, rec = self._run()
        n = len(rec.times)
        rec.stop()
        sc.run_for(10.0)
        assert len(rec.times) == n

    def test_invalid_period(self):
        sc = PaperScenario(ScenarioConfig(seed=62))
        with pytest.raises(ValueError):
            BandwidthRecorder(sc.net, period=0.0)

    def test_render_series(self):
        sc, rec = self._run()
        text = render_series(
            rec.rate_series(link="L1", category="mcast_data"), label="L1 data"
        )
        assert "L1 data" in text and "peak" in text

    def test_render_empty(self):
        assert "(no samples)" in render_series([], label="x")
