"""Unit tests for analytic delay models, tables, and tree rendering."""

import pytest

from repro.analysis import (
    Column,
    expected_join_delay_unsolicited,
    expected_join_delay_wait_for_query,
    expected_leave_delay,
    fmt_bytes,
    fmt_float,
    fmt_seconds,
    leave_delay_bounds,
    render_figure,
    render_table,
    render_tree,
    tree_edges,
)
from repro.mipv6 import MobileIpv6Config
from repro.mld import MldConfig


class TestDelayModels:
    def test_wait_for_query_defaults(self):
        """Defaults: 125/2 + 10/2 = 67.5 s — 'far too high' (§4.3.1)."""
        assert expected_join_delay_wait_for_query(MldConfig()) == 67.5

    def test_wait_for_query_scales_linearly(self):
        a = expected_join_delay_wait_for_query(MldConfig().with_query_interval(20.0))
        b = expected_join_delay_wait_for_query(MldConfig().with_query_interval(40.0))
        assert b - a == pytest.approx(10.0)

    def test_unsolicited_is_handoff_pipeline(self):
        cfg = MobileIpv6Config(
            handoff_delay=0.1, movement_detection_delay=1.0, coa_config_delay=0.5
        )
        assert expected_join_delay_unsolicited(cfg) == pytest.approx(1.6)

    def test_leave_delay_default(self):
        # 260 - 62.5 - 5 = 192.5
        assert expected_leave_delay(MldConfig()) == 192.5

    def test_leave_bounds(self):
        lo, hi = leave_delay_bounds(MldConfig())
        assert hi == 260.0  # the paper's 'max. 260 seconds'
        assert lo == 260.0 - 125.0 - 10.0
        assert lo < expected_leave_delay(MldConfig()) < hi


class TestFormatters:
    def test_fmt_seconds_units(self):
        assert fmt_seconds(0.000005) == "5us"
        assert fmt_seconds(0.0123) == "12.3ms"
        assert fmt_seconds(2.5) == "2.50s"
        assert fmt_seconds(None) == "-"

    def test_fmt_bytes_units(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(250_000) == "250.0kB"
        assert fmt_bytes(25_000_000) == "25.0MB"
        assert fmt_bytes(None) == "-"

    def test_fmt_float(self):
        assert fmt_float(1)(3.14159) == "3.1"
        assert fmt_float(3)(None) == "-"


class TestRenderTable:
    def test_alignment_and_headers(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = render_table(rows, ["a", ("b", "col B")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col B" in lines[1]
        assert "22" in text

    def test_missing_values_dashed(self):
        text = render_table([{"a": None}], ["a"])
        assert "-" in text

    def test_custom_formatter(self):
        text = render_table([{"d": 0.5}], [("d", "delay", fmt_seconds)])
        assert "500.0ms" in text

    def test_column_objects(self):
        text = render_table([{"k": 7}], [Column("k", header="K")])
        assert "K" in text

    def test_empty_rows(self):
        text = render_table([], ["a", "b"])
        assert "a" in text


class TestTreeRendering:
    TREE = {"A": ["L2"], "B": [], "C": ["L3"], "D": ["L4"], "E": []}
    ROUTER_LINKS = {
        "A": ["L1", "L2"], "B": ["L2", "L3"], "C": ["L2", "L3"],
        "D": ["L3", "L4", "L5"], "E": ["L3", "L6"],
    }

    def test_tree_edges_flat(self):
        assert tree_edges(self.TREE) == [("A", "L2"), ("C", "L3"), ("D", "L4")]

    def test_render_tree_reaches_all_on_tree_links(self):
        text = render_tree(self.TREE, "L1", self.ROUTER_LINKS)
        for edge in ("L1 --A--> L2", "L2 --C--> L3", "L3 --D--> L4"):
            assert edge in text

    def test_render_tree_excludes_off_tree_links(self):
        text = render_tree(self.TREE, "L1", self.ROUTER_LINKS)
        assert "L5" not in text and "L6" not in text

    def test_render_figure_with_tunnels(self):
        text = render_figure(
            self.TREE, "L1", self.ROUTER_LINKS,
            tunnels=[("D", "R3@L1", "HA tunnel")],
        )
        assert "====>" in text and "HA tunnel" in text
