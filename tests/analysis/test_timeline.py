"""Unit tests for trace timelines and JSON export."""

import pytest

from repro.analysis import (
    export_trace_json,
    handoff_timeline,
    load_trace_json,
    render_timeline,
)
from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.sim import Simulator, TraceEvent, Tracer


@pytest.fixture(scope="module")
def moved():
    sc = PaperScenario(ScenarioConfig(seed=41, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(60.0)
    return sc


class TestHandoffTimeline:
    def test_story_in_causal_order(self, moved):
        events = handoff_timeline(moved.net, "R3", since=39.0)
        labels = [ev.detail.get("event", ev.category) for ev in events]
        for must in ("detached", "attached", "movement-detected",
                     "coa-configured", "bu-sent", "ba-received"):
            assert must in labels, labels
        assert labels.index("detached") < labels.index("attached")
        assert labels.index("attached") < labels.index("coa-configured")
        assert labels.index("bu-sent") < labels.index("ba-received")

    def test_includes_first_delivery(self, moved):
        events = handoff_timeline(moved.net, "R3", since=39.0)
        assert any(ev.category == "mcast.deliver" for ev in events)

    def test_times_sorted(self, moved):
        events = handoff_timeline(moved.net, "R3", since=39.0)
        times = [ev.time for ev in events]
        assert times == sorted(times)

    def test_render(self, moved):
        events = handoff_timeline(moved.net, "R3", since=39.0)
        text = render_timeline(events, origin=40.0)
        assert "+" in text and "coa-configured" in text

    def test_render_empty(self):
        assert render_timeline([]) == "(no events)"


class TestJsonExport:
    def test_roundtrip(self, moved, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = export_trace_json(moved.net.tracer, str(path))
        assert count == len(moved.net.tracer.events)
        loaded = load_trace_json(str(path))
        assert len(loaded) == count
        assert loaded[0].time == moved.net.tracer.events[0].time
        assert loaded[0].category == moved.net.tracer.events[0].category

    def test_detail_values_serializable(self, tmp_path):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("x", "n", links=["L1", "L2"], count=3, none=None)
        path = tmp_path / "t.jsonl"
        export_trace_json(tracer, str(path))
        (ev,) = load_trace_json(str(path))
        assert ev.detail["links"] == ["L1", "L2"]
        assert ev.detail["count"] == 3
