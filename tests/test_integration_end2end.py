"""End-to-end integration scenarios across all subsystems.

These run the full Figure 1 network through combined situations the
unit tests don't reach: simultaneous sender+receiver mobility, multiple
groups, the paper's duplicate-unicast criticism (two tunnel receivers
on one foreign link), mid-stream return home, and querier takeover with
membership continuity.
"""

import pytest

from repro.core import (
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    TUNNEL_MH_TO_HA,
    PaperScenario,
    ScenarioConfig,
)
from repro.mipv6 import DeliveryMode
from repro.net import make_multicast_group
from repro.workloads import CbrSource, ReceiverApp


class TestSenderAndReceiverBothMobile:
    """The paper's 'general case ... derived by combining these
    scenarios' (§4.2): S and R3 both roam at once."""

    @pytest.fixture(scope="class", params=["local", "bidir", "ut-mh-ha"])
    def sc(self, request):
        approach = {
            "local": LOCAL_MEMBERSHIP,
            "bidir": BIDIRECTIONAL_TUNNEL,
            "ut-mh-ha": TUNNEL_MH_TO_HA,
        }[request.param]
        sc = PaperScenario(ScenarioConfig(seed=31, approach=approach))
        sc.converge()
        sc.move("S", "L5", at=40.0)
        sc.move("R3", "L6", at=41.0)
        sc.run_until(100.0)
        return sc

    def test_stream_resumes_for_moved_receiver(self, sc):
        delivery = sc.apps["R3"].first_delivery_after(50.0)
        assert delivery is not None
        assert delivery.time < 60.0

    def test_static_receivers_unaffected(self, sc):
        for name in ("R1", "R2"):
            assert sc.apps[name].first_delivery_after(50.0) is not None

    def test_no_runaway_event_count(self, sc):
        # sanity against protocol storms: < 200 events per sim second
        assert sc.net.sim.events_dispatched < 200 * sc.now


class TestTwoTunnelReceiversOneLink:
    """§4.3.2: 'If several mobile members of the same multicast group
    are located on the same foreign link, they will all receive group
    traffic via their tunnel' — per-member unicast copies."""

    @pytest.fixture(scope="class")
    def sc(self):
        sc = PaperScenario(ScenarioConfig(seed=32, approach=BIDIRECTIONAL_TUNNEL))
        extra = sc.paper.add_mobile_host(
            "R4", "L4", host_id=140,
            recv_mode=DeliveryMode.HA_TUNNEL, send_mode=DeliveryMode.HA_TUNNEL,
        )
        sc.extra_app = ReceiverApp(extra)
        sc.converge()
        extra.join_group(sc.group)
        sc.run_for(2.0)
        sc.move("R3", "L6", at=40.0)
        sc.net.sim.schedule_at(
            40.0, extra.move_to, sc.paper.link("L6")
        )
        sc.run_until(80.0)
        return sc

    def test_both_receive_via_their_own_tunnel(self, sc):
        assert sc.apps["R3"].first_delivery_after(50.0) is not None
        assert sc.extra_app.first_delivery_after(50.0) is not None

    def test_duplicate_unicast_copies_on_shared_link(self, sc):
        """Each datagram crosses Link 6 once per tunnel receiver — the
        redundancy that 'reduces the benefit of multicasting'."""
        d = sc.paper.router("D")
        # D encapsulated one copy per subscribed binding per datagram
        assert len(d.binding_cache.subscribers_of(sc.group)) == 2
        per_receiver = sc.net.tracer.count(
            "mipv6", node="D", event="tunnel-mcast-to-mn", since=45.0
        )
        datagrams = sc.net.tracer.count(
            "mipv6", node="D", event="tunnel-mcast-to-mn", since=45.0,
            home=str(sc.paper.host("R3").home_address),
        )
        assert per_receiver == pytest.approx(2 * datagrams, abs=4)

    def test_local_membership_would_share_one_copy(self):
        """Contrast: under local membership the same two receivers share
        a single multicast copy on Link 6."""
        sc = PaperScenario(ScenarioConfig(seed=33, approach=LOCAL_MEMBERSHIP))
        extra = sc.paper.add_mobile_host("R4", "L4", host_id=140)
        app = ReceiverApp(extra)
        sc.converge()
        extra.join_group(sc.group)
        sc.run_for(2.0)
        before = sc.metrics.snapshot()
        sc.move("R3", "L6", at=40.0)
        sc.net.sim.schedule_at(40.0, extra.move_to, sc.paper.link("L6"))
        sc.run_until(70.0)
        delta = sc.metrics.snapshot().delta(before)
        window = 70.0 - 45.0
        rate = 1.0 / sc.config.packet_interval
        copies = delta.bytes_on("L6", "mcast_data") / (
            (sc.config.payload_bytes + 40) * rate * window
        )
        # one multicast copy serves both members (±startup effects)
        assert copies < 1.5
        assert app.first_delivery_after(50.0) is not None


class TestMultipleGroups:
    def test_independent_trees_and_deliveries(self):
        sc = PaperScenario(ScenarioConfig(seed=34, approach=LOCAL_MEMBERSHIP))
        g2 = make_multicast_group(2)
        src2 = CbrSource(sc.paper.host("R1"), g2, packet_interval=0.1, flow="g2")
        sc.converge()
        # R3 subscribes to both groups
        sc.paper.host("R3").join_group(g2)
        src2.start()
        sc.run_for(10.0)
        r3 = sc.apps["R3"]
        flows = {d.flow for d in r3.deliveries}
        assert {"S-flow", "g2"} <= flows
        # two distinct (S,G) trees exist at Router D
        d = sc.paper.router("D")
        assert len(d.pim.entries) >= 2

    def test_leaving_one_group_keeps_the_other(self):
        sc = PaperScenario(ScenarioConfig(seed=35, approach=LOCAL_MEMBERSHIP))
        g2 = make_multicast_group(2)
        src2 = CbrSource(sc.paper.host("R1"), g2, packet_interval=0.1, flow="g2")
        sc.converge()
        r3 = sc.paper.host("R3")
        r3.join_group(g2)
        src2.start()
        sc.run_for(5.0)
        r3.leave_group(g2)  # Done -> fast leave for g2 only
        sc.run_for(10.0)
        late = sc.apps["R3"].deliveries_between(sc.now - 5.0, sc.now)
        flows = {d.flow for d in late}
        assert "S-flow" in flows
        assert "g2" not in flows


class TestReturnHomeMidStream:
    def test_receiver_returns_home(self):
        sc = PaperScenario(ScenarioConfig(seed=36, approach=BIDIRECTIONAL_TUNNEL))
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(70.0)
        assert sc.paper.router("D").groups_on_behalf() == [sc.group]
        sc.move("R3", "L4", at=70.0)
        sc.run_until(100.0)
        r3 = sc.paper.host("R3")
        assert r3.at_home
        # binding + on-behalf membership torn down
        d = sc.paper.router("D")
        assert d.binding_cache.get(r3.home_address) is None
        assert d.groups_on_behalf() == []
        # reception continues natively at home
        assert sc.apps["R3"].first_delivery_after(85.0) is not None

    def test_sender_returns_home(self):
        sc = PaperScenario(ScenarioConfig(seed=37, approach=BIDIRECTIONAL_TUNNEL))
        sc.converge()
        sc.move("S", "L6", at=40.0)
        sc.run_until(70.0)
        reverse_before = sc.paper.router("A").reverse_tunneled
        assert reverse_before > 0
        sc.move("S", "L1", at=70.0)
        sc.run_until(100.0)
        # tunneling stopped; native sending resumed; receivers fine
        a = sc.paper.router("A")
        assert a.reverse_tunneled - reverse_before < 5
        for name in ("R1", "R2", "R3"):
            assert sc.apps[name].first_delivery_after(85.0) is not None


class TestQuerierContinuity:
    def test_membership_survives_querier_takeover(self):
        """Link 2 has three routers (A, B, C); A (lowest address) is the
        querier.  When A dies, B takes over querier duty and R2's
        membership keeps being refreshed."""
        from repro.mld import MldConfig

        mld = MldConfig(query_interval=15.0, query_response_interval=5.0,
                        startup_query_interval=4.0)
        sc = PaperScenario(ScenarioConfig(seed=38, mld=mld))
        sc.converge()
        a, b = sc.paper.router("A"), sc.paper.router("B")
        l2_iface_b = b.iface_on(sc.paper.link("L2"))
        assert not b.mld_router.is_querier(l2_iface_b)  # A is querier
        # A dies
        for iface in list(a.interfaces):
            iface.detach()
        sc.net.build_routes()
        horizon = sc.now + mld.other_querier_present_interval + 40.0
        sc.run_until(horizon)
        assert b.mld_router.is_querier(l2_iface_b)
        # R2's membership on Link 2 never lapsed at B
        assert b.mld_router.has_members(l2_iface_b, sc.group)
