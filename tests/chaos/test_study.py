"""EXP-R3 chaos cells and sweeps: convergence + determinism contract."""

import json

import pytest

from repro.chaos import ARCHETYPES, chaos_cell, run_chaos_sweep

SMALL_HIER = {"model": "hier", "depth": 2, "fanout": 3}
SMALL_WAXMAN = {"model": "waxman", "n": 12, "seed": 5}


@pytest.mark.parametrize("archetype", ARCHETYPES)
def test_cell_converges_per_archetype(archetype):
    row = chaos_cell(
        topo=SMALL_HIER, archetype=archetype, intensity=0.6,
        receivers=6, seed=2,
    )
    assert row["converged"], row["divergence_rules"]
    assert row["divergences"] == 0
    assert row["convergence_time"] is not None
    assert row["plan_events"] >= 1
    assert row["delivery_ratio"] > 0.5
    assert row["heal_at"] <= 20.0 + 1e-9  # healed inside the window


def test_cell_fluid_engine_converges():
    row = chaos_cell(
        topo=SMALL_HIER, archetype="flaps", intensity=0.6,
        receivers=6, seed=2, traffic_model="fluid",
    )
    assert row["converged"], row["divergence_rules"]
    assert row["traffic_model"] == "fluid"
    assert row["delivery_ratio"] > 0.5
    assert "traffic" in row


def test_cell_backends_agree_on_verdict():
    compact = chaos_cell(
        topo=SMALL_WAXMAN, archetype="partition", intensity=0.6,
        receivers=6, seed=4, backend="compact",
    )
    plain = chaos_cell(
        topo=SMALL_WAXMAN, archetype="partition", intensity=0.6,
        receivers=6, seed=4, backend="dict",
    )
    assert compact["converged"] and plain["converged"]
    # same schedule, same topology -> same trees, same delivery
    assert compact["plan_events"] == plain["plan_events"]
    assert compact["live_links"] == plain["live_links"]
    assert compact["delivered_units"] == plain["delivered_units"]


def test_cell_rejects_unknown_archetype():
    with pytest.raises(ValueError, match="unknown nemesis archetype"):
        chaos_cell(topo=SMALL_HIER, archetype="locusts")


def _sweep(**kw):
    return run_chaos_sweep(
        topos=[SMALL_HIER],
        archetypes=("flaps", "ha-storm"),
        intensities=(0.5,),
        receivers=6,
        seed=7,
        **kw,
    )


def test_sweep_jobs_byte_identical():
    """jobs=1 vs jobs=2 must produce byte-identical reports — the
    campaign determinism contract extends to chaos cells."""
    serial = _sweep(jobs=1)
    sharded = _sweep(jobs=2)
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        sharded, sort_keys=True
    )
    assert serial["convergence_rate"] == 1.0


def test_sweep_cache_cold_warm_identical(tmp_path):
    cold = _sweep(jobs=1, cache_dir=tmp_path)
    warm = _sweep(jobs=1, cache_dir=tmp_path)
    assert json.dumps(cold, sort_keys=True) == json.dumps(
        warm, sort_keys=True
    )


def test_sweep_aggregates():
    report = _sweep(jobs=2)
    assert report["experiment"] == "EXP-R3"
    assert report["cells"] == 2
    assert set(report["by_archetype"]) == {"flaps", "ha-storm"}
    for stats in report["by_archetype"].values():
        assert stats["converged"] == stats["cells"]
        for point in stats["delivery_survival"]:
            assert 0.0 <= point["delivery_ratio"] <= 1.0
