"""Nemesis-schedule generation: determinism, healing, validation."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import ARCHETYPES, nemesis_plan
from repro.net.topogen import topo_graph

HIER = {"model": "hier", "depth": 2, "fanout": 3}
WAXMAN = {"model": "waxman", "n": 12, "seed": 5}
HOSTS = [f"m{i:05d}" for i in range(8)]


def _plan(spec, archetype, **kw):
    kw.setdefault("hosts", HOSTS)
    return nemesis_plan(topo_graph(spec), archetype, **kw)


class TestValidation:
    def test_unknown_archetype(self):
        with pytest.raises(ValueError, match="unknown nemesis archetype"):
            _plan(HIER, "locusts")

    @pytest.mark.parametrize("intensity", [0.0, -0.1, 1.5])
    def test_intensity_range(self, intensity):
        with pytest.raises(ValueError, match="intensity"):
            _plan(HIER, "flaps", intensity=intensity)

    def test_duration_positive(self):
        with pytest.raises(ValueError, match="duration"):
            _plan(HIER, "flaps", duration=0.0)

    def test_mobility_storm_needs_hosts(self):
        with pytest.raises(ValueError, match="host names"):
            _plan(HIER, "mobility-storm", hosts=())


@pytest.mark.parametrize("spec", [HIER, WAXMAN], ids=["hier", "waxman"])
@pytest.mark.parametrize("archetype", ARCHETYPES)
class TestEveryArchetype:
    def test_healed_by_construction(self, spec, archetype):
        plan = _plan(spec, archetype, intensity=0.8, seed=3)
        assert plan.unhealed() == {}
        assert len(plan) >= 1

    def test_heals_inside_window(self, spec, archetype):
        plan = _plan(
            spec, archetype, intensity=0.8, seed=3, start=10.0, duration=10.0
        )
        assert all(e.at >= 10.0 for e in plan)
        assert plan.last_heal_time() <= 20.0 + 1e-9

    def test_same_seed_byte_identical(self, spec, archetype):
        a = _plan(spec, archetype, seed=11, cell="c")
        b = _plan(spec, archetype, seed=11, cell="c")
        assert json.dumps(a.to_jsonable()) == json.dumps(b.to_jsonable())

    def test_cell_decorrelates(self, spec, archetype):
        a = _plan(spec, archetype, seed=11, cell="cell-a")
        b = _plan(spec, archetype, seed=11, cell="cell-b")
        assert a.to_jsonable() != b.to_jsonable()


class TestIntensityScaling:
    def test_more_intensity_more_targets(self):
        low = _plan(WAXMAN, "flaps", intensity=0.1, seed=0)
        high = _plan(WAXMAN, "flaps", intensity=1.0, seed=0)
        assert len(high.targets()) > len(low.targets())

    def test_partition_cuts_boundary_links(self):
        plan = _plan(WAXMAN, "partition", intensity=0.7, seed=2)
        downs = [e for e in plan if e.kind == "link-down"]
        ups = [e for e in plan if e.kind == "link-up"]
        assert downs and len(downs) == len(ups)
        # one shared cut instant: a partition, not independent flaps
        assert len({e.at for e in downs}) == 1

    def test_bursts_share_a_window(self):
        plan = _plan(WAXMAN, "bursts", intensity=0.8, seed=2)
        starts = [e for e in plan if e.kind == "loss-start"]
        assert starts and len({e.at for e in starts}) == 1
        assert all(e.params["model"] == "gilbert" for e in starts)


@settings(max_examples=25, deadline=None)
@given(
    archetype=st.sampled_from(ARCHETYPES),
    intensity=st.floats(min_value=0.05, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_deterministic_and_healed(archetype, intensity, seed):
    """Same inputs -> byte-identical schedule; every schedule heals."""
    graph = topo_graph(HIER)
    kw = dict(intensity=intensity, seed=seed, cell="prop", hosts=HOSTS)
    a = nemesis_plan(graph, archetype, **kw)
    b = nemesis_plan(graph, archetype, **kw)
    assert json.dumps(a.to_jsonable(), sort_keys=True) == json.dumps(
        b.to_jsonable(), sort_keys=True
    )
    assert a.unhealed() == {}
