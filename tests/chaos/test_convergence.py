"""Convergence oracle: clean baselines, seeded-divergence mutations.

The mutation tests are the oracle's own test harness: they run a
fault-free cell to a converged state, then corrupt one router's (S,G)
state the way a lost message would and assert the oracle names the
divergence.  An oracle that passes the clean baseline but misses the
mutations would be vacuous.
"""

import pytest

from repro.chaos.convergence import (
    STATE_MUTATION_EVENTS,
    ConvergenceOracle,
    evaluate_convergence,
)
from repro.chaos.study import (
    chaos_mipv6_config,
    chaos_mld_config,
    chaos_pim_config,
)
from repro.invariants import InvariantMonitor
from repro.net.topogen import build_network, topo_graph
from repro.traffic import make_traffic_model

HIER = {"model": "hier", "depth": 2, "fanout": 3}
WAXMAN = {"model": "waxman", "n": 12, "seed": 5}


def _converged_net(spec, backend="dict", receivers=6, until=30.0):
    """Fault-free run to steady state; returns (net, source addr, group)."""
    graph = topo_graph(spec)
    built = build_network(
        graph,
        seed=0,
        pim_config=chaos_pim_config(backend),
        mld_config=chaos_mld_config(),
        mipv6_config=chaos_mipv6_config(),
    )
    group = built.make_group(1)
    source = built.place_source("s000")
    population = built.place_receivers(receivers)
    net = built.net
    traffic = make_traffic_model("packet")
    traffic.attach(net)
    net.start()
    built.schedule_joins(
        population, group, start=1.0, spread=4.0, stream="topogen.joins.g0"
    )
    flow = traffic.add_cbr(source, group, packet_interval=0.2, flow="flow-g0")
    flow.start(at=5.0)
    net.run(until=until)
    return net, net.node("s000").primary_address(), group


def _sg_entries(net, source, group):
    for router in sorted(net.routers(), key=lambda r: r.name):
        entry = router.pim.get_entry(source, group)
        if entry is not None:
            yield router, entry


@pytest.mark.parametrize("spec", [HIER, WAXMAN], ids=["hier", "waxman"])
@pytest.mark.parametrize("backend", ["compact", "dict"])
def test_zero_fault_baseline_converges(spec, backend):
    net, _, group = _converged_net(spec, backend=backend)
    verdict = evaluate_convergence(net, "s000", group)
    assert verdict["converged"], verdict["divergences"]
    assert verdict["live_links"] == verdict["reference_links"]
    assert verdict["member_links"] >= 1


def test_mutation_stale_oif_is_caught():
    """Clear a converged prune: the live tree floods a link the
    reference says was pruned off."""
    net, source, group = _converged_net(WAXMAN)
    mutated = False
    for router, entry in _sg_entries(net, source, group):
        for iface in router.interfaces:
            state = entry.downstream.get(iface.uid)
            if state is None or not state.pruned:
                continue
            if not router.pim.has_pim_neighbors(iface):
                continue  # un-pruning a stub iface adds no oif
            state.pruned = False
            mutated = True
            break
        if mutated:
            break
    assert mutated, "fixture never produced a pruned oif to corrupt"
    verdict = evaluate_convergence(net, "s000", group)
    rules = {d["rule"] for d in verdict["divergences"]}
    assert not verdict["converged"]
    assert "stale-oif" in rules


def test_mutation_lost_graft_is_caught():
    """Prune a reference-tree oif with no hold timer: downstream
    starves (unreached-link) and the residue is named (prune-stuck)."""
    net, source, group = _converged_net(HIER)
    reference_verdict = evaluate_convergence(net, "s000", group)
    assert reference_verdict["converged"]
    mutated = False
    for router, entry in _sg_entries(net, source, group):
        for iface in router.pim.outgoing_ifaces(entry):
            if not router.pim.has_pim_neighbors(iface):
                continue
            state = entry.downstream_state(iface)
            state.pruned = True
            mutated = True
            break
        if mutated:
            break
    assert mutated
    verdict = evaluate_convergence(net, "s000", group)
    rules = {d["rule"] for d in verdict["divergences"]}
    assert not verdict["converged"]
    assert "unreached-link" in rules
    assert "prune-stuck" in rules


def test_mutation_stale_rpf_is_caught():
    net, source, group = _converged_net(HIER)
    for router, entry in _sg_entries(net, source, group):
        others = [
            i for i in router.interfaces
            if i.attached and i is not entry.upstream_iface
        ]
        if entry.upstream_iface is not None and others:
            entry.upstream_iface = others[0]
            break
    verdict = evaluate_convergence(net, "s000", group)
    assert not verdict["converged"]
    assert "stale-rpf" in {d["rule"] for d in verdict["divergences"]}


def test_mutation_stuck_graft_is_caught():
    """pruned_upstream with live downstream interest and no retry
    timer running — the exact state the neighbor-up graft fix heals."""
    net, source, group = _converged_net(HIER)
    for router, entry in _sg_entries(net, source, group):
        if router.pim.outgoing_ifaces(entry) and not entry.pruned_upstream:
            entry.pruned_upstream = True
            break
    verdict = evaluate_convergence(net, "s000", group)
    assert not verdict["converged"]
    assert "graft-stuck" in {d["rule"] for d in verdict["divergences"]}


def test_oracle_reports_convergence_time():
    """Armed on a fault-free run the oracle converges and stamps the
    last state mutation relative to heal_at."""
    graph = topo_graph(HIER)
    built = build_network(
        graph,
        seed=0,
        pim_config=chaos_pim_config("compact"),
        mld_config=chaos_mld_config(),
        mipv6_config=chaos_mipv6_config(),
    )
    group = built.make_group(1)
    source = built.place_source("s000")
    population = built.place_receivers(6)
    net = built.net
    oracle = ConvergenceOracle(flows=[("s000", group)], heal_at=0.0, settle=30.0)
    monitor = InvariantMonitor(net, oracles=[oracle], escalate=False).attach()
    traffic = make_traffic_model("packet")
    traffic.attach(net)
    net.start()
    built.schedule_joins(
        population, group, start=1.0, spread=4.0, stream="topogen.joins.g0"
    )
    flow = traffic.add_cbr(source, group, packet_interval=0.2, flow="flow-g0")
    flow.start(at=5.0)
    net.run(until=30.0)
    monitor.finalize()
    assert len(oracle.results) == 1
    verdict = oracle.results[0]
    assert verdict["converged"]
    assert verdict["convergence_time"] is not None
    assert 0.0 <= verdict["convergence_time"] <= 30.0
    assert monitor.violations == []


def test_mutation_event_set_excludes_sends():
    assert "entry-created" in STATE_MUTATION_EVENTS
    assert not any(name.endswith("-sent") for name in STATE_MUTATION_EVENTS)
