"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.sim import Simulator
from topo_helpers import LineTopology, build_line


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def net() -> Network:
    return Network(seed=7)


@pytest.fixture
def line2() -> LineTopology:
    return build_line(2)


@pytest.fixture
def line3() -> LineTopology:
    return build_line(3)
