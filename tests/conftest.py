"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.sim import Simulator
from topo_helpers import LineTopology, build_line


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate the committed golden-trace digests under "
        "tests/goldens/ instead of asserting against them",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def net() -> Network:
    return Network(seed=7)


@pytest.fixture
def line2() -> LineTopology:
    return build_line(2)


@pytest.fixture
def line3() -> LineTopology:
    return build_line(3)
