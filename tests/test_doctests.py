"""Run the doctest examples embedded in module/class docstrings.

The public API docstrings carry runnable examples; this keeps them
honest.
"""

import doctest

import pytest

import repro.mipv6.options
import repro.net.addressing
import repro.net.packet
import repro.sim.kernel
import repro.sim.rng
import repro.sim.timers

MODULES = [
    repro.sim.kernel,
    repro.sim.timers,
    repro.sim.rng,
    repro.net.addressing,
    repro.net.packet,
    repro.mipv6.options,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
