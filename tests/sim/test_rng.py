"""Unit tests for deterministic named random streams."""

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a, b = RngRegistry(42), RngRegistry(42)
        assert [a.stream("x").random() for _ in range(5)] == [
            b.stream("x").random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a, b = RngRegistry(1), RngRegistry(2)
        assert a.stream("x").random() != b.stream("x").random()

    def test_streams_independent_by_name(self):
        r = RngRegistry(0)
        assert r.stream("a").random() != r.stream("b").random()

    def test_stream_is_cached(self):
        r = RngRegistry(0)
        assert r.stream("a") is r.stream("a")

    def test_draw_order_between_streams_is_isolated(self):
        """Consuming stream 'a' must not perturb stream 'b' — protocol
        subsystems cannot affect each other's randomness."""
        r1 = RngRegistry(5)
        _ = [r1.stream("a").random() for _ in range(100)]
        b1 = r1.stream("b").random()

        r2 = RngRegistry(5)
        b2 = r2.stream("b").random()
        assert b1 == b2

    def test_uniform_bounds(self):
        r = RngRegistry(3)
        for _ in range(200):
            v = r.uniform("u", 2.0, 5.0)
            assert 2.0 <= v <= 5.0

    def test_expovariate_positive(self):
        r = RngRegistry(3)
        assert all(r.expovariate("e", 0.5) > 0 for _ in range(100))

    def test_choice_members(self):
        r = RngRegistry(3)
        seq = ["a", "b", "c"]
        assert all(r.choice("c", seq) in seq for _ in range(50))
