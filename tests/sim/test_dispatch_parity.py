"""``step()``- vs ``run()``-driven execution must be indistinguishable.

The two dispatch loops had drifted apart (each carried its own copy of
the hook/profiler/accounting block); they now share one ``_dispatch``
core.  These tests pin the unification: the same workload driven event
by event through ``step()`` produces the identical trace digest,
``events_dispatched`` count, clock, profiler totals, and dispatch-hook
stream as one ``run()`` call.
"""

from repro.obs import KernelProfiler, digest_events
from repro.sim import PeriodicTimer, Simulator, Timer, Tracer


def _build_workload():
    """A deterministic mix of the kernel features protocol code uses:
    chained callbacks, same-instant FIFO bursts, restarts/cancellations,
    and a periodic timer — all recorded through a Tracer."""
    sim = Simulator()
    tracer = Tracer(sim)

    def chain(n):
        tracer.record("chain", "w", n=n)
        if n < 25:
            sim.schedule(0.7, chain, n + 1, label="chain")

    sim.schedule(0.5, chain, 0, label="chain")

    for i in range(10):  # FIFO burst at one instant
        sim.schedule(3.0, tracer.record, "burst", "w", i=i, label=f"burst{i}")

    mli = Timer(sim, lambda: tracer.record("expire", "w"), name="t_mli")
    mli.start(6.0)

    def report():  # restart the membership timer on every "Report"
        mli.restart(6.0)
        tracer.record("report", "w")

    query = PeriodicTimer(sim, report, period=2.5, name="t_query")
    query.start()
    sim.schedule(14.0, query.stop, label="stop-query")

    doomed = [
        sim.schedule(9.0 + i * 0.1, tracer.record, "never", "w", label="doomed")
        for i in range(5)
    ]
    sim.schedule(8.0, lambda: [ev.cancel() for ev in doomed], label="cancel-batch")
    return sim, tracer


def _drain_by_step(sim):
    while sim.step():
        pass


class TestStepRunParity:
    def test_identical_trace_digest_and_counters(self):
        sim_run, tr_run = _build_workload()
        sim_run.run()
        sim_step, tr_step = _build_workload()
        _drain_by_step(sim_step)

        assert digest_events(tr_run.events) == digest_events(tr_step.events)
        assert sim_run.events_dispatched == sim_step.events_dispatched
        assert sim_run.now == sim_step.now
        assert sim_run.events_pending == sim_step.events_pending == 0

    def test_identical_profiler_accounting(self):
        totals = []
        for drive in (lambda s: s.run(), _drain_by_step):
            sim, _ = _build_workload()
            profiler = KernelProfiler().install(sim)
            drive(sim)
            totals.append(
                (profiler.total_events,
                 sorted((e.label, e.count) for e in profiler.entries()))
            )
        assert totals[0] == totals[1]

    def test_identical_dispatch_hook_stream(self):
        streams = []
        for drive in (lambda s: s.run(), _drain_by_step):
            sim, _ = _build_workload()
            seen = []
            sim.set_dispatch_hook(
                lambda ev: seen.append((ev.time, ev.label or "?"))
            )
            drive(sim)
            streams.append(seen)
        assert streams[0] == streams[1]

    def test_step_until_boundary_matches_run_until(self):
        """Driving with step() up to a horizon equals run(until=...)."""
        horizon = 10.0
        sim_run, tr_run = _build_workload()
        sim_run.run(until=horizon)

        sim_step, tr_step = _build_workload()
        while True:
            nxt = sim_step.peek_next_time()
            if nxt is None or nxt > horizon:
                break
            sim_step.step()

        assert digest_events(tr_run.events) == digest_events(tr_step.events)
        assert sim_run.events_dispatched == sim_step.events_dispatched
