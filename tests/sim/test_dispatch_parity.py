"""``step()``- vs ``run()``-driven execution must be indistinguishable.

The two dispatch loops had drifted apart (each carried its own copy of
the hook/profiler/accounting block); they now share one ``_dispatch``
core.  These tests pin the unification: the same workload driven event
by event through ``step()`` produces the identical trace digest,
``events_dispatched`` count, clock, profiler totals, and dispatch-hook
stream as one ``run()`` call.

The same contract extends to the sharded kernel
(:mod:`repro.sim.shard`): ``TestShardedParity`` pins that shards=1
leaves the single-kernel path byte-identical (seed goldens included),
that shards=2/4 executions are run-to-run deterministic, and — via
Hypothesis — that no random inter-shard schedule can ever make a shard
dispatch out of timestamp order.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import KernelProfiler, digest_events
from repro.sim import PeriodicTimer, Simulator, Timer, Tracer
from repro.sim.shard import ShardedSimulator


def _build_workload():
    """A deterministic mix of the kernel features protocol code uses:
    chained callbacks, same-instant FIFO bursts, restarts/cancellations,
    and a periodic timer — all recorded through a Tracer."""
    sim = Simulator()
    tracer = Tracer(sim)

    def chain(n):
        tracer.record("chain", "w", n=n)
        if n < 25:
            sim.schedule(0.7, chain, n + 1, label="chain")

    sim.schedule(0.5, chain, 0, label="chain")

    for i in range(10):  # FIFO burst at one instant
        sim.schedule(3.0, tracer.record, "burst", "w", i=i, label=f"burst{i}")

    mli = Timer(sim, lambda: tracer.record("expire", "w"), name="t_mli")
    mli.start(6.0)

    def report():  # restart the membership timer on every "Report"
        mli.restart(6.0)
        tracer.record("report", "w")

    query = PeriodicTimer(sim, report, period=2.5, name="t_query")
    query.start()
    sim.schedule(14.0, query.stop, label="stop-query")

    doomed = [
        sim.schedule(9.0 + i * 0.1, tracer.record, "never", "w", label="doomed")
        for i in range(5)
    ]
    sim.schedule(8.0, lambda: [ev.cancel() for ev in doomed], label="cancel-batch")
    return sim, tracer


def _drain_by_step(sim):
    while sim.step():
        pass


class TestStepRunParity:
    def test_identical_trace_digest_and_counters(self):
        sim_run, tr_run = _build_workload()
        sim_run.run()
        sim_step, tr_step = _build_workload()
        _drain_by_step(sim_step)

        assert digest_events(tr_run.events) == digest_events(tr_step.events)
        assert sim_run.events_dispatched == sim_step.events_dispatched
        assert sim_run.now == sim_step.now
        assert sim_run.events_pending == sim_step.events_pending == 0

    def test_identical_profiler_accounting(self):
        totals = []
        for drive in (lambda s: s.run(), _drain_by_step):
            sim, _ = _build_workload()
            profiler = KernelProfiler().install(sim)
            drive(sim)
            totals.append(
                (profiler.total_events,
                 sorted((e.label, e.count) for e in profiler.entries()))
            )
        assert totals[0] == totals[1]

    def test_identical_dispatch_hook_stream(self):
        streams = []
        for drive in (lambda s: s.run(), _drain_by_step):
            sim, _ = _build_workload()
            seen = []
            sim.set_dispatch_hook(
                lambda ev: seen.append((ev.time, ev.label or "?"))
            )
            drive(sim)
            streams.append(seen)
        assert streams[0] == streams[1]

    def test_step_until_boundary_matches_run_until(self):
        """Driving with step() up to a horizon equals run(until=...)."""
        horizon = 10.0
        sim_run, tr_run = _build_workload()
        sim_run.run(until=horizon)

        sim_step, tr_step = _build_workload()
        while True:
            nxt = sim_step.peek_next_time()
            if nxt is None or nxt > horizon:
                break
            sim_step.step()

        assert digest_events(tr_run.events) == digest_events(tr_step.events)
        assert sim_run.events_dispatched == sim_step.events_dispatched


# ----------------------------------------------------------------------
# sharded kernel (repro.sim.shard)
# ----------------------------------------------------------------------

GOLDEN_DIR = Path(__file__).parent.parent / "goldens"

#: small seeded topogen cell shared by the determinism assertions
_CELL = dict(
    model_params={"depth": 2, "fanout": 3},
    receivers=20,
    groups=1,
    mobility=0.1,
    warmup=4.0,
    duration=6.0,
    check_invariants=False,
)

#: memoized scale-cell results (runs are deterministic per parameters)
_cells = {}


def _cell(shards=1, executor="inproc"):
    from repro.core.scalestudy import scale_cell

    key = (shards, executor)
    if key not in _cells:
        if shards == 1:
            _cells[key] = scale_cell(**_CELL)
        else:
            _cells[key] = scale_cell(
                shards=shards, shard_executor=executor, **_CELL
            )
    return _cells[key]


class TestShardedParity:
    def test_shards_1_matches_seed_golden_digest(self):
        """An explicit ``shards=1`` config takes the untouched
        single-kernel path: the fig2 seed-0 golden digest must hold
        byte for byte."""
        from repro.core import PaperScenario, ScenarioConfig
        from repro.core.goldens import CANNED_RUNS

        recipe = CANNED_RUNS["fig2"]
        sc = PaperScenario(
            ScenarioConfig(seed=0, approach=recipe.approach, shards=1)
        )
        sc.converge()
        host, link = recipe.move
        sc.move(host, link, at=recipe.move_at)
        sc.run_until(recipe.run_until)

        golden = json.loads((GOLDEN_DIR / "fig2-seed0.json").read_text())
        events = sc.net.tracer.events
        assert len(events) == golden["events"]
        assert digest_events(events) == golden["digest"]

    def test_shards_1_scale_cell_identical_to_default(self):
        """``scale_cell(shards=1)`` is the plain single-kernel run —
        the whole result dict, digests included, must be equal."""
        from repro.core.scalestudy import scale_cell

        assert scale_cell(shards=1, **_CELL) == _cell()

    @pytest.mark.parametrize("shards", (2, 4))
    def test_sharded_runs_are_deterministic(self, shards):
        """Two fresh shards=N executions of the same seeded topogen
        cell produce equal results — merged digest included."""
        from repro.core.scalestudy import scale_cell

        first = _cell(shards)
        second = scale_cell(shards=shards, shard_executor="inproc", **_CELL)
        assert first == second
        assert first["shards"]["count"] == shards
        assert len(first["shards"]["digests"]) == shards

    def test_process_executor_matches_inproc(self):
        """The multiprocessing executor runs the same barrier rounds as
        the in-process reference: per-shard digests are byte-identical."""
        inproc, process = _cell(2), _cell(2, "process")
        assert process["shards"]["digests"] == inproc["shards"]["digests"]
        assert process["shards"]["digest"] == inproc["shards"]["digest"]
        a = {k: v for k, v in process.items() if k != "shards"}
        b = {k: v for k, v in inproc.items() if k != "shards"}
        assert a == b

    def test_shard_counts_are_validated(self):
        from repro.core import ScenarioConfig
        from repro.core.scalestudy import scale_cell

        with pytest.raises(ValueError):
            scale_cell(shards=0, **_CELL)
        with pytest.raises(ValueError):
            ScenarioConfig(shards=0)
        with pytest.raises(ValueError):
            ScenarioConfig(shards=2)  # Figure 1 harness is single-kernel


# --- Hypothesis: random inter-shard schedules stay timestamp-ordered ---

N_SHARDS = 3

#: a message chain hop: (destination shard, extra delay past lookahead)
_hop = st.tuples(
    st.integers(min_value=0, max_value=N_SHARDS - 1),
    st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
)
#: a seed event: (shard, time, chain of cross-shard hops it triggers)
_event = st.tuples(
    st.integers(min_value=0, max_value=N_SHARDS - 1),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.lists(_hop, max_size=2),
)


def _build_sharded_workload(spec, lookahead):
    """Schedule ``spec`` on a 3-shard kernel; every dispatch appends
    ``(time, tag)`` to its shard's log, and each hop sends onward at
    ``now + lookahead + extra`` (the tightest legal stamp)."""
    sharded = ShardedSimulator(shards=N_SHARDS, lookahead=lookahead)
    logs = [[] for _ in range(N_SHARDS)]

    def make_cb(shard, tag, hops):
        def cb():
            now = sharded.sims[shard].now
            logs[shard].append((now, tag))
            if hops:
                (dst, extra), rest = hops[0], hops[1:]
                sharded.send(
                    shard, dst, now + lookahead + extra,
                    make_cb(dst, tag + ">", rest), label=tag,
                )
        return cb

    for i, (shard, time, hops) in enumerate(spec):
        sharded.schedule_at(time, make_cb(shard, f"e{i}", hops), shard=shard)
    return sharded, logs


class TestShardedOrdering:
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        spec=st.lists(_event, min_size=1, max_size=12),
        lookahead=st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
    )
    def test_random_schedules_never_dispatch_out_of_order(
        self, spec, lookahead
    ):
        """No barrier-round window may admit a message behind a shard's
        clock: every per-shard dispatch stream is time-monotone, and a
        fully stepped execution equals a run() one stream for stream."""
        run_sim, run_logs = _build_sharded_workload(spec, lookahead)
        run_sim.run()
        for log in run_logs:
            times = [t for t, _tag in log]
            assert times == sorted(times)

        step_sim, step_logs = _build_sharded_workload(spec, lookahead)
        while step_sim.step():
            pass
        assert step_logs == run_logs
        assert step_sim.events_dispatched == run_sim.events_dispatched
        assert run_sim.events_pending == step_sim.events_pending == 0
