"""Unit tests for the structured tracer."""

import pytest

from repro.sim import Simulator, Tracer


def make(sim=None, **kw):
    sim = sim or Simulator()
    return sim, Tracer(sim, **kw)


class TestRecording:
    def test_records_time_and_fields(self):
        sim, tr = make()
        sim.schedule(2.5, tr.record, "mld", "R3", event="join")
        sim.run()
        (ev,) = tr.events
        assert ev.time == 2.5
        assert ev.category == "mld"
        assert ev.node == "R3"
        assert ev.detail == {"event": "join"}

    def test_disabled_category_dropped(self):
        _, tr = make(disabled_categories=["link"])
        tr.record("link", "L1", x=1)
        tr.record("mld", "R1", x=1)
        assert len(tr.events) == 1

    def test_enabled_whitelist(self):
        _, tr = make(enabled_categories=["pim"])
        tr.record("pim", "A")
        tr.record("mld", "A")
        assert [e.category for e in tr.events] == ["pim"]

    def test_disable_at_runtime(self):
        _, tr = make()
        tr.record("x", "n")
        tr.disable("x")
        tr.record("x", "n")
        assert len(tr.events) == 1

    def test_listener_called_live(self):
        _, tr = make()
        seen = []
        tr.add_listener(seen.append)
        tr.record("pim", "A", event="prune-sent")
        assert len(seen) == 1 and seen[0].detail["event"] == "prune-sent"

    def test_enable_reverses_disable(self):
        _, tr = make(disabled_categories=["link"])
        tr.record("link", "L1")
        tr.enable("link")
        tr.record("link", "L1")
        assert len(tr.events) == 1

    def test_enable_extends_whitelist(self):
        _, tr = make(enabled_categories=["pim"])
        tr.record("mld", "A")
        tr.enable("mld")
        tr.record("mld", "A")
        assert [e.category for e in tr.events] == ["mld"]

    def test_is_enabled(self):
        _, tr = make(disabled_categories=["link"])
        assert not tr.is_enabled("link")
        assert tr.is_enabled("pim")
        tr.enable("link")
        assert tr.is_enabled("link")

    def test_overlapping_enable_disable_rejected(self):
        with pytest.raises(ValueError, match="both enabled and disabled"):
            make(enabled_categories=["pim", "mld"], disabled_categories=["pim"])


class TestRingCapacity:
    def test_capacity_bounds_retained_events(self):
        _, tr = make(capacity=3)
        for i in range(8):
            tr.record("x", "n", i=i)
        assert [e.detail["i"] for e in tr.events] == [5, 6, 7]
        assert tr.capacity == 3
        assert tr.count("x") == 3

    def test_set_capacity_keeps_newest(self):
        _, tr = make()
        for i in range(10):
            tr.record("x", "n", i=i)
        tr.set_capacity(4)
        assert [e.detail["i"] for e in tr.events] == [6, 7, 8, 9]
        tr.set_capacity(None)  # back to unbounded, events retained
        for i in range(10, 13):
            tr.record("x", "n", i=i)
        assert len(tr.events) == 7


class TestQueries:
    def _populate(self):
        sim, tr = make()
        rows = [
            (1.0, "mld", "D", {"event": "join", "group": "g1"}),
            (2.0, "mld", "D", {"event": "leave", "group": "g1"}),
            (3.0, "pim", "E", {"event": "graft-sent"}),
            (4.0, "mld", "E", {"event": "join", "group": "g2"}),
        ]
        for t, cat, node, detail in rows:
            sim.schedule_at(t, tr.record, cat, node, **detail)
        sim.run()
        return tr

    def test_query_by_category(self):
        tr = self._populate()
        assert tr.count("mld") == 3

    def test_query_by_node(self):
        tr = self._populate()
        assert tr.count("mld", node="D") == 2

    def test_query_by_detail(self):
        tr = self._populate()
        assert tr.count("mld", event="join") == 2

    def test_query_time_window(self):
        tr = self._populate()
        assert tr.count(since=2.0, until=3.0) == 2

    def test_first(self):
        tr = self._populate()
        ev = tr.first("mld", event="join")
        assert ev.time == 1.0

    def test_first_none_when_absent(self):
        tr = self._populate()
        assert tr.first("mipv6") is None

    def test_last(self):
        tr = self._populate()
        assert tr.last("mld").time == 4.0

    def test_clear(self):
        tr = self._populate()
        tr.clear()
        assert tr.count() == 0

    def test_matches_helper(self):
        tr = self._populate()
        ev = tr.first("pim")
        assert ev.matches(event="graft-sent")
        assert not ev.matches(event="prune-sent")
