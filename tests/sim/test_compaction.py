"""Cancelled-entry heap-compaction suite.

Restart-heavy protocol patterns (PIM-DM's per-packet 210 s data
timeout, MLD's per-Report T_MLI) cancel one kernel event per restart.
The kernel amortizes those tombstones away by compacting the heap once
they dominate (see ``Simulator.set_compaction``).  These tests pin the
contract: bounded heap under restart pressure, and *zero* behavioural
impact — compaction preserves FIFO tie-breaking, ``peek_next_time``,
and the pending counters, even when forced on every cancellation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Timer


def _heap_scan(sim):
    """(pending, cancelled) recomputed from the raw heap."""
    pending = sum(1 for _, _, ev in sim._heap if ev.pending)
    cancelled = sum(1 for _, _, ev in sim._heap if ev.cancelled)
    return pending, cancelled


class TestCompactionTrigger:
    def test_no_compaction_below_min_entries(self, sim):
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(100)]
        for ev in events[:80]:
            ev.cancel()
        # 80 tombstones dominate, but stay below the 1024-entry floor.
        assert sim.compactions == 0
        assert sim.heap_size == 100
        assert sim.heap_cancelled == 80

    def test_no_compaction_below_ratio(self, sim):
        sim.set_compaction(4, 0.5)
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(100)]
        for ev in events[:20]:
            ev.cancel()
        # 20 tombstones pass the floor but are only 20% of the heap.
        assert sim.compactions == 0
        assert sim.heap_size == 100

    def test_compaction_fires_when_tombstones_dominate(self, sim):
        sim.set_compaction(4, 0.5)
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(100)]
        for ev in events[:60]:
            ev.cancel()
        # The 51st cancellation tips past 50% of the 100-entry heap.
        assert sim.compactions == 1
        assert sim.events_pending == 40
        assert sim.heap_size == sim.events_pending + sim.heap_cancelled
        assert sim.heap_size < 60

    def test_forced_compaction_keeps_heap_exact(self, sim):
        sim.set_compaction(0, 0.0)
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(50)]
        for ev in events[::2]:
            ev.cancel()
            assert sim.heap_size == sim.events_pending
            assert sim.heap_cancelled == 0

    def test_restart_heavy_timer_keeps_heap_bounded(self, sim):
        sim.set_compaction(64, 0.5)
        timer = Timer(sim, lambda: None, name="t_mli")
        for _ in range(5_000):
            timer.restart(260.0)
            assert sim.heap_size <= 2 * max(sim.events_pending, 64) + 2
        assert sim.compactions > 10

    def test_set_compaction_validation(self, sim):
        with pytest.raises(ValueError):
            sim.set_compaction(-1, 0.5)
        with pytest.raises(ValueError):
            sim.set_compaction(0, 1.0)
        with pytest.raises(ValueError):
            sim.set_compaction(0, -0.1)


class TestCompactionTransparency:
    def test_preserves_fifo_tie_breaking(self, sim):
        sim.set_compaction(0, 0.0)  # compact on every cancellation
        fired = []
        events = [
            sim.schedule(5.0, fired.append, i, label=f"e{i}") for i in range(30)
        ]
        for i in (3, 7, 11, 19, 23):
            events[i].cancel()
        sim.run()
        survivors = [i for i in range(30) if i not in (3, 7, 11, 19, 23)]
        assert fired == survivors

    def test_preserves_peek_next_time(self, sim):
        sim.set_compaction(0, 0.0)
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        third = sim.schedule(3.0, lambda: None)
        assert sim.peek_next_time() == 1.0
        first.cancel()  # forces a compaction
        assert sim.peek_next_time() == 2.0
        third.cancel()
        assert sim.peek_next_time() == 2.0

    def test_preserves_pending_counts_and_dispatch(self, sim):
        sim.set_compaction(0, 0.0)
        fired = []
        events = [sim.schedule(float(i + 1), fired.append, i) for i in range(20)]
        for ev in events[10:]:
            ev.cancel()
        assert sim.events_pending == 10
        sim.run()
        assert fired == list(range(10))
        assert sim.events_dispatched == 10
        assert sim.events_pending == 0
        assert sim.heap_size == 0

    def test_cancel_inside_callback_compacts_safely(self, sim):
        """Compaction triggered mid-dispatch must not disturb the loop."""
        sim.set_compaction(0, 0.0)
        fired = []
        later = [sim.schedule(10.0 + i, fired.append, f"late{i}") for i in range(5)]

        def killer():
            fired.append("killer")
            for ev in later[1:]:
                ev.cancel()  # each cancel rebuilds the heap mid-run

        sim.schedule(1.0, killer)
        sim.run()
        assert fired == ["killer", "late0"]
        assert sim.heap_size == 0


class TestCompactionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("schedule"), st.floats(0.0, 10.0)),
                st.tuples(st.just("cancel"), st.integers(0, 10_000)),
                st.tuples(st.just("step"), st.just(0)),
            ),
            max_size=200,
        )
    )
    def test_heap_within_constant_factor_of_pending(self, ops):
        """Arbitrary schedule/cancel/step interleavings: the physical
        heap stays within a constant factor of the live event count."""
        sim = Simulator()
        sim.set_compaction(8, 0.5)
        live = []
        for op, value in ops:
            if op == "schedule":
                live.append(sim.schedule(value, lambda: None))
            elif op == "cancel" and live:
                live.pop(value % len(live)).cancel()
            elif op == "step":
                sim.step()
            pending, cancelled = _heap_scan(sim)
            assert pending == sim.events_pending
            assert cancelled == sim.heap_cancelled
            # cancelled <= max(8, heap/2)  =>  heap <= 2*pending + 18
            assert sim.heap_size <= 2 * sim.events_pending + 18

    @settings(max_examples=25, deadline=None)
    @given(
        restarts=st.integers(1, 400),
        n_timers=st.integers(1, 8),
        duration=st.floats(1.0, 260.0),
    )
    def test_restart_workload_bounded(self, restarts, n_timers, duration):
        """The PIM/MLD restart pattern specifically (ISSUE criterion)."""
        sim = Simulator()
        sim.set_compaction(16, 0.5)
        timers = [Timer(sim, lambda: None, name=f"t{i}") for i in range(n_timers)]
        for i in range(restarts):
            timers[i % n_timers].restart(duration)
            assert sim.heap_size <= 2 * max(sim.events_pending, 16) + 2
        sim.run()
        assert sim.heap_size == 0
        assert sim.events_pending == 0
