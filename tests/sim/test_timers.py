"""Unit tests for restartable and periodic timers."""

import pytest

from repro.sim import PeriodicTimer, Simulator, Timer


class TestTimer:
    def test_fires_after_duration(self, sim):
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(10.0)
        sim.run()
        assert fired == [10.0]

    def test_restart_extends_deadline(self, sim):
        """The MLD membership-timer pattern: each Report restarts T_MLI."""
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(10.0)
        sim.run(until=6.0)
        t.restart()
        sim.run()
        assert fired == [16.0]

    def test_restart_with_new_duration(self, sim):
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(10.0)
        sim.run(until=1.0)
        t.restart(2.0)
        sim.run()
        assert fired == [3.0]

    def test_restart_never_started_raises(self, sim):
        t = Timer(sim, lambda: None)
        with pytest.raises(ValueError):
            t.restart()

    def test_stop_prevents_firing(self, sim):
        fired = []
        t = Timer(sim, lambda: fired.append(1))
        t.start(5.0)
        sim.run(until=2.0)
        t.stop()
        sim.run()
        assert fired == []

    def test_stop_idle_is_noop(self, sim):
        Timer(sim, lambda: None).stop()

    def test_running_property(self, sim):
        t = Timer(sim, lambda: None)
        assert not t.running
        t.start(5.0)
        assert t.running
        sim.run()
        assert not t.running

    def test_remaining(self, sim):
        t = Timer(sim, lambda: None)
        t.start(10.0)
        sim.run(until=4.0)
        assert t.remaining == pytest.approx(6.0)

    def test_remaining_none_when_idle(self, sim):
        assert Timer(sim, lambda: None).remaining is None

    def test_expires_at(self, sim):
        t = Timer(sim, lambda: None)
        sim.run(until=3.0)
        t.start(7.0)
        assert t.expires_at == pytest.approx(10.0)

    def test_start_while_running_restarts(self, sim):
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(10.0)
        sim.run(until=5.0)
        t.start(10.0)
        sim.run()
        assert fired == [15.0]

    def test_restart_inside_callback(self, sim):
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) < 3:
                t.restart(5.0)

        t = Timer(sim, cb)
        t.start(5.0)
        sim.run()
        assert fired == [5.0, 10.0, 15.0]


class TestPeriodicTimer:
    def test_ticks_at_period(self, sim):
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=5.0)
        p.start()
        sim.run(until=16.0)
        assert ticks == [5.0, 10.0, 15.0]

    def test_fire_immediately(self, sim):
        """The MLD querier pattern: first Query on assuming the role."""
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=5.0)
        p.start(fire_immediately=True)
        sim.run(until=11.0)
        assert ticks == [0.0, 5.0, 10.0]

    def test_stop(self, sim):
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=5.0)
        p.start()
        sim.run(until=7.0)
        p.stop()
        sim.run(until=30.0)
        assert ticks == [5.0]

    def test_set_period_reschedules(self, sim):
        """Section 4.4: a querier switching from startup to steady rate."""
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=10.0)
        p.start()
        sim.run(until=10.0)
        p.set_period(2.0)
        sim.run(until=15.0)
        assert ticks == [10.0, 12.0, 14.0]

    def test_set_period_shrink_preserves_elapsed_phase(self, sim):
        """Shrinking mid-cycle keeps the phase already elapsed: started
        at t=0 with period 10, shrinking to 6 at t=4 means the cycle is
        4 s in, so the next tick lands at t=6 — not a full 6 s later."""
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=10.0)
        p.start()
        sim.run(until=4.0)
        p.set_period(6.0)
        sim.run(until=19.0)
        assert ticks == [6.0, 12.0, 18.0]

    def test_set_period_shrink_below_elapsed_fires_now(self, sim):
        """If the elapsed phase already exceeds the new period, the tick
        is overdue: it fires at once (clamped to now), not after
        another full period."""
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=100.0)
        p.start()
        sim.run(until=80.0)
        p.set_period(50.0)
        sim.run(until=140.0)
        assert ticks == [80.0, 130.0]

    def test_set_period_grow_preserves_elapsed_phase(self, sim):
        """Growing mid-cycle credits the elapsed phase: 4 s into a 10 s
        cycle, switching to 25 s leaves 21 s to go — next tick at 25."""
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=10.0)
        p.start()
        sim.run(until=4.0)
        p.set_period(25.0)
        sim.run(until=51.0)
        assert ticks == [25.0, 50.0]

    def test_set_period_without_reschedule_keeps_next_tick(self, sim):
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=10.0)
        p.start()
        sim.run(until=4.0)
        p.set_period(3.0, reschedule=False)
        sim.run(until=14.0)
        assert ticks == [10.0, 13.0]

    def test_set_period_at_tick_instant_is_a_full_new_period(self, sim):
        """The MLD startup->steady transition calls set_period from the
        tick callback, where the elapsed phase is zero: the next tick is
        exactly one new period away (unchanged behaviour)."""
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=5.0)

        def cb():
            ticks.append(sim.now)
            if len(ticks) == 1:
                p.set_period(20.0)

        p.callback = cb
        p.start()
        sim.run(until=46.0)
        assert ticks == [5.0, 25.0, 45.0]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, lambda: None, period=0.0)
        p = PeriodicTimer(sim, lambda: None, period=1.0)
        with pytest.raises(ValueError):
            p.set_period(-1.0)

    def test_restart_resets_phase(self, sim):
        ticks = []
        p = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=10.0)
        p.start()
        sim.run(until=4.0)
        p.start()  # re-arm at t=4
        sim.run(until=25.0)
        assert ticks == [14.0, 24.0]

    def test_running_property(self, sim):
        p = PeriodicTimer(sim, lambda: None, period=1.0)
        assert not p.running
        p.start()
        assert p.running
        p.stop()
        assert not p.running
