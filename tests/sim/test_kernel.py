"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 1.0

    def test_events_run_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, 3)
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1, 2, 3]

    def test_same_time_events_fifo(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_zero_delay_runs_after_queued_same_instant(self, sim):
        fired = []
        sim.schedule(0.0, fired.append, "first")
        sim.schedule(0.0, fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute(self, sim):
        fired = []
        sim.schedule_at(5.0, fired.append, "x")
        sim.run()
        assert sim.now == 5.0 and fired == ["x"]

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_kwargs_passed(self, sim):
        got = {}
        sim.schedule(1.0, lambda **kw: got.update(kw), a=1, b=2)
        sim.run()
        assert got == {"a": 1, "b": 2}

    def test_call_now(self, sim):
        fired = []
        sim.call_now(fired.append, 1)
        sim.run()
        assert fired == [1] and sim.now == 0.0

    def test_events_scheduled_during_dispatch(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestCancellation:
    def test_cancel_prevents_dispatch(self, sim):
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_pending_flag(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        assert ev.pending
        sim.run()
        assert not ev.pending

    def test_cancelled_not_pending(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        assert not ev.pending

    def test_cancel_one_of_many(self, sim):
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert keep.dispatched


class TestRunControl:
    def test_run_until_stops_clock(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_resumes(self, sim):
        fired = []
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert fired == [10]
        assert sim.now == 20.0

    def test_run_until_inclusive_boundary(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_step_returns_false_on_empty(self, sim):
        assert sim.step() is False

    def test_step_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]

    def test_max_events_guard(self, sim):
        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_not_reentrant(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_dispatched_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_dispatched == 5

    def test_events_pending_counter(self, sim):
        a = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.events_pending == 2
        a.cancel()
        assert sim.events_pending == 1

    def test_events_pending_tracks_dispatch(self, sim):
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.step()
        assert sim.events_pending == 3
        sim.run()
        assert sim.events_pending == 0

    def test_double_cancel_counts_once(self, sim):
        a = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        a.cancel()
        a.cancel()
        assert sim.events_pending == 1
        sim.run()
        assert sim.events_pending == 0

    def test_cancel_after_dispatch_is_noop_for_counter(self, sim):
        a = sim.schedule(1.0, lambda: None)
        sim.run()
        a.cancel()
        assert sim.events_pending == 0

    def test_pending_counter_matches_heap_scan(self, sim):
        import random

        rng = random.Random(7)
        events = []
        for _ in range(200):
            if events and rng.random() < 0.3:
                events.pop(rng.randrange(len(events))).cancel()
            else:
                events.append(sim.schedule(rng.uniform(0.0, 10.0), lambda: None))
            assert sim.events_pending == sum(
                1 for _, _, event in sim._heap if event.pending
            )

    def test_peek_next_time(self, sim):
        assert sim.peek_next_time() is None
        ev = sim.schedule(3.0, lambda: None)
        sim.schedule(7.0, lambda: None)
        assert sim.peek_next_time() == 3.0
        ev.cancel()
        assert sim.peek_next_time() == 7.0

    def test_clock_advances_to_until_with_empty_queue(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0
