"""PIM-DM Graft retransmission under injected loss (repro.faults).

A Graft is the one acknowledged PIM-DM message: losing it must not
strand a rejoining receiver.  We take the router-to-router link down
across the first Graft, and verify the Graft retry timer
(``graft_retry_interval``) re-sends it and the branch comes back.
"""

from repro.faults import FaultInjector, FaultPlan, link_down
from repro.mld import MldHost
from repro.net import Address, ApplicationData
from repro.pimdm import PimDmConfig

from topo_helpers import build_line

GROUP = Address("ff1e::1")
RETRY = 3.0


def grafting_line(seed=7):
    """S on L0 — R0 — L1 — R1 — L2 — H; R1 prunes, then H joins late."""
    cfg = PimDmConfig(graft_retry_interval=RETRY)
    topo = build_line(2, seed=seed, pim_config=cfg)
    sender = topo.host_on(0, 100, "S")
    listener = topo.host_on(2, 101, "H")
    mld = MldHost(listener, None)
    # steady CBR so prune state forms and recovery is observable
    for k in range(80):
        topo.net.sim.schedule_at(
            1.0 + 0.5 * k, sender.send_multicast, GROUP, ApplicationData(seqno=k)
        )
    return topo, sender, listener, mld


class TestGraftRetry:
    def test_lost_graft_is_retransmitted_and_acked(self):
        topo, sender, listener, mld = grafting_line()
        got = []
        listener.on_app_data(lambda p, m: got.append((topo.net.now, m.seqno)))

        # L1 is down when the join-triggered Graft fires at ~25.5
        FaultInjector(
            topo.net, FaultPlan(link_down(25.0, "L1", duration=2.0))
        ).arm()
        topo.net.sim.schedule_at(25.5, mld.join, GROUP)
        topo.net.run(until=35.0)

        tracer = topo.net.tracer
        # first Graft lost, retry after graft_retry_interval wins
        assert tracer.count("pim", event="graft-sent", node="R1") >= 2
        assert tracer.count("pim", event="graft-acked", node="R1") >= 1
        assert topo.net.stats.link_drops("L1", "link-down") >= 1
        delivered_after = [t for t, _ in got if t >= 25.5]
        assert delivered_after, "branch never recovered after lost Graft"
        # recovery bounded by one retry cycle (plus propagation slack)
        assert min(delivered_after) - 25.5 <= RETRY + 1.5

    def test_no_retry_needed_without_loss(self):
        topo, sender, listener, mld = grafting_line()
        topo.net.sim.schedule_at(25.5, mld.join, GROUP)
        topo.net.run(until=35.0)
        assert topo.net.tracer.count("pim", event="graft-sent", node="R1") == 1
        assert topo.net.tracer.count("pim", event="graft-acked", node="R1") == 1
