"""Capped-exponential backoff on Graft retransmission.

Under a long outage the draft's fixed 3 s retry turns every pruned
branch into a metronome of useless Grafts; the backoff doubles the gap
per unacked retry up to ``graft_retry_max_interval`` and resets on the
first Graft-Ack.  ``graft_backoff_factor=1.0`` restores draft timing,
and a loss-free join sends exactly one Graft either way — golden
traces never see the backoff.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, link_down
from repro.mld import MldHost
from repro.net import Address, ApplicationData
from repro.pimdm import PimDmConfig

from topo_helpers import build_line

GROUP = Address("ff1e::1")


def grafting_line(config, seed=7):
    topo = build_line(2, seed=seed, pim_config=config)
    sender = topo.host_on(0, 100, "S")
    listener = topo.host_on(2, 101, "H")
    mld = MldHost(listener, None)
    for k in range(120):
        topo.net.sim.schedule_at(
            1.0 + 0.5 * k, sender.send_multicast, GROUP, ApplicationData(seqno=k)
        )
    return topo, mld


def graft_times(topo):
    times = []
    topo.net.tracer.add_listener(
        lambda ev: times.append(ev.time)
        if ev.detail.get("event") == "graft-sent" and ev.node == "R1"
        else None,
        categories=("pim",),
    )
    return times


def test_backoff_doubles_and_caps():
    cfg = PimDmConfig(
        graft_retry_interval=1.0,
        graft_backoff_factor=2.0,
        graft_retry_max_interval=4.0,
    )
    topo, mld = grafting_line(cfg)
    times = graft_times(topo)
    # outage spans many retries: join at 25.5, link back at 40
    FaultInjector(
        topo.net, FaultPlan(link_down(25.0, "L1", duration=15.0))
    ).arm()
    topo.net.sim.schedule_at(25.5, mld.join, GROUP)
    topo.net.run(until=45.0)

    gaps = [round(b - a, 6) for a, b in zip(times, times[1:])]
    # 1, 2, 4, then capped at 4 for every further unacked retry
    assert gaps[:3] == [1.0, 2.0, 4.0]
    assert all(g == 4.0 for g in gaps[3:-1])
    assert topo.net.tracer.count("pim", event="graft-acked", node="R1") >= 1


def test_factor_one_restores_draft_timing():
    cfg = PimDmConfig(
        graft_retry_interval=1.0,
        graft_backoff_factor=1.0,
        graft_retry_max_interval=30.0,
    )
    topo, mld = grafting_line(cfg)
    times = graft_times(topo)
    FaultInjector(
        topo.net, FaultPlan(link_down(25.0, "L1", duration=6.0))
    ).arm()
    topo.net.sim.schedule_at(25.5, mld.join, GROUP)
    topo.net.run(until=40.0)
    gaps = [round(b - a, 6) for a, b in zip(times, times[1:])]
    assert len(gaps) >= 3
    assert all(g == 1.0 for g in gaps[:-1])


def test_ack_resets_backoff():
    cfg = PimDmConfig(
        graft_retry_interval=1.0,
        graft_backoff_factor=2.0,
        graft_retry_max_interval=8.0,
    )
    topo, mld = grafting_line(cfg)
    FaultInjector(
        topo.net, FaultPlan(link_down(25.0, "L1", duration=5.0))
    ).arm()
    topo.net.sim.schedule_at(25.5, mld.join, GROUP)
    topo.net.run(until=45.0)
    entry = next(iter(topo.routers[1].pim.entries.values()))
    assert not entry.pruned_upstream
    assert entry.graft_retries == 0


def test_loss_free_join_sends_one_graft():
    cfg = PimDmConfig(
        graft_retry_interval=1.0,
        graft_backoff_factor=2.0,
        graft_retry_max_interval=8.0,
    )
    topo, mld = grafting_line(cfg)
    topo.net.sim.schedule_at(25.5, mld.join, GROUP)
    topo.net.run(until=35.0)
    assert topo.net.tracer.count("pim", event="graft-sent", node="R1") == 1


def test_config_validation():
    with pytest.raises(ValueError):
        PimDmConfig(graft_backoff_factor=0.5)
    with pytest.raises(ValueError):
        PimDmConfig(graft_retry_interval=3.0, graft_retry_max_interval=1.0)
