"""Tests for the PIM-DM assert process (parallel forwarders, §3.1)."""

import pytest

from repro.mld import MldHost
from repro.net import Address, ApplicationData, Host, Network
from repro.pimdm import MulticastRouter, PimDmConfig

GROUP = Address("ff1e::1")


def parallel_routers(seed=3, pim_config=None):
    """Source link -- (P1 || P2 in parallel) -- downstream LAN with a member.

    Both parallel routers forward onto the downstream LAN; the assert
    election must pick exactly one forwarder.
    """
    net = Network(seed=seed)
    l_up = net.add_link("UP", "2001:db8:a::/64")
    l_down = net.add_link("DOWN", "2001:db8:b::/64")
    p1 = MulticastRouter(net.sim, "P1", tracer=net.tracer, rng=net.rng,
                         pim_config=pim_config)
    p2 = MulticastRouter(net.sim, "P2", tracer=net.tracer, rng=net.rng,
                         pim_config=pim_config)
    for i, r in enumerate((p1, p2), start=1):
        r.attach_to(l_up, l_up.prefix.address_for_host(i))
        r.attach_to(l_down, l_down.prefix.address_for_host(i))
        net.register_node(r)
        net.on_start(r.start)
    sender = Host(net.sim, "S", tracer=net.tracer, rng=net.rng)
    sender.attach_to(l_up, l_up.prefix.address_for_host(100))
    member = Host(net.sim, "M", tracer=net.tracer, rng=net.rng)
    member.attach_to(l_down, l_down.prefix.address_for_host(100))
    net.register_node(sender)
    net.register_node(member)
    return net, (l_up, l_down), (p1, p2), sender, member


class TestAssertElection:
    def _run(self, net, sender, member, n=100):
        mld = MldHost(member)
        net.run(until=1.0)
        mld.join(GROUP)
        net.run(until=2.0)
        for k in range(n):
            net.sim.schedule_at(
                2.0 + 0.1 * k, sender.send_multicast, GROUP,
                ApplicationData(seqno=k),
            )
        net.run(until=2.0 + 0.1 * n + 2.0)
        return mld

    def test_asserts_are_sent(self):
        net, links, routers, sender, member = parallel_routers()
        self._run(net, sender, member)
        assert net.tracer.count("pim", event="assert-sent") >= 2

    def test_single_forwarder_elected(self):
        net, links, routers, sender, member = parallel_routers()
        self._run(net, sender, member)
        p1, p2 = routers
        src = sender.primary_address()
        forwarding = [r for r in routers if "DOWN" in r.pim.forwarding_links(src, GROUP)]
        assert len(forwarding) == 1

    def test_higher_address_wins_on_metric_tie(self):
        """Equal metrics: the numerically higher address keeps forwarding."""
        net, links, routers, sender, member = parallel_routers()
        self._run(net, sender, member)
        p1, p2 = routers  # P2 has the higher address (::2)
        src = sender.primary_address()
        assert "DOWN" in p2.pim.forwarding_links(src, GROUP)
        assert "DOWN" not in p1.pim.forwarding_links(src, GROUP)
        assert net.tracer.count("pim", event="assert-lost", node="P1") >= 1

    def test_duplicates_stop_after_election(self):
        net, links, routers, sender, member = parallel_routers()
        got = []
        member.on_app_data(lambda p, m: got.append(m.seqno))
        self._run(net, sender, member, n=100)
        # late packets arrive exactly once
        late = [s for s in got if s >= 50]
        assert len(late) == len(set(late))
        assert len(late) == 50

    def test_assert_loser_state_expires(self):
        cfg = PimDmConfig(assert_time=15.0)
        net, links, routers, sender, member = parallel_routers(pim_config=cfg)
        self._run(net, sender, member, n=50)  # ends ~t=9
        net.run(until=30.0)
        assert net.tracer.count("pim", event="assert-expired", node="P1") >= 1

    def test_downstream_stores_assert_winner(self):
        """A third router downstream of the LAN retargets its prune at the
        assert winner (paper §3.1: 'store the elected forwarder')."""
        net, links, routers, sender, member = parallel_routers()
        l_down = links[1]
        l_leaf = net.add_link("LEAF", "2001:db8:c::/64")
        d = MulticastRouter(net.sim, "D", tracer=net.tracer, rng=net.rng)
        d.attach_to(l_down, l_down.prefix.address_for_host(3))
        d.attach_to(l_leaf, l_leaf.prefix.address_for_host(3))
        net.register_node(d)
        net.on_start(d.start)
        self._run(net, sender, member, n=60)
        src = sender.primary_address()
        entry = d.pim.get_entry(src, GROUP)
        assert entry is not None
        # winner on the LAN is P2 (higher address, equal metric)
        p2_addr = l_down.prefix.address_for_host(2)
        assert entry.upstream_assert_winner == p2_addr
        assert entry.upstream_target() == p2_addr
        # D pruned the leaf earlier; a member joining there now grafts —
        # the graft must go to the elected forwarder, not the FIB next hop
        leaf_member = Host(net.sim, "LM", tracer=net.tracer, rng=net.rng)
        leaf_member.attach_to(l_leaf, l_leaf.prefix.address_for_host(100))
        net.register_node(leaf_member)
        leaf_mld = MldHost(leaf_member)
        leaf_mld.join(GROUP)
        net.run(until=net.now + 2.0)
        ev = net.tracer.first("pim", node="D", event="graft-sent")
        assert ev is not None and ev.detail["target"] == str(p2_addr)
