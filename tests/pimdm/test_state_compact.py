"""Differential tests: compact (S,G) state vs. the dict seed backend.

The compact representation (interned keys, array-backed downstream
tables, pooled :class:`OifSet` flag masks) must be *behaviourally
transparent*: running any Figure 2-4 scenario under either backend
must reproduce the committed golden trace digests byte-for-byte, and
the table/bitset structures must agree with their plain dict/set
models under arbitrary operation sequences.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PaperScenario, ScenarioConfig
from repro.core.goldens import CANNED_RUNS
from repro.net.node import Node
from repro.obs import digest_events
from repro.pimdm import PimDmConfig
from repro.pimdm.state import (
    STATE_BACKENDS,
    CompactDownstreamTable,
    DictDownstreamTable,
    OifSet,
    SgInterner,
    StateStore,
    sg_key,
)
from repro.net import Address
from repro.sim import Simulator

GOLDEN_DIR = Path(__file__).parent.parent / "goldens"

S = Address("2001:db8:1::64")
G = Address("ff1e::1")


# ----------------------------------------------------------------------
# golden differential: both backends reproduce the committed digests
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", STATE_BACKENDS)
@pytest.mark.parametrize("name", ("fig2", "fig3", "fig4"))
def test_backend_keeps_golden_digest(name: str, backend: str) -> None:
    recipe = CANNED_RUNS[name]
    sc = PaperScenario(
        ScenarioConfig(
            seed=0,
            approach=recipe.approach,
            pim=PimDmConfig(state_backend=backend),
        )
    )
    sc.converge()
    host, link = recipe.move
    sc.move(host, link, at=recipe.move_at)
    sc.run_until(recipe.run_until)

    golden = json.loads((GOLDEN_DIR / f"{name}-seed0.json").read_text())
    events = sc.net.tracer.events
    assert len(events) == golden["events"], (
        f"{name} under backend={backend} produced a different event count"
    )
    assert digest_events(events) == golden["digest"], (
        f"{name} trace drifted under state_backend={backend!r}: the "
        "compact representation must be behaviourally invisible"
    )


def test_unknown_backend_rejected() -> None:
    with pytest.raises(ValueError):
        PimDmConfig(state_backend="sparse")
    with pytest.raises(ValueError):
        StateStore("sparse")


# ----------------------------------------------------------------------
# OifSet vs. the set model
# ----------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.sampled_from(("add", "discard", "clear")),
        st.integers(min_value=0, max_value=200),
    ),
    max_size=80,
)


class TestOifSetModel:
    @settings(max_examples=200, deadline=None)
    @given(ops)
    def test_round_trip_against_set(self, sequence):
        oif = OifSet()
        model: set = set()
        for op, uid in sequence:
            if op == "add":
                oif.add(uid)
                model.add(uid)
            elif op == "discard":
                oif.discard(uid)
                model.discard(uid)
            else:
                oif.clear()
                model.clear()
            assert len(oif) == len(model)
            assert bool(oif) == bool(model)
            assert sorted(oif) == sorted(model)
            for uid2 in range(0, 16):
                assert (uid2 in oif) == (uid2 in model)

    @settings(max_examples=100, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=200), max_size=40))
    def test_iteration_is_ascending_and_int_faithful(self, uids):
        oif = OifSet()
        for uid in uids:
            oif.add(uid)
        listed = list(oif)
        assert listed == sorted(uids)
        assert oif.as_int() == sum(1 << u for u in uids)
        rebuilt = OifSet(oif.as_int())
        assert rebuilt == oif

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            OifSet(-1)


# ----------------------------------------------------------------------
# downstream tables: compact vs. dict under the same op sequence
# ----------------------------------------------------------------------
table_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ("touch", "prune", "unprune", "lose", "clear_assert", "clear_prune")
        ),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=60,
)


class TestDownstreamTableDifferential:
    @settings(max_examples=100, deadline=None)
    @given(table_ops)
    def test_tables_agree(self, sequence):
        sim = Simulator()
        node = Node(sim, "N")
        ifaces = [node.new_interface() for _ in range(6)]
        dict_table = DictDownstreamTable()
        compact_table = CompactDownstreamTable()
        for op, idx in sequence:
            iface = ifaces[idx]
            for table in (dict_table, compact_table):
                state = table.state_for(iface)
                if op == "prune":
                    state.pruned = True
                elif op == "unprune":
                    state.pruned = False
                elif op == "lose":
                    state.assert_loser = True
                elif op == "clear_assert":
                    state.clear_assert()
                elif op == "clear_prune":
                    state.clear_prune()
        assert len(dict_table) == len(compact_table)
        assert bool(dict_table) == bool(compact_table)
        assert sorted(dict_table) == sorted(compact_table)
        for iface in ifaces:
            a = dict_table.get(iface.uid)
            b = compact_table.get(iface.uid)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.pruned == b.pruned
                assert a.assert_loser == b.assert_loser
                assert a.prune_pending == b.prune_pending
        # the pooled masks mirror the per-state flags exactly
        assert sorted(compact_table.pruned_oifs) == sorted(
            s.iface.uid for s in dict_table.values() if s.pruned
        )
        assert sorted(compact_table.assert_loser_oifs) == sorted(
            s.iface.uid for s in dict_table.values() if s.assert_loser
        )

    def test_state_for_is_idempotent(self):
        sim = Simulator()
        node = Node(sim, "N")
        iface = node.new_interface()
        table = CompactDownstreamTable()
        assert table.state_for(iface) is table.state_for(iface)
        assert table.get(iface.uid) is table.state_for(iface)
        assert table.get(999) is None


# ----------------------------------------------------------------------
# keying: interned ids vs. address-pair tuples
# ----------------------------------------------------------------------
addresses = st.integers(min_value=1, max_value=50).map(
    lambda i: Address(f"2001:db8:1::{i:x}")
)
groups = st.integers(min_value=1, max_value=50).map(lambda i: Address(f"ff1e::{i:x}"))


class TestStateStoreKeys:
    def test_dict_backend_uses_sg_key(self):
        store = StateStore("dict")
        assert store.key(S, G) == sg_key(S, G)
        assert store.interner is None

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(addresses, groups), min_size=1, max_size=40))
    def test_compact_keys_are_dense_and_consistent(self, pairs):
        store = StateStore("compact")
        model = {}
        for source, group in pairs:
            key = store.key(source, group)
            pair = sg_key(source, group)
            if pair in model:
                assert model[pair] == key  # stable on re-lookup
            else:
                assert key == len(model)  # dense allocation in first-seen order
                model[pair] = key
        # distinct pairs never share a key
        assert len(set(model.values())) == len(model)

    def test_reset_discards_interned_ids(self):
        store = StateStore("compact")
        first = store.key(S, G)
        store.key(Address("2001:db8:1::65"), G)
        store.reset()
        assert store.key(Address("2001:db8:1::65"), G) == first

    def test_interner_round_trips_addresses(self):
        interner = SgInterner()
        ident = interner.intern_address(S)
        assert interner.address(ident) == S
        assert interner.intern_address(Address(str(S))) == ident
        assert len(interner) == 1
