"""Unit/behavioural tests for the PIM-DM engine on small topologies."""

import pytest

from repro.mld import MldConfig, MldHost
from repro.net import Address, ApplicationData, Host, Network
from repro.pimdm import MulticastRouter, PimDmConfig

from topo_helpers import build_line

GROUP = Address("ff1e::1")


def start_and_settle(topo, until=1.0):
    topo.net.run(until=until)


def send_data(sender, group=GROUP, seqno=0):
    sender.send_multicast(group, ApplicationData(seqno=seqno))


class TestHello:
    def test_neighbors_discovered(self):
        topo = build_line(2)
        start_and_settle(topo)
        r0, r1 = topo.routers
        shared = topo.links[1]
        assert r0.pim.has_pim_neighbors(r0.iface_on(shared))
        assert r1.pim.has_pim_neighbors(r1.iface_on(shared))

    def test_no_neighbors_on_leaf_links(self):
        topo = build_line(2)
        start_and_settle(topo)
        r0 = topo.routers[0]
        assert not r0.pim.has_pim_neighbors(r0.iface_on(topo.links[0]))

    def test_neighbor_expires_without_hellos(self):
        cfg = PimDmConfig(hello_period=5.0, hello_holdtime=12.0)
        topo = build_line(2, pim_config=cfg)
        start_and_settle(topo)
        r0, r1 = topo.routers
        shared = topo.links[1]
        # silence R1 by detaching it
        r1.iface_on(shared).detach()
        topo.net.run(until=20.0)
        assert not r0.pim.has_pim_neighbors(r0.iface_on(shared))
        assert topo.net.tracer.count("pim", event="neighbor-expired") >= 1


class TestEntryCreation:
    def test_first_packet_creates_entry(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        start_and_settle(topo)
        send_data(sender)
        topo.net.run(until=2.0)
        for r in topo.routers:
            assert r.pim.get_entry(sender.primary_address(), GROUP) is not None

    def test_upstream_iface_is_rpf(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        start_and_settle(topo)
        send_data(sender)
        topo.net.run(until=2.0)
        r1 = topo.routers[1]
        entry = r1.pim.get_entry(sender.primary_address(), GROUP)
        assert entry.upstream_iface.link is topo.links[1]

    def test_first_hop_router_has_no_upstream_neighbor(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        start_and_settle(topo)
        send_data(sender)
        topo.net.run(until=2.0)
        entry = topo.routers[0].pim.get_entry(sender.primary_address(), GROUP)
        assert entry.upstream_neighbor is None

    def test_entry_expires_after_data_timeout(self):
        cfg = PimDmConfig(data_timeout=30.0)
        topo = build_line(2, pim_config=cfg)
        sender = topo.host_on(0, 100, "S")
        start_and_settle(topo)
        send_data(sender)
        topo.net.run(until=2.0)
        assert topo.routers[0].pim.get_entry(sender.primary_address(), GROUP)
        topo.net.run(until=40.0)
        assert topo.routers[0].pim.get_entry(sender.primary_address(), GROUP) is None
        assert topo.net.tracer.count("pim.state", event="entry-expired") >= 1

    def test_continued_data_keeps_entry_alive(self):
        cfg = PimDmConfig(data_timeout=10.0)
        topo = build_line(2, pim_config=cfg)
        sender = topo.host_on(0, 100, "S")
        receiver = topo.host_on(2, 101, "R")
        mld = MldHost(receiver)
        start_and_settle(topo)
        mld.join(GROUP)
        for k in range(10):
            topo.net.sim.schedule_at(2.0 + 5.0 * k, send_data, sender, GROUP, k)
        topo.net.run(until=55.0)
        assert topo.routers[0].pim.get_entry(sender.primary_address(), GROUP)

    def test_unroutable_source_dropped(self):
        topo = build_line(2)
        start_and_settle(topo)
        r0 = topo.routers[0]
        from repro.net import Ipv6Packet

        bogus = Ipv6Packet(
            Address("2001:db8:ff::1"), GROUP, ApplicationData(seqno=0)
        )
        r0.pim.on_multicast_data(bogus, r0.interfaces[0])
        assert topo.net.tracer.count("pim", event="no-rpf") == 1


class TestFloodAndPrune:
    def test_data_reaches_member_across_routers(self):
        topo = build_line(3)
        sender = topo.host_on(0, 100, "S")
        receiver = topo.host_on(3, 101, "R")
        mld = MldHost(receiver)
        got = []
        receiver.on_app_data(lambda p, m: got.append(m.seqno))
        start_and_settle(topo)
        mld.join(GROUP)
        topo.net.run(until=2.0)
        send_data(sender, seqno=7)
        topo.net.run(until=3.0)
        assert got == [7]

    def test_leaf_link_without_members_not_forwarded(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        start_and_settle(topo)
        send_data(sender)
        topo.net.run(until=2.0)
        # no members anywhere: last link must carry no data
        assert topo.net.stats.link_bytes(topo.links[2].name, "mcast_data") == 0

    def test_last_router_prunes_when_no_interest(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        start_and_settle(topo)
        send_data(sender)
        topo.net.run(until=10.0)
        # R1 has no members and no downstream routers -> prunes toward R0
        assert topo.net.tracer.count("pim", event="prune-sent", node="R1") == 1
        ev = topo.net.tracer.first("pim", event="prune-pending", node="R0")
        assert ev is not None

    def test_pruned_interface_stops_forwarding(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        start_and_settle(topo)
        # steady flow so we can observe the stop
        for k in range(100):
            topo.net.sim.schedule_at(2.0 + 0.1 * k, send_data, sender, GROUP, k)
        topo.net.run(until=13.0)
        mid_bytes = topo.net.stats.link_bytes(topo.links[1].name, "mcast_data")
        topo.net.run(until=14.0)
        # after prune (sent ~t=2, effective ~t=5) the middle link is quiet
        assert topo.net.stats.link_bytes(topo.links[1].name, "mcast_data") == mid_bytes

    def test_prune_not_applied_with_local_members(self):
        """A Prune on a link with MLD members must be ignored (§3.1)."""
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        member = topo.host_on(1, 101, "M")  # member on the middle link
        mld = MldHost(member)
        start_and_settle(topo)
        mld.join(GROUP)
        topo.net.run(until=2.0)
        for k in range(100):
            topo.net.sim.schedule_at(2.0 + 0.1 * k, send_data, sender, GROUP, k)
        topo.net.run(until=13.0)
        # R1 pruned (no interest behind it), but R0 keeps serving M
        got_after_prune = topo.net.stats.link_bytes(topo.links[1].name, "mcast_data")
        assert got_after_prune > 90 * 1040  # nearly all packets delivered

    def test_prune_hold_expiry_resumes_forwarding(self):
        cfg = PimDmConfig(prune_hold_time=20.0)
        topo = build_line(2, pim_config=cfg)
        sender = topo.host_on(0, 100, "S")
        start_and_settle(topo)
        for k in range(400):
            topo.net.sim.schedule_at(2.0 + 0.1 * k, send_data, sender, GROUP, k)
        topo.net.run(until=42.0)
        assert topo.net.tracer.count("pim.state", event="oif-prune-expired") >= 1


class TestJoinOverride:
    def test_join_override_cancels_prune(self):
        """Two downstream routers on a LAN: one prunes, the other still
        needs traffic and overrides with a Join within T_PruneDel."""
        net = Network(seed=3)
        l_src = net.add_link("Lsrc", "2001:db8:a::/64")
        lan = net.add_link("LAN", "2001:db8:b::/64")
        l_d1 = net.add_link("Ld1", "2001:db8:c::/64")
        l_d2 = net.add_link("Ld2", "2001:db8:d::/64")
        top = MulticastRouter(net.sim, "TOP", tracer=net.tracer, rng=net.rng)
        top.attach_to(l_src, l_src.prefix.address_for_host(1))
        top.attach_to(lan, lan.prefix.address_for_host(1))
        d1 = MulticastRouter(net.sim, "D1", tracer=net.tracer, rng=net.rng)
        d1.attach_to(lan, lan.prefix.address_for_host(2))
        d1.attach_to(l_d1, l_d1.prefix.address_for_host(2))
        d2 = MulticastRouter(net.sim, "D2", tracer=net.tracer, rng=net.rng)
        d2.attach_to(lan, lan.prefix.address_for_host(3))
        d2.attach_to(l_d2, l_d2.prefix.address_for_host(3))
        for r in (top, d1, d2):
            net.register_node(r)
            net.on_start(r.start)
        sender = Host(net.sim, "S", tracer=net.tracer, rng=net.rng)
        sender.attach_to(l_src, l_src.prefix.address_for_host(100))
        member = Host(net.sim, "M", tracer=net.tracer, rng=net.rng)
        member.attach_to(l_d2, l_d2.prefix.address_for_host(100))
        net.register_node(sender)
        net.register_node(member)
        mld = MldHost(member)
        net.run(until=1.0)
        mld.join(GROUP)
        net.run(until=2.0)
        for k in range(200):
            net.sim.schedule_at(2.0 + 0.1 * k, send_data, sender, GROUP, k)
        net.run(until=25.0)
        # D1 pruned; D2 overrode with a Join; TOP kept forwarding
        assert net.tracer.count("pim", event="prune-sent", node="D1") >= 1
        assert net.tracer.count("pim", event="join-sent", node="D2") >= 1
        assert net.tracer.count("pim", event="join-override-received", node="TOP") >= 1
        # member kept receiving throughout
        assert net.stats.link_bytes("Ld2", "mcast_data") > 150 * 1040


class TestGraft:
    def test_membership_on_pruned_branch_grafts(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        late = topo.host_on(2, 101, "LATE")
        mld = MldHost(late)
        got = []
        late.on_app_data(lambda p, m: got.append(m.seqno))
        start_and_settle(topo)
        for k in range(300):
            topo.net.sim.schedule_at(2.0 + 0.1 * k, send_data, sender, GROUP, k)
        topo.net.run(until=20.0)  # R1 pruned by now
        mld.join(GROUP)
        topo.net.run(until=32.0)
        assert topo.net.tracer.count("pim", event="graft-sent", node="R1") >= 1
        assert topo.net.tracer.count("pim", event="graft-acked", node="R1") >= 1
        assert got, "late joiner never received data after graft"

    def test_graft_ack_stops_retransmission(self):
        topo = build_line(2, pim_config=PimDmConfig(graft_retry_interval=1.0))
        sender = topo.host_on(0, 100, "S")
        late = topo.host_on(2, 101, "LATE")
        mld = MldHost(late)
        start_and_settle(topo)
        for k in range(300):
            topo.net.sim.schedule_at(2.0 + 0.1 * k, send_data, sender, GROUP, k)
        topo.net.run(until=20.0)
        mld.join(GROUP)
        topo.net.run(until=30.0)
        # exactly one graft (acked immediately, no retries)
        assert topo.net.tracer.count("pim", event="graft-sent", node="R1") == 1
