"""Tests for the PIM-DM State Refresh extension (RFC 3973 mechanism).

Plain dense mode re-floods pruned branches whenever prune state expires
(the prune-hold timer); with State Refresh enabled, the first-hop
router's periodic refresh keeps prune state alive and the re-flood
never happens.
"""

import pytest

from repro.net import ApplicationData
from repro.pimdm import PimDmConfig

from topo_helpers import build_line

SHORT_HOLD = PimDmConfig(prune_hold_time=15.0)
SHORT_HOLD_SR = PimDmConfig(
    prune_hold_time=15.0, state_refresh_enabled=True, state_refresh_interval=5.0
)


def run_line(pim_config, until=120.0, seed=7):
    """Sender on L0, no members anywhere: R1 prunes the middle link."""
    topo = build_line(2, seed=seed, pim_config=pim_config)
    sender = topo.host_on(0, 100, "S")
    topo.net.run(until=1.0)
    for k in range(int((until - 2.0) / 0.2)):
        topo.net.sim.schedule_at(
            2.0 + 0.2 * k, sender.send_multicast, topo.group,
            ApplicationData(seqno=k),
        )
    topo.net.run(until=until)
    return topo


class TestWithoutStateRefresh:
    def test_prune_state_expires_and_refloods(self):
        topo = run_line(SHORT_HOLD)
        # the prune-hold timer expired repeatedly -> periodic re-flood
        # (re-prunes are paced by the 60 s prune retry interval)
        assert topo.net.tracer.count("pim.state", event="oif-prune-expired") >= 2
        mid = topo.net.stats.link_bytes(topo.links[1].name, "mcast_data")
        assert mid > 20 * 1040  # several re-flood bursts reached the link


class TestWithStateRefresh:
    def test_no_reflood_while_refresh_flows(self):
        topo = run_line(SHORT_HOLD_SR)
        assert topo.net.tracer.count("pim.state", event="oif-prune-expired") == 0

    def test_refresh_messages_originated_periodically(self):
        topo = run_line(SHORT_HOLD_SR, until=60.0)
        count = topo.net.tracer.count("pim", node="R0", event="state-refresh-sent")
        # every ~5 s from entry creation (~t=2) to t=60
        assert 8 <= count <= 13

    def test_data_waste_far_below_plain_dm(self):
        plain = run_line(SHORT_HOLD)
        sr = run_line(SHORT_HOLD_SR)
        link = plain.links[1].name
        plain_bytes = plain.net.stats.link_bytes(link, "mcast_data")
        sr_bytes = sr.net.stats.link_bytes(link, "mcast_data")
        assert sr_bytes < plain_bytes / 3

    def test_refresh_keeps_pruned_downstream_state_alive(self):
        """Once R1 pruned itself off the tree, data no longer refreshes
        its (S,G) entry; the periodic State Refresh does instead."""
        cfg = PimDmConfig(
            data_timeout=20.0, state_refresh_enabled=True,
            state_refresh_interval=5.0, prune_hold_time=210.0,
        )
        topo = build_line(2, pim_config=cfg)
        sender = topo.host_on(0, 100, "S")
        topo.net.run(until=1.0)
        # keep the source active (every 10 s < data timeout) so the
        # first-hop entry survives and refreshes keep flowing
        for k in range(10):
            topo.net.sim.schedule_at(
                2.0 + 10.0 * k, sender.send_multicast, topo.group,
                ApplicationData(seqno=k),
            )
        topo.net.run(until=95.0)
        src = sender.primary_address()
        # R1 pruned at the first datagram; no data reached it since
        # ~t=5, yet its entry is alive thanks to the refreshes
        assert topo.routers[1].pim.get_entry(src, topo.group) is not None

    def test_silent_source_state_still_expires_with_refresh(self):
        """A totally silent source must still age out everywhere: the
        origination stops with the first-hop entry (RFC 3973 couples
        refresh origination to source liveness)."""
        cfg = PimDmConfig(
            data_timeout=20.0, state_refresh_enabled=True,
            state_refresh_interval=5.0,
        )
        topo = build_line(2, pim_config=cfg)
        sender = topo.host_on(0, 100, "S")
        topo.net.run(until=1.0)
        sender.send_multicast(topo.group, ApplicationData(seqno=0))
        topo.net.run(until=120.0)
        src = sender.primary_address()
        assert topo.routers[0].pim.get_entry(src, topo.group) is None
        assert topo.routers[1].pim.get_entry(src, topo.group) is None

    def test_refresh_propagates_across_hops(self):
        cfg = PimDmConfig(state_refresh_enabled=True, state_refresh_interval=5.0)
        topo = build_line(3, pim_config=cfg)
        sender = topo.host_on(0, 100, "S")
        topo.net.run(until=1.0)
        sender.send_multicast(topo.group, ApplicationData(seqno=0))
        topo.net.run(until=30.0)
        # the refresh originated at R0 reaches R2 via R1
        assert topo.net.tracer.count("pim", node="R2", event="state-refresh-sent") >= 1

    def test_graft_still_works_under_refresh(self):
        """A late member on a refresh-pinned pruned branch still grafts."""
        from repro.mld import MldHost

        topo = build_line(2, pim_config=SHORT_HOLD_SR)
        sender = topo.host_on(0, 100, "S")
        late = topo.host_on(2, 101, "LATE")
        mld = MldHost(late)
        got = []
        late.on_app_data(lambda p, m: got.append(m.seqno))
        topo.net.run(until=1.0)
        for k in range(300):
            topo.net.sim.schedule_at(
                2.0 + 0.2 * k, sender.send_multicast, topo.group,
                ApplicationData(seqno=k),
            )
        topo.net.run(until=30.0)  # pruned and pinned by refresh
        mld.join(topo.group)
        topo.net.run(until=45.0)
        assert got, "graft failed under state refresh"
