"""Unit tests for the (S,G) state structures."""

import pytest

from repro.net import Address
from repro.net.interface import Interface
from repro.net.node import Node
from repro.pimdm.state import DownstreamState, SgEntry, sg_key
from repro.sim import Simulator, Timer

S = Address("2001:db8:1::64")
G = Address("ff1e::1")


def make_iface(sim):
    node = Node(sim, "N")
    return node.new_interface()


class TestSgKey:
    def test_same_pair_same_key(self):
        assert sg_key(S, G) == sg_key(Address(str(S)), Address(str(G)))

    def test_different_pairs_differ(self):
        assert sg_key(S, G) != sg_key(S, Address("ff1e::2"))
        assert sg_key(S, G) != sg_key(Address("2001:db8:1::65"), G)

    def test_usable_as_dict_key(self):
        d = {sg_key(S, G): 1}
        assert d[sg_key(S, G)] == 1


class TestDownstreamState:
    def test_prune_pending_reflects_timer(self, sim):
        iface = make_iface(sim)
        ds = DownstreamState(iface=iface)
        assert not ds.prune_pending
        ds.prune_pending_timer = Timer(sim, lambda: None)
        ds.prune_pending_timer.start(3.0)
        assert ds.prune_pending
        sim.run()
        assert not ds.prune_pending

    def test_clear_prune_resets_everything(self, sim):
        iface = make_iface(sim)
        ds = DownstreamState(iface=iface)
        ds.pruned = True
        ds.prune_hold_timer = Timer(sim, lambda: None)
        ds.prune_hold_timer.start(10.0)
        ds.clear_prune()
        assert not ds.pruned
        assert ds.prune_hold_timer is None
        assert ds.prune_pending_timer is None

    def test_clear_assert(self, sim):
        iface = make_iface(sim)
        ds = DownstreamState(iface=iface)
        ds.assert_loser = True
        ds.assert_winner = Address("2001:db8:2::1")
        ds.assert_winner_metric = 2
        ds.assert_timer = Timer(sim, lambda: None)
        ds.assert_timer.start(180.0)
        ds.clear_assert()
        assert not ds.assert_loser
        assert ds.assert_winner is None
        assert ds.assert_timer is None


class TestSgEntry:
    def _entry(self, sim):
        iface = make_iface(sim)
        return SgEntry(
            source=S, group=G, upstream_iface=iface,
            upstream_neighbor=Address("2001:db8:2::1"), metric_to_source=2,
        )

    def test_key_property(self, sim):
        entry = self._entry(sim)
        assert entry.key == sg_key(S, G)

    def test_downstream_state_created_on_demand(self, sim):
        entry = self._entry(sim)
        iface = make_iface(sim)
        ds = entry.downstream_state(iface)
        assert ds.iface is iface
        assert entry.downstream_state(iface) is ds  # cached

    def test_upstream_target_prefers_assert_winner(self, sim):
        entry = self._entry(sim)
        assert entry.upstream_target() == Address("2001:db8:2::1")
        winner = Address("2001:db8:2::9")
        entry.upstream_assert_winner = winner
        assert entry.upstream_target() == winner

    def test_upstream_target_none_for_first_hop(self, sim):
        iface = make_iface(sim)
        entry = SgEntry(source=S, group=G, upstream_iface=iface,
                        upstream_neighbor=None)
        assert entry.upstream_target() is None

    def test_stop_all_timers(self, sim):
        entry = self._entry(sim)
        entry.entry_timer = Timer(sim, lambda: None)
        entry.entry_timer.start(210.0)
        entry.graft_retry_timer = Timer(sim, lambda: None)
        entry.graft_retry_timer.start(3.0)
        ds = entry.downstream_state(make_iface(sim))
        ds.prune_hold_timer = Timer(sim, lambda: None)
        ds.prune_hold_timer.start(210.0)
        ds.pruned = True
        entry.stop_all_timers()
        assert not entry.entry_timer.running
        assert not entry.graft_retry_timer.running
        assert sim.events_pending == 0
