"""Unit tests for PIM-DM configuration and message types."""

import pytest

from repro.net import Address
from repro.pimdm import (
    PimAssert,
    PimDmConfig,
    PimGraft,
    PimGraftAck,
    PimHello,
    PimJoin,
    PimPrune,
)

S = Address("2001:db8:1::64")
G = Address("ff1e::1")


class TestConfig:
    def test_paper_defaults(self):
        cfg = PimDmConfig()
        assert cfg.data_timeout == 210.0  # paper §3.1
        assert cfg.prune_delay == 3.0  # T_PruneDel, paper §4.3.1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            PimDmConfig(data_timeout=0.0)
        with pytest.raises(ValueError):
            PimDmConfig(prune_delay=-1.0)
        with pytest.raises(ValueError):
            PimDmConfig(hello_period=30.0, hello_holdtime=30.0)
        with pytest.raises(ValueError):
            PimDmConfig(graft_retry_interval=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            PimDmConfig().data_timeout = 1.0  # type: ignore


class TestMessages:
    def test_protocol_tags(self):
        for m in (
            PimHello(),
            PimJoin(S, G),
            PimPrune(S, G),
            PimGraft(S, G),
            PimGraftAck(S, G),
            PimAssert(S, G),
        ):
            assert m.protocol == "pim"

    def test_sizes_positive(self):
        assert PimHello().size_bytes == 30
        assert PimJoin(S, G).size_bytes == 62
        assert PimPrune(S, G).size_bytes == 62
        assert PimGraft(S, G).size_bytes == 62
        assert PimAssert(S, G).size_bytes == 48

    def test_describe_mentions_sg(self):
        for m in (PimJoin(S, G), PimPrune(S, G), PimGraft(S, G), PimAssert(S, G)):
            assert str(S) in m.describe() and str(G) in m.describe()

    def test_prune_default_holdtime(self):
        assert PimPrune(S, G).holdtime == 210.0

    def test_assert_metric_field(self):
        assert PimAssert(S, G, metric=3).metric == 3
