"""Invariants separating control traffic from multicast data.

MLD Reports are sent *to the group address* with hop limit 1; PIM
messages go to ff02::d.  None of that may ever be treated as multicast
*data*: no (S,G) state, no forwarding, no leaking off-link.
"""

import pytest

from repro.mld import MldHost, MldReport
from repro.net import ALL_PIM_ROUTERS, Address, ApplicationData, Ipv6Packet

from topo_helpers import build_line

GROUP = Address("ff1e::1")


class TestControlPlaneSeparation:
    def test_mld_report_creates_no_sg_state(self):
        """A Report is addressed to the group; a naive router would build
        an (host, group) forwarding entry from it."""
        topo = build_line(2)
        host = topo.host_on(0, 100, "H")
        mld = MldHost(host)
        topo.net.run(until=1.0)
        mld.join(GROUP)  # unsolicited Reports to the group address
        topo.net.run(until=5.0)
        r0 = topo.routers[0]
        assert r0.pim.get_entry(host.primary_address(), GROUP) is None
        assert len(r0.pim.entries) == 0

    def test_mld_report_not_forwarded_off_link(self):
        topo = build_line(2)
        host = topo.host_on(0, 100, "H")
        mld = MldHost(host)
        topo.net.run(until=1.0)
        mld.join(GROUP)
        topo.net.run(until=5.0)
        # reports stay on L0: the middle and far links carry no MLD bytes
        # beyond the routers' own queries
        assert topo.net.stats.link_bytes("L1", "mcast_data") == 0
        assert topo.net.stats.link_bytes("L2", "mcast_data") == 0

    def test_pim_messages_create_no_sg_state(self):
        topo = build_line(2)
        topo.net.run(until=5.0)  # hellos flowed
        for router in topo.routers:
            assert len(router.pim.entries) == 0

    def test_pim_hello_not_forwarded(self):
        """ff02::d is link-scope: hellos from R0 on L1 must never appear
        on L0 or L2 via forwarding."""
        topo = build_line(2)
        topo.net.run(until=100.0)
        # each link carries exactly the hellos of its attached routers:
        # L0 has only R0 (1 router * ceil(100/30)+1 hellos * 70B)
        per_hello = 70  # 40 header + 30 body
        l0 = topo.net.stats.link_bytes("L0", "pim")
        l1 = topo.net.stats.link_bytes("L1", "pim")
        assert l0 == 4 * per_hello  # t=0,30,60,90 from R0 only
        assert l1 == 8 * per_hello  # both routers

    def test_link_scope_data_not_routed(self):
        """Application data to a link-scope group stays on-link."""
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        topo.net.run(until=1.0)
        sender.send_multicast(Address("ff02::42"), ApplicationData(seqno=0))
        topo.net.run(until=2.0)
        assert topo.net.stats.link_bytes("L0", "mcast_data") > 0
        assert topo.net.stats.link_bytes("L1", "mcast_data") == 0
        assert len(topo.routers[0].pim.entries) == 0

    def test_hop_limit_one_data_delivered_locally_only(self):
        """Group-scope data with hop limit 1 creates state (routers see
        it) but cannot be forwarded further."""
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        member = topo.host_on(2, 101, "M")
        MldHost(member).join(GROUP)
        topo.net.run(until=2.0)
        sender.send_multicast(GROUP, ApplicationData(seqno=0), hop_limit=1)
        topo.net.run(until=4.0)
        assert topo.net.stats.link_bytes("L1", "mcast_data") == 0

    def test_tunneled_control_not_treated_as_data(self):
        """An encapsulated PIM/MLD message (pathological) must classify
        as control, not data, in accounting."""
        from repro.net.stats import classify_packet

        inner = Ipv6Packet(
            Address("2001:db8:1::1"), ALL_PIM_ROUTERS,
            MldReport(GROUP), hop_limit=1,
        )
        outer = inner.encapsulate(Address("2001:db8:1::1"), Address("2001:db8:2::1"))
        assert classify_packet(outer) == "mld"
