"""Reusable small-topology builders for tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mipv6 import HomeAgent
from repro.net import Address, Host, Link, Network, make_multicast_group
from repro.pimdm import MulticastRouter


@dataclass
class LineTopology:
    """R routers in a line: L0 -R0- L1 -R1- L2 ... -R(n-1)- Ln."""

    net: Network
    links: List[Link]
    routers: List[MulticastRouter]
    group: Address

    def host_on(self, link_index: int, host_id: int, name: str) -> Host:
        host = Host(self.net.sim, name, tracer=self.net.tracer, rng=self.net.rng)
        link = self.links[link_index]
        host.attach_to(link, link.prefix.address_for_host(host_id))
        self.net.register_node(host)
        return host


def build_line(
    n_routers: int = 2, seed: int = 7, use_home_agents: bool = False, **router_kw
) -> LineTopology:
    """Build a line topology with ``n_routers`` routers, n+1 links."""
    net = Network(seed=seed)
    links = [
        net.add_link(f"L{i}", f"2001:db8:{i + 1:x}::/64")
        for i in range(n_routers + 1)
    ]
    routers = []
    cls = HomeAgent if use_home_agents else MulticastRouter
    for i in range(n_routers):
        router = cls(net.sim, f"R{i}", tracer=net.tracer, rng=net.rng, **router_kw)
        for link in (links[i], links[i + 1]):
            router.attach_to(link, link.prefix.address_for_host(i + 1))
        net.register_node(router)
        net.on_start(router.start)
        routers.append(router)
    return LineTopology(
        net=net, links=links, routers=routers, group=make_multicast_group(1)
    )
