"""Supervision: retry, timeout, worker-death recovery, checkpoint/resume.

The campaign engine must degrade gracefully — one bad cell, one hung
cell, or one dead worker must never take down the campaign — and an
interrupted campaign resumed from its checkpoint journal must produce
the same result table as an uninterrupted one, byte-identically, for
``jobs=1`` and ``jobs=N`` alike.
"""

import json

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignError,
    CampaignRunner,
    CheckpointJournal,
)
from repro.obs import MetricsRegistry


def echo_cells(n):
    return [CampaignCell("selftest.echo", {"seed": s}) for s in range(n)]


def payload(result):
    return json.dumps(result.results(), sort_keys=True)


FAST = dict(backoff_base=0.01, backoff_cap=0.05)


# ----------------------------------------------------------------------
# failure isolation + quarantine
# ----------------------------------------------------------------------

class TestFailureIsolation:
    def test_raising_cell_records_failed_outcome(self):
        runner = CampaignRunner(retries=0, **FAST)
        result = runner.run(
            [
                CampaignCell("selftest.fail", {"seed": 1, "message": "seeded"}),
                CampaignCell("selftest.echo", {"seed": 2}),
            ]
        )
        bad, good = result.outcomes
        assert not bad.ok and bad.result is None and bad.status == "failed"
        assert "RuntimeError: seeded" in bad.error
        assert good.ok and good.result["seed"] == 2
        assert result.failed == 1 and result.executed == 1

    def test_pool_survives_raising_cell(self):
        runner = CampaignRunner(jobs=2, retries=0, **FAST)
        result = runner.run(
            [CampaignCell("selftest.fail", {"seed": 1})] + echo_cells(3)
        )
        assert result.failed == 1
        assert [o.ok for o in result.outcomes] == [False, True, True, True]

    def test_quarantine_after_exhausted_attempts(self):
        registry = MetricsRegistry()
        runner = CampaignRunner(retries=2, registry=registry, **FAST)
        result = runner.run([CampaignCell("selftest.fail", {"seed": 1})])
        assert result.outcomes[0].attempts == 3
        assert result.retries == 2
        text = registry.render_prometheus()
        assert "repro_campaign_quarantined_total" in text
        assert "repro_campaign_retries_total" in text

    def test_require_success_raises_manifest(self):
        runner = CampaignRunner(retries=0, **FAST)
        result = runner.run([CampaignCell("selftest.fail", {"seed": 1})])
        with pytest.raises(CampaignError) as excinfo:
            result.require_success()
        assert "selftest.fail" in str(excinfo.value)
        manifest = result.errors()
        assert manifest[0]["task"] == "selftest.fail"
        assert manifest[0]["attempts"] == 1
        assert "RuntimeError" in manifest[0]["error"]

    def test_failed_cells_never_poison_the_cache(self, tmp_path):
        cell = CampaignCell("selftest.fail", {"seed": 1})
        runner = CampaignRunner(retries=0, cache_dir=tmp_path, **FAST)
        runner.run([cell])
        rerun = CampaignRunner(retries=0, cache_dir=tmp_path, **FAST).run([cell])
        assert rerun.cached == 0  # re-executed, not served from cache


# ----------------------------------------------------------------------
# retry + deterministic backoff
# ----------------------------------------------------------------------

class TestRetry:
    def test_flaky_cell_heals_inline(self, tmp_path):
        runner = CampaignRunner(retries=2, **FAST)
        result = runner.run(
            [
                CampaignCell(
                    "selftest.flaky",
                    {"seed": 0, "state_dir": str(tmp_path), "fail_times": 2},
                )
            ]
        )
        assert result.failed == 0
        assert result.outcomes[0].attempts == 3
        assert result.outcomes[0].result["ok"] is True

    def test_flaky_cell_heals_in_pool(self, tmp_path):
        runner = CampaignRunner(jobs=2, retries=1, **FAST)
        result = runner.run(
            [
                CampaignCell(
                    "selftest.flaky",
                    {"seed": 0, "state_dir": str(tmp_path), "fail_times": 1},
                )
            ]
            + echo_cells(2)
        )
        assert result.failed == 0

    def test_backoff_is_deterministic_and_capped(self):
        a = CampaignRunner(master_seed=7, backoff_base=0.5, backoff_cap=2.0)
        b = CampaignRunner(master_seed=7, backoff_base=0.5, backoff_cap=2.0)
        delays = [a.backoff("cell-key", n) for n in range(1, 8)]
        assert delays == [b.backoff("cell-key", n) for n in range(1, 8)]
        assert all(d <= 2.0 for d in delays)
        assert all(d > 0.0 for d in delays)
        # a different master seed jitters differently
        c = CampaignRunner(master_seed=8, backoff_base=0.5, backoff_cap=2.0)
        assert delays != [c.backoff("cell-key", n) for n in range(1, 8)]


# ----------------------------------------------------------------------
# hung cells + dead workers
# ----------------------------------------------------------------------

class TestSupervision:
    def test_watchdog_kills_hung_cell(self):
        runner = CampaignRunner(
            jobs=2, retries=0, timeout=1.0, poll=0.1, **FAST
        )
        result = runner.run(
            [CampaignCell("selftest.sleep", {"seed": 0, "duration": 120.0})]
            + echo_cells(2)
        )
        hung = result.outcomes[0]
        assert not hung.ok and "timeout" in hung.error
        assert [o.ok for o in result.outcomes[1:]] == [True, True]
        assert result.pool_restarts >= 1

    def test_sigkilled_worker_recovers_and_matches_clean_run(self, tmp_path):
        clean = CampaignRunner(jobs=2, **FAST).run(echo_cells(4))
        chaotic = CampaignRunner(jobs=2, retries=2, **FAST).run(
            [
                CampaignCell(
                    "selftest.kill", {"seed": 0, "state_dir": str(tmp_path)}
                )
            ]
            + echo_cells(4)
        )
        assert chaotic.failed == 0
        assert chaotic.pool_restarts >= 1
        assert chaotic.outcomes[0].result["survived"] is True
        # the echo cells are byte-identical to the undisturbed campaign
        assert json.dumps(
            [o.result for o in chaotic.outcomes[1:]], sort_keys=True
        ) == payload(clean)


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------

class TestCheckpointResume:
    def test_resume_replays_completed_cells(self, tmp_path):
        cells = echo_cells(6)
        journal = tmp_path / "campaign.jsonl"
        baseline = payload(CampaignRunner(**FAST).run(cells))

        CampaignRunner(checkpoint=journal, **FAST).run(cells[:3])
        resumed = CampaignRunner(checkpoint=journal, resume=True, **FAST).run(
            cells
        )
        assert resumed.cached == 3 and resumed.executed == 3
        assert payload(resumed) == baseline

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_resume_is_byte_identical_across_jobs(self, tmp_path, jobs):
        cells = echo_cells(8)
        baseline = payload(CampaignRunner(**FAST).run(cells))
        journal = tmp_path / f"j{jobs}.jsonl"
        CampaignRunner(jobs=jobs, checkpoint=journal, **FAST).run(cells[:5])
        resumed = CampaignRunner(
            jobs=jobs, checkpoint=journal, resume=True, **FAST
        ).run(cells)
        assert payload(resumed) == baseline

    def test_resume_retries_previously_failed_cells(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        flaky = CampaignCell(
            "selftest.flaky",
            {"seed": 0, "state_dir": str(tmp_path / "state"), "fail_times": 1},
        )
        first = CampaignRunner(retries=0, checkpoint=journal, **FAST).run([flaky])
        assert first.failed == 1
        resumed = CampaignRunner(
            retries=0, checkpoint=journal, resume=True, **FAST
        ).run([flaky])
        assert resumed.failed == 0  # failure was not replayed as final
        assert resumed.outcomes[0].result["ok"] is True

    def test_journal_rejects_wrong_master_seed(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        CampaignRunner(master_seed=1, checkpoint=journal, **FAST).run(
            echo_cells(1)
        )
        runner = CampaignRunner(
            master_seed=2, checkpoint=journal, resume=True, **FAST
        )
        with pytest.raises(ValueError, match="master"):
            runner.run(echo_cells(1))

    def test_journal_tolerates_torn_tail_write(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        CampaignRunner(checkpoint=journal, **FAST).run(echo_cells(2))
        with open(journal, "a") as fh:
            fh.write('{"type": "cell", "key": "tr')  # died mid-write
        loaded = CheckpointJournal(journal, 0).load()
        assert len(loaded) == 2
        resumed = CampaignRunner(checkpoint=journal, resume=True, **FAST).run(
            echo_cells(2)
        )
        assert resumed.cached == 2 and resumed.executed == 0

    def test_stats_include_supervision_counts(self, tmp_path):
        runner = CampaignRunner(retries=1, **FAST)
        runner.run(
            [
                CampaignCell(
                    "selftest.flaky",
                    {"seed": 0, "state_dir": str(tmp_path), "fail_times": 1},
                ),
                CampaignCell("selftest.fail", {"seed": 9}),
            ]
        )
        stats = runner.stats()
        assert stats["failed"] == 1
        assert stats["retries"] == 2  # one heal + one exhausted
        assert stats["pool_restarts"] == 0
