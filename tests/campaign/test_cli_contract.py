"""CLI contract tests.

Two promises every subcommand makes:

* ``--json`` output parses as JSON and carries the documented
  top-level keys (downstream tooling depends on these names),
* bad arguments exit non-zero with a one-line error — never a
  traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import COMMANDS, build_parser, main


def run_json(capsys, argv) -> dict:
    # ``compare`` exits explicitly (0 = all claims hold); treat a clean
    # exit like a normal return.
    try:
        main(argv)
    except SystemExit as exc:
        assert exc.code in (None, 0), f"{argv} exited {exc.code}"
    return json.loads(capsys.readouterr().out)


#: argv → keys that must be present in the --json payload.  Fast
#: variants (small grids, single repeats) keep the contract suite quick
#: while still executing every command end to end.
JSON_CONTRACTS = [
    (["fig1", "--json"], {"experiment", "tree", "prunes"}),
    (["fig2", "--json"], {"experiment", "join_delay", "leave_delay"}),
    (["fig3", "--json"], {"experiment", "tunneled_datagrams", "groups_on_behalf"}),
    (["fig4", "--json"], {"experiment", "reverse_tunneled"}),
    (["table1", "--json"], {"experiment", "approaches"}),
    (["compare", "--json"], {"experiment", "receiver_rows", "sender_rows",
                             "claims", "all_claims_hold"}),
    (["scaling", "--json"], {"experiment", "mobiles", "groups"}),
    (["timers", "--intervals", "10", "--repeats", "1", "--json"],
     {"experiment", "points"}),
    (["sweep", "timers", "--intervals", "10", "--repeats", "1", "--json"],
     {"experiment", "grid", "seed", "jobs", "cache_dir", "points", "campaign"}),
    (["faults", "--loss", "0.02", "--approaches", "local", "--json"],
     {"experiment", "scenario", "seed", "loss_rows", "campaign"}),
    (["trace", "--json"], {"join_delay", "leave_delay", "events_total"}),
    (["spans", "--approaches", "local", "--json"],
     {"experiment", "seed", "rows", "campaign"}),
    (["profile", "fig1", "--json"], {"total_events", "entries"}),
    (["topo", "--model", "hier", "--depth", "2", "--fanout", "3", "--json"],
     {"experiment", "model", "routers", "links", "digest", "connected"}),
    (["bench", "--quick", "--scale", "0.01", "--output", "/dev/null",
      "--json"],
     {"schema", "schema_version", "env", "phases", "events_per_sec"}),
]


class TestJsonContract:
    @pytest.mark.parametrize(
        "argv,keys", JSON_CONTRACTS, ids=[" ".join(a) for a, _ in JSON_CONTRACTS]
    )
    def test_json_payload_has_documented_keys(self, capsys, argv, keys):
        payload = run_json(capsys, argv)
        assert keys <= set(payload), keys - set(payload)

    def test_every_registered_command_is_covered(self):
        covered = {argv[0] for argv, _ in JSON_CONTRACTS}
        # report is Markdown-only by design; everything else must be here.
        assert covered == set(COMMANDS) - {"report"}

    def test_sweep_campaign_summary_shape(self, capsys, tmp_path):
        payload = run_json(
            capsys,
            ["sweep", "timers", "--intervals", "10", "--repeats", "1",
             "--cache-dir", str(tmp_path), "--json"],
        )
        campaign = payload["campaign"]
        assert campaign["cells"] == 1
        assert campaign["executed"] == 1 and campaign["cached"] == 0
        warm = run_json(
            capsys,
            ["sweep", "timers", "--intervals", "10", "--repeats", "1",
             "--cache-dir", str(tmp_path), "--json"],
        )
        assert warm["campaign"]["executed"] == 0
        assert warm["campaign"]["cached"] == 1
        assert warm["points"] == payload["points"]


class TestBadArguments:
    @pytest.mark.parametrize(
        "argv",
        [
            ["bogus-command"],
            ["sweep", "bogus-grid"],
            ["sweep", "--jobs", "zero"],
            ["timers", "--intervals"],
            ["profile", "bogus-experiment"],
            ["trace", "--capacity", "many"],
            ["topo", "--model", "bogus"],
        ],
        ids=lambda argv: " ".join(argv),
    )
    def test_unparseable_args_exit_2(self, capsys, argv):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "Traceback" not in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv,needle",
        [
            (["sweep", "--jobs", "0"], "--jobs must be >= 1"),
            (["sweep", "--jobs", "-4"], "--jobs must be >= 1"),
            (["sweep", "scale", "--shards", "0"], "--shards must be >= 1"),
            (["sweep", "scale", "--shards", "-2"], "--shards must be >= 1"),
            (["sweep", "timers", "--shards", "2"],
             "--shards applies to the scale grid only"),
            (["sweep", "timers", "--repeats", "0"], "--repeats must be >= 1"),
            (["faults", "--loss", "1.5"], "--loss rates must be in [0, 1)"),
            (["faults", "--approaches", "bogus"], "unknown approach"),
            (["bench", "--scale", "0"], "--scale must be positive"),
            (["bench", "--tolerance", "1.5"], "--tolerance must be in [0, 1)"),
        ],
        ids=lambda v: " ".join(v) if isinstance(v, list) else v,
    )
    def test_invalid_values_exit_nonzero_with_message(self, capsys, argv, needle):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code not in (0, None)
        assert needle in str(exc.value)

    def test_invalid_cache_dir_exits_cleanly(self, tmp_path):
        bogus = tmp_path / "file-not-dir"
        bogus.write_text("")
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "timers", "--intervals", "10", "--repeats", "1",
                  "--cache-dir", str(bogus)])
        assert exc.value.code not in (0, None)
        assert "invalid --cache-dir" in str(exc.value)
