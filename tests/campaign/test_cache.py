"""Cache-key invalidation and disk-cache behaviour.

The contract: a cache key must change whenever *anything* that could
change the result changes — any parameter value, the seed, the cache
schema version, the code version, the task name — and must NOT change
for representation-only differences such as dict insertion order.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.campaign import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cache_key,
    code_version,
)

#: A representative fully-resolved parameter set (one per value shape).
BASE_PARAMS = {
    "approach": "local",
    "seed": 3,
    "move_at": 40.0,
    "unsolicited": True,
    "mld": {"query_interval": 125.0, "robustness": 2},
    "links": ["L4", "L6"],
}

#: A distinct same-type replacement for every base value, including one
#: per nested field — so the sweep below proves *every* field matters.
PERTURBATIONS = {
    "approach": "bidir",
    "seed": 4,
    "move_at": 41.0,
    "unsolicited": False,
    "mld": {"query_interval": 60.0, "robustness": 2},
    "links": ["L4", "L5"],
}


class TestCacheKeyInvalidation:
    def test_every_field_change_changes_the_key(self):
        base = cache_key("comparison.receiver", BASE_PARAMS)
        for name, new_value in PERTURBATIONS.items():
            changed = {**BASE_PARAMS, name: new_value}
            assert cache_key("comparison.receiver", changed) != base, name

    def test_nested_field_change_changes_the_key(self):
        base = cache_key("comparison.receiver", BASE_PARAMS)
        nested = {**BASE_PARAMS, "mld": {**BASE_PARAMS["mld"], "robustness": 3}}
        assert cache_key("comparison.receiver", nested) != base

    def test_added_and_removed_fields_change_the_key(self):
        base = cache_key("comparison.receiver", BASE_PARAMS)
        extra = {**BASE_PARAMS, "settle": 30.0}
        fewer = {k: v for k, v in BASE_PARAMS.items() if k != "links"}
        assert cache_key("comparison.receiver", extra) != base
        assert cache_key("comparison.receiver", fewer) != base

    def test_task_name_changes_the_key(self):
        assert cache_key("comparison.receiver", BASE_PARAMS) != cache_key(
            "comparison.sender", BASE_PARAMS
        )

    def test_schema_version_changes_the_key(self):
        base = cache_key("t", BASE_PARAMS)
        bumped = cache_key("t", BASE_PARAMS, schema_version=CACHE_SCHEMA_VERSION + 1)
        assert bumped != base

    def test_code_version_changes_the_key(self):
        base = cache_key("t", BASE_PARAMS)
        other = cache_key("t", BASE_PARAMS, code="f" * 64)
        assert other != base

    def test_dict_insertion_order_does_not_matter(self):
        keys = {
            cache_key("t", dict(order))
            for order in itertools.permutations(BASE_PARAMS.items())
        }
        assert len(keys) == 1

    def test_nested_dict_order_does_not_matter(self):
        a = {**BASE_PARAMS, "mld": {"query_interval": 10.0, "robustness": 2}}
        b = {**BASE_PARAMS, "mld": {"robustness": 2, "query_interval": 10.0}}
        assert cache_key("t", a) == cache_key("t", b)

    def test_type_distinctions_survive(self):
        # JSON canonicalization must not conflate 1 and "1".
        assert cache_key("t", {"x": 1}) != cache_key("t", {"x": "1"})

    def test_code_version_is_a_memoized_digest(self):
        v = code_version()
        assert len(v) == 64 and int(v, 16) >= 0
        assert code_version() is v


class TestResultCache:
    def test_round_trip_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("selftest.echo", {"seed": 1})
        stored = cache.put(key, "selftest.echo", {"seed": 1}, {"draw": 0.25}, 0.01)
        hit = cache.get(key)
        assert hit == stored
        # The on-disk form is canonical JSON; a re-put writes identical bytes.
        raw = cache.path_for(key).read_bytes()
        cache.put(key, "selftest.echo", {"seed": 1}, {"draw": 0.25}, 0.01)
        assert cache.path_for(key).read_bytes() == raw

    def test_miss_on_unknown_key(self, tmp_path):
        assert ResultCache(tmp_path).get("ab" * 32) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("t", {"seed": 0})
        cache.put(key, "t", {"seed": 0}, {"ok": True}, 0.0)
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """An entry renamed onto the wrong key must not be served."""
        cache = ResultCache(tmp_path)
        key = cache_key("t", {"seed": 0})
        other = cache_key("t", {"seed": 1})
        cache.put(key, "t", {"seed": 0}, {"ok": True}, 0.0)
        target = cache.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(cache.path_for(key).read_text())
        assert cache.get(other) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("t", {"seed": 0})
        payload = cache.put(key, "t", {"seed": 0}, {"ok": True}, 0.0)
        stale = {**payload, "version": CACHE_SCHEMA_VERSION + 1}
        cache.path_for(key).write_text(json.dumps(stale))
        assert cache.get(key) is None

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        for seed in range(3):
            key = cache_key("t", {"seed": seed})
            cache.put(key, "t", {"seed": seed}, {}, 0.0)
        assert len(cache) == 3

    def test_file_as_cache_root_is_rejected(self, tmp_path):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("")
        with pytest.raises(NotADirectoryError):
            ResultCache(bogus)
