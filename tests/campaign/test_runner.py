"""Campaign-engine determinism: sharding and caching must be invisible.

The two properties the golden tables stand on:

* the same grid run with ``jobs=1`` and ``jobs=N`` yields identical
  results in identical order (scheduling never leaks into payloads),
* a warm-cache re-run executes nothing and returns payloads
  bit-identical to the cold run's.

Both are checked property-style with hypothesis over randomized
``selftest.echo`` grids (cheap, no simulation) and once against a real
simulation grid.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.campaign import (
    CampaignCell,
    CampaignGrid,
    CampaignRunner,
    resolve_cell,
)
from repro.obs import MetricsRegistry
from repro.sim import derive_seed

echo_grids = st.builds(
    CampaignGrid,
    st.just("selftest.echo"),
    axes=st.fixed_dictionaries(
        {
            "x": st.lists(st.integers(0, 9), min_size=1, max_size=3, unique=True),
            "y": st.lists(st.text("ab", max_size=2), min_size=1, max_size=2,
                          unique=True),
        }
    ),
    base=st.fixed_dictionaries({"tag": st.sampled_from(["t0", "t1"])}),
)


def payload_bytes(result) -> bytes:
    return json.dumps(result.results(), sort_keys=True).encode()


class TestShardingDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(echo_grids, st.integers(0, 2**31 - 1))
    def test_serial_and_sharded_runs_are_identical(self, grid, master_seed):
        serial = CampaignRunner(jobs=1, master_seed=master_seed).run(grid)
        sharded = CampaignRunner(jobs=3, master_seed=master_seed).run(grid)
        assert payload_bytes(serial) == payload_bytes(sharded)
        assert [o.cell for o in serial.outcomes] == [o.cell for o in sharded.outcomes]
        assert [o.key for o in serial.outcomes] == [o.key for o in sharded.outcomes]

    def test_real_simulation_grid_is_shard_independent(self):
        grid = CampaignGrid(
            "timers.point",
            axes={"query_interval": [10.0, 25.0]},
            base={"seed": 0},
        )
        serial = CampaignRunner(jobs=1).run(grid)
        sharded = CampaignRunner(jobs=2).run(grid)
        assert payload_bytes(serial) == payload_bytes(sharded)


class TestCacheDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(echo_grids, st.integers(0, 2**31 - 1))
    def test_warm_cache_is_bit_identical_and_executes_nothing(
        self, tmp_path_factory, grid, master_seed
    ):
        cache_dir = tmp_path_factory.mktemp("campaign-cache")
        cold = CampaignRunner(
            jobs=1, cache_dir=cache_dir, master_seed=master_seed
        ).run(grid)
        warm = CampaignRunner(
            jobs=1, cache_dir=cache_dir, master_seed=master_seed
        ).run(grid)
        assert cold.executed == len(grid) and cold.cached == 0
        assert warm.executed == 0 and warm.cached == len(grid)
        assert payload_bytes(cold) == payload_bytes(warm)

    def test_cache_hits_cross_jobs_settings(self, tmp_path):
        """A cache warmed by a sharded run satisfies a serial run."""
        grid = CampaignGrid("selftest.echo", axes={"x": [1, 2, 3, 4]})
        cold = CampaignRunner(jobs=2, cache_dir=tmp_path).run(grid)
        warm = CampaignRunner(jobs=1, cache_dir=tmp_path).run(grid)
        assert warm.executed == 0
        assert payload_bytes(cold) == payload_bytes(warm)

    def test_different_master_seed_misses_the_cache(self, tmp_path):
        grid = CampaignGrid("selftest.echo", axes={"x": [1, 2]})
        CampaignRunner(jobs=1, cache_dir=tmp_path, master_seed=0).run(grid)
        rerun = CampaignRunner(jobs=1, cache_dir=tmp_path, master_seed=1).run(grid)
        assert rerun.executed == len(grid)


class TestSeedResolution:
    def test_explicit_seed_wins(self):
        cell = CampaignCell("selftest.echo", {"seed": 42, "x": 1})
        assert resolve_cell(cell, master_seed=7).params["seed"] == 42

    def test_derived_seed_matches_the_documented_scheme(self):
        cell = CampaignCell("selftest.echo", {"x": 1})
        resolved = resolve_cell(cell, master_seed=7)
        assert resolved.params["seed"] == derive_seed(
            7, 'selftest.echo:{"x":1}'
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_derived_seed_ignores_param_order(self, master_seed):
        a = CampaignCell("selftest.echo", {"x": 1, "y": "b"})
        b = CampaignCell("selftest.echo", {"y": "b", "x": 1})
        assert (
            resolve_cell(a, master_seed).params["seed"]
            == resolve_cell(b, master_seed).params["seed"]
        )

    def test_sibling_cells_get_distinct_seeds(self):
        grid = CampaignGrid("selftest.echo", axes={"x": list(range(8))})
        seeds = {resolve_cell(c, 0).params["seed"] for c in grid}
        assert len(seeds) == len(grid)


class TestProgressAndMetrics:
    def test_progress_callback_sees_every_cell(self, tmp_path):
        seen = []
        grid = CampaignGrid("selftest.echo", axes={"x": [1, 2, 3]})
        runner = CampaignRunner(
            jobs=1,
            cache_dir=tmp_path,
            progress=lambda done, total, outcome: seen.append(
                (done, total, outcome.cached)
            ),
        )
        runner.run(grid)
        assert seen == [(1, 3, False), (2, 3, False), (3, 3, False)]
        seen.clear()
        runner.run(grid)
        assert seen == [(1, 3, True), (2, 3, True), (3, 3, True)]

    def test_metrics_registry_counts_cached_vs_executed(self, tmp_path):
        registry = MetricsRegistry()
        grid = CampaignGrid("selftest.echo", axes={"x": [1, 2]})
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path, registry=registry)
        runner.run(grid)
        runner.run(grid)
        text = registry.render_prometheus()
        assert (
            'repro_campaign_cells_total{status="executed",task="selftest.echo"} 2'
            in text
            or 'repro_campaign_cells_total{task="selftest.echo",status="executed"} 2'
            in text
        )
        assert runner.stats() == {
            "campaigns": 2,
            "cells": 4,
            "executed": 2,
            "cached": 2,
            "failed": 0,
            "retries": 0,
            "pool_restarts": 0,
            "jobs": 1,
            "wall_clock": runner.stats()["wall_clock"],
        }
