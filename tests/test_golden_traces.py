"""Golden-trace regression suite.

Every Figure 2-4 scenario (the canned runs in
:mod:`repro.core.goldens`) has a committed digest of its full trace
event stream under ``tests/goldens/``, computed over the schema-v1
JSONL serialization of :mod:`repro.obs.export`.  These tests re-run
each scenario and compare digests byte-for-byte, so *any* behavioural
drift — one extra packet, one reordered timer, one changed detail
field — fails loudly.

After an intentional behaviour change, regenerate the digests with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-goldens

and commit the updated ``tests/goldens/*.json`` together with the
change that caused them.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.goldens import run_canned
from repro.obs import FORMAT_VERSION, digest_events

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: (scenario, seed) pairs with committed digests.
CASES = (("fig2", 0), ("fig3", 0), ("fig4", 0))


def golden_record(name: str, seed: int) -> dict:
    sc = run_canned(name, seed=seed)
    events = sc.net.tracer.events
    return {
        "scenario": name,
        "seed": seed,
        "schema_version": FORMAT_VERSION,
        "events": len(events),
        "digest": digest_events(events),
    }


@pytest.mark.parametrize("name,seed", CASES)
def test_golden_trace(name: str, seed: int, update_goldens: bool) -> None:
    record = golden_record(name, seed)
    path = GOLDEN_DIR / f"{name}-seed{seed}.json"
    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden {path}; run pytest with --update-goldens to create it"
    )
    golden = json.loads(path.read_text())
    assert record == golden, (
        f"{name} trace drifted from the committed golden.  If this change "
        "in behaviour is intentional, regenerate with: PYTHONPATH=src "
        "python -m pytest tests/test_golden_traces.py --update-goldens"
    )


def test_digest_catches_single_event_perturbation() -> None:
    """A one-event change anywhere in the stream must change the digest."""
    sc = run_canned("fig3", seed=0)
    events = list(sc.net.tracer.events)
    baseline = digest_events(events)

    # Perturb one event's timestamp by a femtosecond-scale amount.
    mid = len(events) // 2
    perturbed = events.copy()
    perturbed[mid] = replace(perturbed[mid], time=perturbed[mid].time + 1e-9)
    assert digest_events(perturbed) != baseline

    # Dropping a single event is also caught.
    assert digest_events(events[:-1]) != baseline

    # And the digest is a pure function of the stream.
    assert digest_events(events) == baseline


def test_golden_reruns_are_process_independent() -> None:
    """Two fresh runs of the same scenario digest identically."""
    a = golden_record("fig3", 0)
    b = golden_record("fig3", 0)
    assert a == b


@pytest.mark.parametrize("name,seed", CASES)
def test_golden_unchanged_with_compaction_forced(name: str, seed: int) -> None:
    """Heap compaction on *every* cancellation must not move a single
    event: the digests must match the committed goldens byte-for-byte.

    Compaction preserves the ``(time, seq)`` heap keys, so this holds by
    construction — and this test keeps it that way.
    """
    from repro.core import PaperScenario, ScenarioConfig
    from repro.core.goldens import CANNED_RUNS

    recipe = CANNED_RUNS[name]
    sc = PaperScenario(ScenarioConfig(seed=seed, approach=recipe.approach))
    sc.net.sim.set_compaction(0, 0.0)  # compact on every cancellation
    sc.converge()
    if recipe.move is not None:
        host, link = recipe.move
        sc.move(host, link, at=recipe.move_at)
        sc.run_until(recipe.run_until)

    path = GOLDEN_DIR / f"{name}-seed{seed}.json"
    golden = json.loads(path.read_text())
    events = sc.net.tracer.events
    assert len(events) == golden["events"]
    assert digest_events(events) == golden["digest"]
    assert sc.net.sim.compactions > 0
