"""Unit tests for multi-access links: delivery, timing, neighbor cache."""

import pytest

from repro.net import Address, ApplicationData, Host, Ipv6Packet, Network, Prefix
from repro.net.link import Link
from repro.sim import Simulator, Tracer


def build(n_hosts=3, delay=1e-3, bandwidth=1e6):
    net = Network(seed=1)
    link = net.add_link("LAN", "2001:db8:9::/64", delay=delay, bandwidth_bps=bandwidth)
    hosts = []
    for i in range(n_hosts):
        h = Host(net.sim, f"H{i}", tracer=net.tracer, rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(i + 1))
        net.register_node(h)
        hosts.append(h)
    return net, link, hosts


def packet(src, dst, size=1000):
    return Ipv6Packet(src, dst, ApplicationData(seqno=0, payload_bytes=size))


class TestDelivery:
    def test_flood_reaches_all_but_sender(self):
        net, link, hosts = build(4)
        got = []
        for h in hosts:
            h.receive = lambda p, i, name=h.name: got.append(name)  # type: ignore
        p = packet(hosts[0].primary_address(), Address("ff1e::1"))
        link.transmit(hosts[0].interfaces[0], p)
        net.sim.run()
        assert sorted(got) == ["H1", "H2", "H3"]

    def test_l2_unicast_reaches_only_target(self):
        net, link, hosts = build(3)
        got = []
        for h in hosts:
            h.receive = lambda p, i, name=h.name: got.append(name)  # type: ignore
        p = packet(hosts[0].primary_address(), hosts[2].primary_address())
        link.transmit(hosts[0].interfaces[0], p, l2_dst=hosts[2].interfaces[0])
        net.sim.run()
        assert got == ["H2"]

    def test_arrival_time_includes_tx_and_delay(self):
        net, link, hosts = build(2, delay=1e-3, bandwidth=1e6)
        times = []
        hosts[1].receive = lambda p, i: times.append(net.sim.now)  # type: ignore
        p = packet(hosts[0].primary_address(), hosts[1].primary_address(), size=1000)
        # 1040 bytes at 1 Mbit/s = 8.32 ms tx + 1 ms prop
        link.transmit(hosts[0].interfaces[0], p, l2_dst=hosts[1].interfaces[0])
        net.sim.run()
        assert times[0] == pytest.approx(0.00932, abs=1e-6)

    def test_fifo_serialization_queues_back_to_back(self):
        net, link, hosts = build(2, delay=0.0, bandwidth=1e6)
        times = []
        hosts[1].receive = lambda p, i: times.append(net.sim.now)  # type: ignore
        src = hosts[0].primary_address()
        dst = hosts[1].primary_address()
        for _ in range(2):
            link.transmit(
                hosts[0].interfaces[0], packet(src, dst, 1000),
                l2_dst=hosts[1].interfaces[0],
            )
        net.sim.run()
        # second packet waits for the first's 8.32 ms serialization
        assert times[1] - times[0] == pytest.approx(0.00832, abs=1e-6)

    def test_detached_interface_misses_in_flight_frame(self):
        """Handoff loss: frames in flight when the MN detaches are gone."""
        net, link, hosts = build(2, delay=10e-3)
        got = []
        hosts[1].receive = lambda p, i: got.append(1)  # type: ignore
        p = packet(hosts[0].primary_address(), Address("ff1e::1"))
        link.transmit(hosts[0].interfaces[0], p)
        net.sim.schedule(0.001, hosts[1].interfaces[0].detach)
        net.sim.run()
        assert got == []

    def test_send_from_detached_interface_dropped(self):
        net, link, hosts = build(2)
        hosts[0].interfaces[0].detach()
        hosts[0].interfaces[0].send(
            packet(Address("2001:db8:9::1"), Address("ff1e::1"))
        )
        net.sim.run()  # nothing scheduled, nothing crashes

    def test_transmit_after_sender_detached_accounts_drop(self):
        """A send that fires after the interface left the link (mobile
        handoff) is a loss like any other: it must be accounted as a
        ``sender-detached`` drop, not silently swallowed."""
        net, link, hosts = build(2)
        iface = hosts[0].interfaces[0]
        p = packet(Address("2001:db8:9::1"), Address("ff1e::1"))
        # The protocol stack scheduled the send, then the node moved.
        net.sim.schedule(1.0, link.transmit, iface, p)
        net.sim.schedule_at(0.5, iface.detach)
        net.sim.run()
        assert net.stats.link_drops("LAN", "sender-detached") == 1
        drops = list(net.tracer.query(category="drop", reason="sender-detached"))
        assert len(drops) == 1
        assert drops[0].detail["dst"] == "ff1e::1"
        # No frame was delivered to the remaining host.
        assert net.tracer.count(category="link") == 0


class TestNeighborCache:
    def test_resolve_attached_address(self):
        net, link, hosts = build(2)
        assert link.resolve(hosts[1].primary_address()) is hosts[1].interfaces[0]

    def test_resolve_unknown_none(self):
        net, link, hosts = build(1)
        assert link.resolve(Address("2001:db8:9::ff")) is None

    def test_detach_clears_entries(self):
        net, link, hosts = build(2)
        addr = hosts[1].primary_address()
        hosts[1].interfaces[0].detach()
        assert link.resolve(addr) is None

    def test_proxy_registration(self):
        """The home-agent intercept: HA binds the MN's address to itself."""
        net, link, hosts = build(2)
        mn_home = Address("2001:db8:9::64")
        link.register_address(hosts[0].interfaces[0], mn_home)
        assert link.resolve(mn_home) is hosts[0].interfaces[0]
        link.unregister_address(mn_home)
        assert link.resolve(mn_home) is None

    def test_register_requires_attachment(self):
        net, link, hosts = build(1)
        other = Host(net.sim, "X", rng=net.rng)
        iface = other.new_interface()
        with pytest.raises(ValueError):
            link.register_address(iface, Address("2001:db8:9::9"))


class TestAccounting:
    def test_bytes_charged_per_transmission(self):
        net, link, hosts = build(2)
        p = packet(hosts[0].primary_address(), Address("ff1e::1"), 500)
        link.transmit(hosts[0].interfaces[0], p)
        net.sim.run()
        assert net.stats.link_bytes("LAN", "mcast_data") == 540

    def test_double_attach_rejected(self):
        net, link, hosts = build(1)
        with pytest.raises(ValueError):
            link.attach(hosts[0].interfaces[0])

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "bad", Prefix("2001:db8::/64"), delay=-1.0)
        with pytest.raises(ValueError):
            Link(sim, "bad", Prefix("2001:db8::/64"), bandwidth_bps=0.0)
