"""Generator-equivalence fixture: Figure 1 via the topology generator.

Builds the paper's Figure 1 network twice — once hand-built
(:func:`repro.core.paper_topology.build_paper_network`) and once from
:func:`repro.net.topogen.figure1_graph` through the generic
:func:`build_network` / ``as_paper_network`` path — and pins that the
two constructions are *behaviourally identical*: byte-identical trace
digests, exactly equal §4.3 join/leave delays, and exactly equal span
phase breakdowns.
"""

from __future__ import annotations

import pytest

from repro.analysis.delays import (
    handovers_of,
    phase_breakdown,
    verify_span_equivalence,
)
from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.core.goldens import CANNED_RUNS
from repro.net.topogen import build_network, figure1_graph
from repro.obs import digest_events


def generated_scenario(config: ScenarioConfig) -> PaperScenario:
    """A PaperScenario whose network came from the generator API."""
    built = build_network(
        figure1_graph(),
        seed=config.seed,
        pim_config=config.pim,
        mld_config=config.mld,
        mipv6_config=config.mipv6,
        recv_mode=config.approach.recv_mode,
        send_mode=config.approach.send_mode,
    )
    return PaperScenario(config, paper=built.as_paper_network())


def run_pair(name: str, **config_kw):
    """The canned figure run, hand-built and generated, side by side."""
    recipe = CANNED_RUNS[name]
    scenarios = []
    for generated in (False, True):
        config = ScenarioConfig(seed=0, approach=recipe.approach, **config_kw)
        sc = generated_scenario(config) if generated else PaperScenario(config)
        sc.converge()
        host, link = recipe.move
        sc.move(host, link, at=recipe.move_at)
        sc.run_until(recipe.run_until)
        sc.finish()
        scenarios.append(sc)
    return scenarios


def test_figure1_graph_matches_hand_built_constants():
    graph = figure1_graph()
    assert [l.name for l in graph.links] == [f"L{i}" for i in range(1, 7)]
    assert [r.name for r in graph.routers] == ["A", "B", "C", "D", "E"]
    assert graph.ha_of("L4") == "D" and graph.ha_of("L2") == "B"
    assert [h.name for h in graph.hosts] == ["S", "R1", "R2", "R3"]
    graph.validate()


@pytest.mark.parametrize("name", ("fig2", "fig3"))
def test_trace_byte_identical(name: str):
    hand, gen = run_pair(name)
    hand_events = hand.net.tracer.events
    gen_events = gen.net.tracer.events
    assert len(hand_events) == len(gen_events)
    assert digest_events(hand_events) == digest_events(gen_events), (
        f"{name} via figure1_graph() diverged from the hand-built network"
    )


def test_join_and_leave_delays_match_exactly():
    """The §4.3 numbers (fig2: R3 to Link 6, local membership) must be
    float-identical between the two constructions."""
    hand, gen = run_pair("fig2")
    recipe = CANNED_RUNS["fig2"]
    move_at = recipe.move_at
    hand_join = hand.join_delay("R3", move_at)
    gen_join = gen.join_delay("R3", move_at)
    hand_leave = hand.leave_delay("L4", move_at)
    gen_leave = gen.leave_delay("L4", move_at)
    assert hand_join is not None and hand_leave is not None
    assert gen_join == hand_join
    assert gen_leave == hand_leave
    # and the tree the generated network converges to is the same tree
    assert gen.current_tree() == hand.current_tree()


def test_span_phase_sums_match_exactly():
    """Phase-attributed handover breakdowns agree span-for-span."""
    hand, gen = run_pair("fig3", trace_spans=True)
    recipe = CANNED_RUNS["fig3"]
    move_at = recipe.move_at
    breakdowns = []
    for sc in (hand, gen):
        verdict = verify_span_equivalence(
            sc.net.tracer, sc.spans.roots, move_at, "R3", "L4",
            group=str(sc.group),
        )
        assert verdict["equivalent"], "span tree out of sync with its own trace"
        handover = handovers_of(sc.spans.roots, "R3", since=move_at)[0]
        breakdowns.append(
            {
                "phases": phase_breakdown(handover),
                "phase_sum": verdict["phase_sum"],
                "join": verdict["span_join_delay"],
                "leave": verdict["span_leave_delay"],
            }
        )
    assert breakdowns[0] == breakdowns[1]
    assert breakdowns[0]["phase_sum"] is not None
