"""Link-level drop accounting and post-construction loss_rate mutation.

Delivery ratios must be computable from :class:`NetworkStats` alone —
every dropped frame is counted by (link, reason) without needing a
tracer.  And ``Link.loss_rate`` is now a property backed by a loss
model: mutating it after construction either works deterministically
(the RNG stream is derived from the stable link name) or raises if the
link was built without an RNG registry.
"""

import pytest

from repro.net import (
    Address,
    ApplicationData,
    BernoulliLoss,
    GilbertElliottLoss,
    Host,
    Link,
    Network,
    Prefix,
)
from repro.sim import Simulator

GROUP = Address("ff1e::1")


def lan(seed=5, loss_rate=0.0):
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64", loss_rate=loss_rate)
    a = Host(net.sim, "A", tracer=net.tracer, rng=net.rng)
    a.attach_to(link, link.prefix.address_for_host(1))
    b = Host(net.sim, "B", tracer=net.tracer, rng=net.rng)
    b.attach_to(link, link.prefix.address_for_host(2))
    for h in (a, b):
        net.register_node(h)
    b.joined_groups.add(GROUP)
    return net, link, a, b


def blast(net, sender, count=200, gap=0.01):
    for k in range(count):
        net.sim.schedule_at(
            1.0 + gap * k, sender.send_multicast, GROUP, ApplicationData(seqno=k)
        )


class TestDropAccounting:
    def test_link_loss_counted(self):
        net, link, a, b = lan(loss_rate=0.3)
        blast(net, a)
        net.run(until=10.0)
        assert link.frames_lost > 0
        assert net.stats.link_drops("LAN", "link-loss") == link.frames_lost
        assert net.stats.total_drops("link-loss") == link.frames_lost

    def test_nd_failure_counted(self):
        from repro.net import Ipv6Packet

        net, link, a, b = lan()
        ghost = link.prefix.address_for_host(99)  # nobody there
        net.sim.schedule_at(
            1.0,
            a.route_and_send,
            Ipv6Packet(a.primary_address(), ghost, ApplicationData(seqno=0)),
        )
        net.run(until=2.0)
        assert net.stats.link_drops("LAN", "nd-failure") == 1

    def test_link_down_counted(self):
        net, link, a, b = lan()
        net.sim.schedule_at(0.5, link.set_down)
        blast(net, a, count=5, gap=0.1)
        net.run(until=3.0)
        assert net.stats.link_drops("LAN", "link-down") == 5

    def test_snapshot_only_lists_nonempty(self):
        net, link, a, b = lan()
        net.add_link("QUIET", "2001:db8:2::/64")
        net.sim.schedule_at(0.5, link.set_down)
        blast(net, a, count=3, gap=0.1)
        net.run(until=3.0)
        snap = net.stats.drops_snapshot()
        assert snap == {"LAN": {"link-down": 3}}

    def test_total_drops_all_reasons(self):
        net, link, a, b = lan(loss_rate=0.5)
        blast(net, a, count=50)
        net.run(until=3.0)
        assert net.stats.total_drops() == net.stats.link_drops("LAN")

    def test_drops_appear_in_metrics(self):
        from repro.obs import MetricsRegistry

        net, link, a, b = lan()
        net.sim.schedule_at(0.5, link.set_down)
        blast(net, a, count=2, gap=0.1)
        net.run(until=3.0)
        registry = MetricsRegistry()
        net.stats.publish_to(registry)
        text = registry.render_prometheus()
        assert 'repro_link_drops{link="LAN",reason="link-down"} 2' in text


class TestLossRateMutation:
    def test_mutation_after_construction_takes_effect(self):
        net, link, a, b = lan(loss_rate=0.0)
        link.loss_rate = 0.5
        blast(net, a, count=100)
        net.run(until=5.0)
        assert link.frames_lost > 10

    def test_mutation_is_deterministic(self):
        def run(seed):
            net, link, a, b = lan(seed=seed)
            link.loss_rate = 0.4
            got = []
            b.on_app_data(lambda p, m: got.append(m.seqno))
            blast(net, a, count=100)
            net.run(until=5.0)
            return got

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_mutation_without_rng_registry_raises(self):
        sim = Simulator()
        link = Link(sim, "BARE", Prefix("2001:db8:9::/64"))
        with pytest.raises(ValueError, match="no RNG registry"):
            link.loss_rate = 0.2

    def test_construction_without_rng_registry_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="no RNG registry"):
            Link(sim, "BARE", Prefix("2001:db8:9::/64"), loss_rate=0.2)

    def test_range_still_validated(self):
        net, link, a, b = lan()
        with pytest.raises(ValueError):
            link.loss_rate = 1.0
        with pytest.raises(ValueError):
            link.loss_rate = -0.01

    def test_property_reflects_model(self):
        net, link, a, b = lan(loss_rate=0.25)
        assert link.loss_rate == 0.25
        assert isinstance(link.loss_model, BernoulliLoss)
        link.loss_rate = 0.0
        assert link.loss_model is None and link.loss_rate == 0.0

    def test_set_loss_model_gilbert(self):
        net, link, a, b = lan()
        model = GilbertElliottLoss(p_good_to_bad=0.05, p_bad_to_good=0.25)
        link.set_loss_model(model)
        assert link.loss_rate == pytest.approx(model.mean_loss)
        blast(net, a, count=200)
        net.run(until=5.0)
        assert link.frames_lost > 0
