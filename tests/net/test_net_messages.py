"""Unit tests for message base classes."""

import pytest

from repro.net import ApplicationData, ControlPayload, Message


class TestApplicationData:
    def test_size(self):
        assert ApplicationData(seqno=0, payload_bytes=512).size_bytes == 512

    def test_protocol_tag(self):
        assert ApplicationData(seqno=0).protocol == "app"

    def test_describe(self):
        d = ApplicationData(seqno=9, flow="f1")
        assert "f1" in d.describe() and "9" in d.describe()

    def test_frozen(self):
        d = ApplicationData(seqno=0)
        with pytest.raises(Exception):
            d.seqno = 1  # type: ignore

    def test_sent_at_default(self):
        assert ApplicationData(seqno=0).sent_at == 0.0


class TestControlPayload:
    def test_defaults(self):
        c = ControlPayload()
        assert c.protocol == "mipv6"
        assert c.size_bytes == 0

    def test_custom(self):
        c = ControlPayload("app", 12, "X")
        assert c.protocol == "app"
        assert c.size_bytes == 12
        assert c.describe() == "X"


class TestMessageBase:
    def test_size_abstract(self):
        with pytest.raises(NotImplementedError):
            Message().size_bytes
