"""Unit tests for interfaces: attachment, addresses, lifecycle."""

import pytest

from repro.net import Address, Host, Network


@pytest.fixture
def setup(net):
    link = net.add_link("LAN", "2001:db8:1::/64")
    host = Host(net.sim, "H", rng=net.rng)
    return net, link, host


class TestAttachment:
    def test_attach_detach_cycle(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        assert not iface.attached
        iface.attach(link)
        assert iface.attached and iface in link.interfaces
        iface.detach()
        assert not iface.attached and iface not in link.interfaces

    def test_double_attach_rejected(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        iface.attach(link)
        other = net.add_link("L2", "2001:db8:2::/64")
        with pytest.raises(ValueError):
            iface.attach(other)

    def test_detach_idempotent(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        iface.detach()  # never attached: no-op
        iface.attach(link)
        iface.detach()
        iface.detach()

    def test_reattach_after_detach(self, setup):
        """The mobile-node pattern: one interface roams between links."""
        net, link, host = setup
        other = net.add_link("L2", "2001:db8:2::/64")
        iface = host.new_interface()
        iface.attach(link)
        iface.detach()
        iface.attach(other)
        assert iface.link is other


class TestAddresses:
    def test_add_address_registers_in_cache(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        iface.attach(link)
        addr = Address("2001:db8:1::42")
        iface.add_address(addr)
        assert iface.has_address(addr)
        assert link.resolve(addr) is iface

    def test_add_address_before_attach(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        iface.add_address(Address("2001:db8:1::42"))
        iface.attach(link)
        # attach registers existing addresses
        assert link.resolve(Address("2001:db8:1::42")) is iface

    def test_add_address_idempotent(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        iface.attach(link)
        addr = Address("2001:db8:1::42")
        iface.add_address(addr)
        iface.add_address(addr)
        assert iface.addresses.count(addr) == 1

    def test_remove_address(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        iface.attach(link)
        addr = Address("2001:db8:1::42")
        iface.add_address(addr)
        iface.remove_address(addr)
        assert not iface.has_address(addr)
        assert link.resolve(addr) is None

    def test_clear_addresses(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        iface.attach(link)
        for k in (1, 2, 3):
            iface.add_address(Address(f"2001:db8:1::{k}"))
        iface.clear_addresses()
        assert iface.addresses == []

    def test_unique_names(self, setup):
        net, link, host = setup
        a, b = host.new_interface(), host.new_interface()
        assert a.name != b.name

    def test_custom_name(self, setup):
        net, link, host = setup
        iface = host.new_interface(name="eth0")
        assert iface.name == "eth0"


class TestNodeAddressHelpers:
    def test_primary_address_skips_link_local(self, setup):
        net, link, host = setup
        iface = host.new_interface()
        iface.attach(link)
        iface.add_address(Address("fe80::1"))
        iface.add_address(Address("2001:db8:1::9"))
        assert host.primary_address() == Address("2001:db8:1::9")

    def test_primary_address_raises_without_global(self, setup):
        net, link, host = setup
        with pytest.raises(ValueError):
            host.primary_address()

    def test_address_on(self, setup):
        net, link, host = setup
        host.attach_to(link, Address("2001:db8:1::9"))
        assert host.address_on(link) == Address("2001:db8:1::9")
        other = net.add_link("L2", "2001:db8:2::/64")
        assert host.address_on(other) is None

    def test_iface_on(self, setup):
        net, link, host = setup
        iface = host.attach_to(link)
        assert host.iface_on(link) is iface
