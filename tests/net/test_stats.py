"""Unit tests for traffic classification and byte accounting."""

from repro.mipv6 import BindingUpdateOption
from repro.mld import MldReport
from repro.net import (
    Address,
    ApplicationData,
    ControlPayload,
    Ipv6Packet,
    NetworkStats,
    classify_packet,
)
from repro.pimdm import PimHello

SRC = Address("2001:db8:1::10")
GROUP = Address("ff1e::1")
UNI = Address("2001:db8:2::10")


class TestClassification:
    def test_multicast_app_data(self):
        p = Ipv6Packet(SRC, GROUP, ApplicationData(seqno=0))
        assert classify_packet(p) == "mcast_data"

    def test_unicast_app_data(self):
        p = Ipv6Packet(SRC, UNI, ApplicationData(seqno=0))
        assert classify_packet(p) == "unicast_data"

    def test_mld(self):
        p = Ipv6Packet(SRC, GROUP, MldReport(GROUP))
        assert classify_packet(p) == "mld"

    def test_pim(self):
        p = Ipv6Packet(SRC, Address("ff02::d"), PimHello())
        assert classify_packet(p) == "pim"

    def test_mipv6_control(self):
        p = Ipv6Packet(SRC, UNI, ControlPayload("mipv6"))
        assert classify_packet(p) == "mipv6"

    def test_tunneled_classifies_as_inner(self):
        inner = Ipv6Packet(SRC, GROUP, ApplicationData(seqno=0))
        outer = inner.encapsulate(UNI, SRC)
        assert classify_packet(outer) == "mcast_data"


class TestAccounting:
    def test_plain_bytes(self):
        stats = NetworkStats()
        p = Ipv6Packet(SRC, GROUP, ApplicationData(seqno=0, payload_bytes=100))
        stats.account("L1", p)
        assert stats.link_bytes("L1", "mcast_data") == 140
        assert stats.link_packets("L1", "mcast_data") == 1

    def test_tunnel_overhead_split(self):
        stats = NetworkStats()
        inner = Ipv6Packet(SRC, GROUP, ApplicationData(seqno=0, payload_bytes=100))
        outer = inner.encapsulate(UNI, SRC)
        stats.account("L1", outer)
        assert stats.link_bytes("L1", "mcast_data") == 140
        assert stats.link_bytes("L1", "tunnel_overhead") == 40
        assert stats.link_bytes("L1") == 180

    def test_totals_across_links(self):
        stats = NetworkStats()
        p = Ipv6Packet(SRC, GROUP, ApplicationData(seqno=0, payload_bytes=60))
        stats.account("L1", p)
        stats.account("L2", p)
        assert stats.total_bytes("mcast_data") == 200
        assert stats.total_bytes("mcast_data", links=["L1"]) == 100

    def test_signaling_bytes(self):
        stats = NetworkStats()
        stats.account("L1", Ipv6Packet(SRC, GROUP, MldReport(GROUP)))
        stats.account("L1", Ipv6Packet(SRC, Address("ff02::d"), PimHello()))
        stats.account("L1", Ipv6Packet(SRC, UNI, ControlPayload("mipv6", 0)))
        assert stats.signaling_bytes() == (40 + 24) + (40 + 30) + 40

    def test_snapshot_is_a_copy(self):
        stats = NetworkStats()
        p = Ipv6Packet(SRC, GROUP, ApplicationData(seqno=0))
        stats.account("L1", p)
        snap = stats.snapshot()
        stats.account("L1", p)
        assert snap["L1"]["mcast_data"] == 1040
        assert stats.link_bytes("L1", "mcast_data") == 2080

    def test_unknown_link_zero(self):
        stats = NetworkStats()
        assert stats.link_bytes("nope") == 0
        assert stats.link_packets("nope") == 0

    def test_render_contains_links(self):
        stats = NetworkStats()
        stats.account("L9", Ipv6Packet(SRC, GROUP, ApplicationData(seqno=0)))
        assert "L9" in stats.render()
