"""Regression tests: unresolvable unicast frames are dropped, not flooded.

A home agent tunneling to a stale care-of address (the mobile just left
that link) must produce a clean neighbor-discovery failure.  An earlier
version flooded unresolvable unicast frames to every interface on the
link; with several routers attached (Link 3 of the paper topology) the
frames ping-ponged and multiplied exponentially.
"""

from repro.net import Address, ApplicationData, Ipv6Packet

from topo_helpers import build_line


class TestNdFailure:
    def test_unresolvable_unicast_dropped(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        topo.net.run(until=1.0)
        ghost = topo.links[2].prefix.address_for_host(200)  # nobody there
        sender.route_and_send(
            Ipv6Packet(sender.primary_address(), ghost, ApplicationData(seqno=0))
        )
        topo.net.run(until=2.0)
        assert topo.net.tracer.count("drop", reason="nd-failure") == 1

    def test_no_packet_storm_on_multirouter_link(self):
        """Unicast to a dead address on a link with several routers must
        not multiply (the old behaviour exploded combinatorially)."""
        from repro.core import build_paper_network

        paper = build_paper_network(seed=1)
        paper.net.start()
        paper.net.run(until=1.0)
        ghost = paper.net.link("L3").prefix.address_for_host(250)
        a = paper.routers["A"]
        a.route_and_send(
            Ipv6Packet(a.primary_address(), ghost, ApplicationData(seqno=0))
        )
        before = paper.net.sim.events_dispatched
        paper.net.run(until=5.0, max_events=50_000)
        dispatched = paper.net.sim.events_dispatched - before
        # a handful of hellos/queries at most — no storm
        assert dispatched < 1_000
        assert paper.net.tracer.count("drop", reason="nd-failure") == 1

    def test_multicast_still_floods(self):
        topo = build_line(1)
        sender = topo.host_on(0, 100, "S")
        listener = topo.host_on(0, 101, "L")
        listener.joined_groups.add(topo.group)
        got = []
        listener.on_app_data(lambda p, m: got.append(m.seqno))
        topo.net.run(until=1.0)
        sender.send_multicast(topo.group, ApplicationData(seqno=1))
        topo.net.run(until=2.0)
        assert got == [1]
