"""Hypothesis property suite for the topology generators.

Pins the :mod:`repro.net.topogen` contract: every generated graph is
structurally valid and connected, link metadata is consistent from
both endpoints, node/interface uids never collide, the digest is a
pure function of (model, params, seed), and the Waxman repair pass
never manufactures self-loops or parallel links.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.net.topogen import (
    TopoGraph,
    clear_graph_cache,
    fattree_graph,
    figure1_graph,
    hierarchical_graph,
    topo_graph,
    waxman_graph,
)

hier_params = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**16),
)
fattree_params = st.tuples(
    st.sampled_from([2, 4, 6]),
    st.integers(min_value=0, max_value=2**16),
)
waxman_params = st.tuples(
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**16),
)


def assert_well_formed(graph: TopoGraph) -> None:
    """The cross-model structural contract."""
    graph.validate()  # raises on duplicate names / dangling references
    assert graph.is_connected()

    # adjacency derived from shared links is symmetric: if a sees b
    # through some link, b sees a through the same link
    adj = graph.adjacency()
    for a, peers in adj.items():
        for b in peers:
            assert a in adj[b], f"asymmetric adjacency {a}<->{b}"

    # collision-free uids: router names, (link, host_id) interface
    # slots, and per-link prefixes are all globally unique
    names = [r.name for r in graph.routers]
    assert len(set(names)) == len(names)
    seen_ifaces = set()
    for router in graph.routers:
        for att in router.attachments:
            uid = (att.link, att.host_id)
            assert uid not in seen_ifaces, f"interface uid reused: {uid}"
            seen_ifaces.add(uid)
    for host in graph.hosts:
        uid = (host.home_link, host.host_id)
        assert uid not in seen_ifaces, f"host uid collides: {uid}"
        seen_ifaces.add(uid)
    prefixes = [l.prefix for l in graph.links]
    assert len(set(prefixes)) == len(prefixes)

    # symmetric/consistent link metadata: one LinkSpec per link (both
    # endpoints share it by construction) with sane physics, and every
    # link has exactly one attached home agent
    for link in graph.links:
        assert link.delay > 0
        assert link.bandwidth_bps > 0
    assert {l for l, _ in graph.home_agents} == {l.name for l in graph.links}

    # leaf links exist and are real links
    assert graph.leaf_links
    link_names = {l.name for l in graph.links}
    assert set(graph.leaf_links) <= link_names


class TestStructuralProperties:
    @settings(max_examples=25, deadline=None)
    @given(hier_params)
    def test_hier_well_formed(self, p):
        depth, fanout, seed = p
        assert_well_formed(hierarchical_graph(depth=depth, fanout=fanout, seed=seed))

    @settings(max_examples=10, deadline=None)
    @given(fattree_params)
    def test_fattree_well_formed(self, p):
        k, seed = p
        assert_well_formed(fattree_graph(k=k, seed=seed))

    @settings(max_examples=25, deadline=None)
    @given(waxman_params)
    def test_waxman_well_formed(self, p):
        n, alpha, beta, seed = p
        assert_well_formed(waxman_graph(n=n, alpha=alpha, beta=beta, seed=seed))

    def test_figure1_well_formed(self):
        graph = figure1_graph()
        assert_well_formed(graph)
        assert len(graph.routers) == 5
        assert len(graph.links) == 6
        assert {h.name for h in graph.hosts} == {"S", "R1", "R2", "R3"}


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(hier_params)
    def test_same_seed_same_digest(self, p):
        depth, fanout, seed = p
        a = hierarchical_graph(depth=depth, fanout=fanout, seed=seed)
        b = hierarchical_graph(depth=depth, fanout=fanout, seed=seed)
        assert a == b
        assert a.digest() == b.digest()

    @settings(max_examples=10, deadline=None)
    @given(waxman_params)
    def test_waxman_same_seed_same_digest(self, p):
        n, alpha, beta, seed = p
        a = waxman_graph(n=n, alpha=alpha, beta=beta, seed=seed)
        b = waxman_graph(n=n, alpha=alpha, beta=beta, seed=seed)
        assert a == b
        assert a.digest() == b.digest()

    def test_different_seeds_different_digests(self):
        # the seed reaches real data (delay jitter, Waxman coordinates),
        # so distinct seeds must yield distinct canonical digests
        for make in (
            lambda s: hierarchical_graph(depth=2, fanout=3, seed=s),
            lambda s: fattree_graph(k=4, seed=s),
            lambda s: waxman_graph(n=12, seed=s),
        ):
            digests = {make(s).digest() for s in range(10)}
            assert len(digests) == 10

    def test_digest_is_param_sensitive(self):
        base = hierarchical_graph(depth=2, fanout=3, seed=0).digest()
        assert hierarchical_graph(depth=2, fanout=4, seed=0).digest() != base
        assert hierarchical_graph(depth=3, fanout=3, seed=0).digest() != base

    def test_topo_graph_cache_returns_same_object(self):
        clear_graph_cache()
        try:
            spec = {"model": "hier", "depth": 2, "fanout": 3, "seed": 7}
            a = topo_graph(spec)
            b = topo_graph(dict(spec))  # equal spec, different dict object
            assert a is b
            clear_graph_cache()
            c = topo_graph(spec)
            assert c is not a
            assert c == a and c.digest() == a.digest()
        finally:
            clear_graph_cache()


class TestWaxmanRepair:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_sparse_waxman_repair_no_self_loops_or_parallel_links(self, n, seed):
        # alpha at the legal floor makes the raw graph nearly edgeless,
        # so connectivity comes almost entirely from the repair pass
        graph = waxman_graph(n=n, alpha=0.01 + 1e-9, beta=0.05, seed=seed)
        assert graph.is_connected()
        on_link = graph.routers_on()
        seen_pairs = set()
        for link in graph.links:
            members = on_link[link.name]
            if link.name.startswith("w"):  # p2p backbone link
                assert len(members) == 2
                a, b = members
                assert a != b, f"self-loop on {link.name}"
                pair = tuple(sorted(members))
                assert pair not in seen_pairs, f"parallel link {pair}"
                seen_pairs.add(pair)
            else:  # stub LAN
                assert len(members) == 1

    def test_single_router_waxman(self):
        graph = waxman_graph(n=1, seed=0)
        assert_well_formed(graph)
        assert len(graph.routers) == 1
