"""Unit tests for node dispatch, forwarding, and host behaviour."""

import pytest

from repro.mld import MldQuery, MldReport
from repro.net import (
    Address,
    ApplicationData,
    ControlPayload,
    Host,
    Ipv6Packet,
    Network,
    Node,
)
from repro.pimdm import MulticastRouter


def two_links_one_router(seed=1):
    net = Network(seed=seed)
    l1 = net.add_link("L1", "2001:db8:1::/64")
    l2 = net.add_link("L2", "2001:db8:2::/64")
    r = MulticastRouter(net.sim, "R", tracer=net.tracer, rng=net.rng)
    r.attach_to(l1, l1.prefix.address_for_host(1))
    r.attach_to(l2, l2.prefix.address_for_host(1))
    net.register_node(r)
    net.on_start(r.start)
    h1 = Host(net.sim, "H1", tracer=net.tracer, rng=net.rng)
    h1.attach_to(l1, l1.prefix.address_for_host(100))
    h2 = Host(net.sim, "H2", tracer=net.tracer, rng=net.rng)
    h2.attach_to(l2, l2.prefix.address_for_host(100))
    net.register_node(h1)
    net.register_node(h2)
    return net, (l1, l2), r, h1, h2


class TestDispatch:
    def test_message_handler_called_by_type(self, net):
        link = net.add_link("L", "2001:db8::/64")
        h = Host(net.sim, "H", rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(1))
        seen = []
        h.register_message_handler(MldQuery, lambda p, m, i: seen.append(m))
        p = Ipv6Packet(Address("2001:db8::2"), h.primary_address(), MldQuery())
        h.receive(p, h.interfaces[0])
        assert len(seen) == 1

    def test_handler_not_called_for_other_types(self, net):
        link = net.add_link("L", "2001:db8::/64")
        h = Host(net.sim, "H", rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(1))
        seen = []
        h.register_message_handler(MldQuery, lambda p, m, i: seen.append(m))
        p = Ipv6Packet(
            Address("2001:db8::2"), h.primary_address(),
            MldReport(Address("ff1e::1")),
        )
        h.receive(p, h.interfaces[0])
        assert seen == []

    def test_multiple_handlers_same_type(self, net):
        link = net.add_link("L", "2001:db8::/64")
        h = Host(net.sim, "H", rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(1))
        seen = []
        h.register_message_handler(MldQuery, lambda p, m, i: seen.append("a"))
        h.register_message_handler(MldQuery, lambda p, m, i: seen.append("b"))
        p = Ipv6Packet(Address("2001:db8::2"), h.primary_address(), MldQuery())
        h.receive(p, h.interfaces[0])
        assert seen == ["a", "b"]

    def test_unicast_not_mine_dropped_by_host(self, net):
        link = net.add_link("L", "2001:db8::/64")
        h = Host(net.sim, "H", tracer=net.tracer, rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(1))
        p = Ipv6Packet(
            Address("2001:db8::2"), Address("2001:db8::99"),
            ApplicationData(seqno=0),
        )
        h.receive(p, h.interfaces[0])
        assert net.tracer.count("drop", reason="not-mine") == 1

    def test_option_handler_called(self, net):
        from repro.mipv6 import HomeAddressOption

        link = net.add_link("L", "2001:db8::/64")
        h = Host(net.sim, "H", rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(1))
        seen = []
        h.register_option_handler(HomeAddressOption, lambda p, o, i: seen.append(o))
        p = Ipv6Packet(
            Address("2001:db8::2"),
            h.primary_address(),
            ControlPayload(),
            dest_options=(HomeAddressOption(Address("2001:db8::5")),),
        )
        h.receive(p, h.interfaces[0])
        assert len(seen) == 1

    def test_default_tunnel_handling_re_receives_inner(self, net):
        link = net.add_link("L", "2001:db8::/64")
        h = Host(net.sim, "H", rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(1))
        me = h.primary_address()
        inner = Ipv6Packet(Address("2001:db8::2"), me, ApplicationData(seqno=7))
        got = []
        h.on_app_data(lambda p, m: got.append(m.seqno))
        h.joined_groups.add(me)  # not used; deliver path is unicast
        seen = []
        h.register_message_handler(ApplicationData, lambda p, m, i: seen.append(m.seqno))
        outer = inner.encapsulate(Address("2001:db8::9"), me)
        h.receive(outer, h.interfaces[0])
        assert seen == [7]
        assert h.load["decapsulations"] == 1


class TestUnicastForwarding:
    def test_router_forwards_between_links(self):
        net, links, r, h1, h2 = two_links_one_router()
        net.start()
        got = []
        h2.register_message_handler(ApplicationData, lambda p, m, i: got.append(m.seqno))
        p = Ipv6Packet(h1.primary_address(), h2.primary_address(), ApplicationData(seqno=5))
        h1.route_and_send(p)
        net.run(until=1.0)
        assert got == [5]

    def test_hop_limit_decremented(self):
        net, links, r, h1, h2 = two_links_one_router()
        net.start()
        hops = []
        h2.register_message_handler(ApplicationData, lambda p, m, i: hops.append(p.hop_limit))
        p = Ipv6Packet(h1.primary_address(), h2.primary_address(), ApplicationData(seqno=0))
        h1.route_and_send(p)
        net.run(until=1.0)
        assert hops == [63]

    def test_hop_limit_exhaustion_drops(self):
        net, links, r, h1, h2 = two_links_one_router()
        net.start()
        got = []
        h2.register_message_handler(ApplicationData, lambda p, m, i: got.append(1))
        p = Ipv6Packet(
            h1.primary_address(), h2.primary_address(),
            ApplicationData(seqno=0), hop_limit=1,
        )
        h1.route_and_send(p)
        net.run(until=1.0)
        assert got == []
        assert net.tracer.count("drop", reason="hop-limit") == 1

    def test_host_uses_default_gateway(self):
        """Hosts without FIB entries hand traffic to an on-link router."""
        net, links, r, h1, h2 = two_links_one_router()
        net.start()
        assert len(h1.routing) == 0
        got = []
        h2.register_message_handler(ApplicationData, lambda p, m, i: got.append(1))
        h1.route_and_send(
            Ipv6Packet(h1.primary_address(), h2.primary_address(), ApplicationData(seqno=0))
        )
        net.run(until=1.0)
        assert got == [1]

    def test_no_gateway_drop(self, net):
        link = net.add_link("L", "2001:db8::/64")
        h = Host(net.sim, "H", tracer=net.tracer, rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(1))
        ok = h.route_and_send(
            Ipv6Packet(h.primary_address(), Address("2001:db8:ff::1"), ApplicationData(seqno=0))
        )
        assert not ok
        assert net.tracer.count("drop", reason="no-gateway") == 1

    def test_on_link_delivery_bypasses_router(self, net):
        link = net.add_link("L", "2001:db8::/64")
        a = Host(net.sim, "A", rng=net.rng)
        a.attach_to(link, link.prefix.address_for_host(1))
        b = Host(net.sim, "B", rng=net.rng)
        b.attach_to(link, link.prefix.address_for_host(2))
        got = []
        b.register_message_handler(ApplicationData, lambda p, m, i: got.append(p.hop_limit))
        a.route_and_send(Ipv6Packet(a.primary_address(), b.primary_address(), ApplicationData(seqno=0)))
        net.sim.run()
        assert got == [64]  # not decremented: no router crossed


class TestHostMulticast:
    def test_joined_group_delivers_app_data(self, net):
        link = net.add_link("L", "2001:db8::/64")
        a = Host(net.sim, "A", rng=net.rng)
        a.attach_to(link, link.prefix.address_for_host(1))
        b = Host(net.sim, "B", tracer=net.tracer, rng=net.rng)
        b.attach_to(link, link.prefix.address_for_host(2))
        g = Address("ff1e::1")
        b.joined_groups.add(g)
        got = []
        b.on_app_data(lambda p, m: got.append(m.seqno))
        a.send_multicast(g, ApplicationData(seqno=3))
        net.sim.run()
        assert got == [3]

    def test_not_joined_group_ignored(self, net):
        link = net.add_link("L", "2001:db8::/64")
        a = Host(net.sim, "A", rng=net.rng)
        a.attach_to(link, link.prefix.address_for_host(1))
        b = Host(net.sim, "B", rng=net.rng)
        b.attach_to(link, link.prefix.address_for_host(2))
        got = []
        b.on_app_data(lambda p, m: got.append(m.seqno))
        a.send_multicast(Address("ff1e::1"), ApplicationData(seqno=3))
        net.sim.run()
        assert got == []

    def test_send_multicast_detached_returns_none(self, net):
        h = Host(net.sim, "H", rng=net.rng)
        h.new_interface()
        assert h.send_multicast(Address("ff1e::1"), ApplicationData(seqno=0)) is None

    def test_send_multicast_uses_link_address(self, net):
        link = net.add_link("L", "2001:db8::/64")
        h = Host(net.sim, "H", rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(9))
        p = h.send_multicast(Address("ff1e::1"), ApplicationData(seqno=0))
        assert p.src == link.prefix.address_for_host(9)

    def test_load_counter_increments(self, net):
        link = net.add_link("L", "2001:db8::/64")
        a = Host(net.sim, "A", rng=net.rng)
        a.attach_to(link, link.prefix.address_for_host(1))
        b = Host(net.sim, "B", rng=net.rng)
        b.attach_to(link, link.prefix.address_for_host(2))
        a.send_multicast(Address("ff1e::1"), ApplicationData(seqno=0))
        net.sim.run()
        assert b.load["packets_processed"] == 1
