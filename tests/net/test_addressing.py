"""Unit + property tests for IPv6 addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    ALL_NODES,
    ALL_PIM_ROUTERS,
    ALL_ROUTERS,
    Address,
    Prefix,
    is_multicast,
    make_multicast_group,
)


class TestAddress:
    def test_from_string(self):
        assert str(Address("2001:db8::1")) == "2001:db8::1"

    def test_from_int_roundtrip(self):
        a = Address("2001:db8::42")
        assert Address(a.as_int()) == a

    def test_copy_constructor(self):
        a = Address("::1")
        assert Address(a) == a

    def test_equality_across_notations(self):
        assert Address("ff02::1") == Address("ff02:0:0:0:0:0:0:1")

    def test_equality_with_string(self):
        assert Address("ff02::1") == "ff02::1"

    def test_hashable(self):
        assert len({Address("::1"), Address("0::1")}) == 1

    def test_ordering_numeric(self):
        assert Address("2001:db8::1") < Address("2001:db8::2")

    def test_multicast_detection(self):
        assert Address("ff1e::5").is_multicast
        assert not Address("2001:db8::5").is_multicast

    def test_link_local(self):
        assert Address("fe80::1").is_link_local
        assert not Address("2001:db8::1").is_link_local

    def test_link_scope_multicast(self):
        assert ALL_NODES.is_link_scope_multicast
        assert ALL_ROUTERS.is_link_scope_multicast
        assert ALL_PIM_ROUTERS.is_link_scope_multicast
        assert not Address("ff1e::1").is_link_scope_multicast
        assert not Address("2001:db8::1").is_link_scope_multicast

    def test_packed_roundtrip(self):
        a = Address("2001:db8:1:2:3:4:5:6")
        assert Address.from_packed(a.packed()) == a

    def test_packed_length(self):
        assert len(Address("::1").packed()) == 16

    def test_from_packed_wrong_length(self):
        with pytest.raises(ValueError):
            Address.from_packed(b"\x00" * 8)

    def test_unspecified(self):
        assert Address("::").is_unspecified
        assert not Address("::1").is_unspecified

    @given(st.integers(min_value=1, max_value=2**128 - 1))
    def test_int_roundtrip_property(self, value):
        assert Address(value).as_int() == value

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_packed_roundtrip_property(self, value):
        a = Address(value)
        assert Address.from_packed(a.packed()) == a


class TestPrefix:
    def test_contains(self):
        p = Prefix("2001:db8:5::/64")
        assert p.contains(Address("2001:db8:5::99"))
        assert not p.contains(Address("2001:db8:6::99"))

    def test_address_for_host(self):
        p = Prefix("2001:db8:1::/64")
        assert str(p.address_for_host(1)) == "2001:db8:1::1"
        assert str(p.address_for_host(0x64)) == "2001:db8:1::64"

    def test_address_for_host_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Prefix("2001:db8::/64").address_for_host(0)

    def test_address_for_host_in_prefix(self):
        p = Prefix("2001:db8:2::/64")
        assert p.contains(p.address_for_host(12345))

    def test_prefix_len(self):
        assert Prefix("2001:db8::/48").prefix_len == 48

    def test_hash_eq(self):
        assert Prefix("2001:db8::/64") == Prefix("2001:db8::/64")
        assert len({Prefix("2001:db8::/64"), Prefix("2001:db8::/64")}) == 1

    @given(st.integers(min_value=1, max_value=2**16))
    def test_host_addresses_distinct(self, host_id):
        p = Prefix("2001:db8:7::/64")
        assert p.address_for_host(host_id) != p.address_for_host(host_id + 1)


class TestWellKnown:
    def test_constants(self):
        assert str(ALL_NODES) == "ff02::1"
        assert str(ALL_ROUTERS) == "ff02::2"
        assert str(ALL_PIM_ROUTERS) == "ff02::d"

    def test_is_multicast_helper(self):
        assert is_multicast("ff02::1")
        assert not is_multicast("2001::1")

    def test_make_multicast_group(self):
        g1, g2 = make_multicast_group(1), make_multicast_group(2)
        assert g1.is_multicast and g2.is_multicast and g1 != g2
        assert not g1.is_link_scope_multicast

    def test_make_multicast_group_bounds(self):
        with pytest.raises(ValueError):
            make_multicast_group(0)
        with pytest.raises(ValueError):
            make_multicast_group(2**32)
