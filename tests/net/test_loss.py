"""Failure injection: lossy links and protocol robustness.

The paper's mobile hosts live on wireless links; MLD's Robustness
Variable (repeated unsolicited Reports) and Mobile IPv6's Binding
Update retransmission exist to survive frame loss.  These tests inject
per-frame loss and verify the recovery machinery actually recovers.
"""

import pytest

from repro.mipv6 import MobileIpv6Config, MobileNode
from repro.mld import MldConfig, MldHost
from repro.net import Address, ApplicationData, Host, Network
from repro.pimdm import MulticastRouter

GROUP = Address("ff1e::1")


def lossy_lan(loss_rate, seed=5, n_hosts=1, mld_config=None):
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64", loss_rate=loss_rate)
    router = MulticastRouter(net.sim, "R", tracer=net.tracer, rng=net.rng,
                             mld_config=mld_config)
    router.attach_to(link, link.prefix.address_for_host(1))
    net.register_node(router)
    net.on_start(router.start)
    hosts = []
    for i in range(n_hosts):
        h = Host(net.sim, f"H{i}", tracer=net.tracer, rng=net.rng)
        h.attach_to(link, link.prefix.address_for_host(100 + i))
        net.register_node(h)
        hosts.append(h)
    return net, link, router, hosts


class TestLinkLoss:
    def test_zero_loss_by_default(self):
        net, link, router, hosts = lossy_lan(0.0)
        net.run(until=50.0)
        assert link.frames_lost == 0

    def test_loss_rate_validated(self):
        net = Network(seed=1)
        with pytest.raises(ValueError):
            net.add_link("bad", "2001:db8::/64", loss_rate=1.0)
        with pytest.raises(ValueError):
            net.add_link("bad2", "2001:db8::/64", loss_rate=-0.1)

    def test_loss_rate_roughly_honoured(self):
        net, link, router, hosts = lossy_lan(0.3)
        sent = 400
        for k in range(sent):
            net.sim.schedule_at(
                1.0 + 0.01 * k, hosts[0].send_multicast, GROUP,
                ApplicationData(seqno=k),
            )
        net.run(until=10.0)
        # single receiver (the router): losses binomial(400, 0.3)
        assert 70 <= link.frames_lost <= 170

    def test_loss_is_per_receiver(self):
        net, link, router, hosts = lossy_lan(0.5, n_hosts=3)
        got = {h.name: [] for h in hosts}
        for h in hosts[1:]:
            h.joined_groups.add(GROUP)
            h.on_app_data(lambda p, m, n=h.name: got[n].append(m.seqno))
        for k in range(200):
            net.sim.schedule_at(
                1.0 + 0.01 * k, hosts[0].send_multicast, GROUP,
                ApplicationData(seqno=k),
            )
        net.run(until=10.0)
        # the two listeners lose *different* frames
        assert got["H1"] != got["H2"]
        assert 40 <= len(got["H1"]) <= 160
        assert 40 <= len(got["H2"]) <= 160

    def test_deterministic_per_seed(self):
        def run(seed):
            net, link, router, hosts = lossy_lan(0.4, seed=seed)
            for k in range(100):
                net.sim.schedule_at(
                    1.0 + 0.01 * k, hosts[0].send_multicast, GROUP,
                    ApplicationData(seqno=k),
                )
            net.run(until=5.0)
            return link.frames_lost

        assert run(3) == run(3)


class TestProtocolRobustnessUnderLoss:
    def test_repeated_unsolicited_reports_survive_loss(self):
        """Robustness=3 with 40% loss: at least one Report almost surely
        arrives, so the router learns the membership."""
        cfg = MldConfig(unsolicited_report_count=3, unsolicited_report_interval=2.0)
        net, link, router, hosts = lossy_lan(0.4, seed=8, mld_config=cfg)
        mld = MldHost(hosts[0], cfg)
        net.run(until=1.0)
        mld.join(GROUP)
        net.run(until=10.0)
        assert router.mld_router.has_members(router.interfaces[0], GROUP)

    def test_periodic_queries_rebuild_lost_state(self):
        """Even if every unsolicited Report is lost, the next Query cycle
        re-elicits the membership."""
        cfg = MldConfig(
            query_interval=10.0, query_response_interval=10.0,
            startup_query_interval=2.5, unsolicited_report_count=1,
        )
        net, link, router, hosts = lossy_lan(0.6, seed=9, mld_config=cfg)
        mld = MldHost(hosts[0], cfg)
        net.run(until=1.0)
        mld.join(GROUP)
        net.run(until=80.0)
        assert router.mld_router.has_members(router.interfaces[0], GROUP)

    def test_binding_update_retransmission_recovers(self):
        """A lossy foreign link drops BUs/BAs; the MN's retransmission
        timer (1 s, up to 3 tries) still registers the binding."""
        from repro.mipv6 import HomeAgent

        net = Network(seed=17)
        home = net.add_link("home", "2001:db8:1::/64")
        foreign = net.add_link("foreign", "2001:db8:2::/64", loss_rate=0.5)
        ha = HomeAgent(net.sim, "HA", tracer=net.tracer, rng=net.rng)
        ha.attach_to(home, home.prefix.address_for_host(1))
        ha.attach_to(foreign, foreign.prefix.address_for_host(1))
        net.register_node(ha)
        net.on_start(ha.start)
        mn = MobileNode(
            net.sim, "MN", tracer=net.tracer, rng=net.rng,
            home_link=home, home_agent_address=ha.address_on(home),
            host_id=0x64,
            config=MobileIpv6Config(bu_retransmit_interval=1.0,
                                    bu_max_retransmits=8),
        )
        net.register_node(mn)
        net.run(until=1.0)
        mn.move_to(foreign)
        net.run(until=30.0)
        assert ha.binding_cache.get(mn.home_address) is not None
        # at least one retransmission actually happened under 50% loss
        # (statistically near-certain with this seed; assert weakly)
        assert net.tracer.count("mipv6", node="MN", event="bu-sent") >= 1
