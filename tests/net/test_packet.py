"""Unit + property tests for IPv6 packets and encapsulation."""

import pytest
from hypothesis import given, strategies as st

from repro.mipv6 import HomeAddressOption
from repro.net import Address, ApplicationData, IPV6_HEADER_BYTES, Ipv6Packet

SRC = Address("2001:db8:1::10")
DST = Address("ff1e::1")
HA = Address("2001:db8:1::1")
COA = Address("2001:db8:6::10")


def data_packet(payload_bytes=1000, **kw):
    return Ipv6Packet(SRC, DST, ApplicationData(seqno=0, payload_bytes=payload_bytes), **kw)


class TestBasics:
    def test_size_is_header_plus_payload(self):
        assert data_packet(500).size_bytes == IPV6_HEADER_BYTES + 500

    def test_default_hop_limit(self):
        assert data_packet().hop_limit == 64

    def test_unique_uids(self):
        assert data_packet().uid != data_packet().uid

    def test_decrement_hop_limit_copies(self):
        p = data_packet()
        q = p.with_decremented_hop_limit()
        assert q.hop_limit == p.hop_limit - 1
        assert q.uid == p.uid  # same datagram identity
        assert q.payload is p.payload

    def test_describe_mentions_endpoints(self):
        text = data_packet().describe()
        assert str(SRC) in text and str(DST) in text


class TestOptionsHeader:
    def test_no_options_no_overhead(self):
        assert data_packet().size_bytes == 1040

    def test_options_header_padded_to_8(self):
        p = Ipv6Packet(
            SRC, DST, ApplicationData(seqno=0, payload_bytes=0),
            dest_options=(HomeAddressOption(SRC),),
        )
        # 2 bytes ext header + 18 bytes option = 20 -> padded to 24
        assert p.size_bytes == IPV6_HEADER_BYTES + 24

    def test_find_option(self):
        opt = HomeAddressOption(SRC)
        p = Ipv6Packet(SRC, DST, ApplicationData(seqno=0), dest_options=(opt,))
        assert p.find_option(HomeAddressOption) is opt
        assert data_packet().find_option(HomeAddressOption) is None


class TestEncapsulation:
    def test_encapsulate_adds_header(self):
        inner = data_packet()
        outer = inner.encapsulate(COA, HA)
        assert outer.size_bytes == inner.size_bytes + IPV6_HEADER_BYTES
        assert outer.overhead_bytes == IPV6_HEADER_BYTES

    def test_decapsulate_returns_inner(self):
        inner = data_packet()
        assert inner.encapsulate(COA, HA).decapsulate() is inner

    def test_decapsulate_plain_raises(self):
        with pytest.raises(ValueError):
            data_packet().decapsulate()

    def test_is_tunneled(self):
        inner = data_packet()
        assert not inner.is_tunneled
        assert inner.encapsulate(COA, HA).is_tunneled

    def test_inner_of_plain_is_self(self):
        p = data_packet()
        assert p.inner is p
        assert p.overhead_bytes == 0

    def test_double_encapsulation(self):
        inner = data_packet()
        outer2 = inner.encapsulate(COA, HA).encapsulate(HA, COA)
        assert outer2.inner is inner
        assert outer2.overhead_bytes == 2 * IPV6_HEADER_BYTES

    def test_innermost_message(self):
        inner = data_packet()
        outer = inner.encapsulate(COA, HA)
        assert outer.innermost_message() is inner.payload

    def test_outer_addresses(self):
        outer = data_packet().encapsulate(COA, HA)
        assert outer.src == COA and outer.dst == HA

    @given(
        st.integers(min_value=0, max_value=9000),
        st.integers(min_value=1, max_value=4),
    )
    def test_nested_overhead_property(self, payload, depth):
        """k levels of encapsulation cost exactly k extra base headers."""
        p = data_packet(payload)
        base = p.size_bytes
        for _ in range(depth):
            p = p.encapsulate(COA, HA)
        assert p.size_bytes == base + depth * IPV6_HEADER_BYTES
        assert p.overhead_bytes == depth * IPV6_HEADER_BYTES
