"""Unit tests for the Network container."""

import pytest

from repro.net import Host, Network

from topo_helpers import build_line


class TestConstruction:
    def test_duplicate_link_rejected(self, net):
        net.add_link("L1", "2001:db8:1::/64")
        with pytest.raises(ValueError):
            net.add_link("L1", "2001:db8:2::/64")

    def test_duplicate_node_rejected(self, net):
        h = Host(net.sim, "H", rng=net.rng)
        net.register_node(h)
        with pytest.raises(ValueError):
            net.register_node(Host(net.sim, "H", rng=net.rng))

    def test_lookup(self, net):
        link = net.add_link("L1", "2001:db8:1::/64")
        h = net.register_node(Host(net.sim, "H", rng=net.rng))
        assert net.link("L1") is link
        assert net.node("H") is h

    def test_routers_vs_hosts(self):
        topo = build_line(2)
        topo.host_on(0, 100, "H")
        assert {r.name for r in topo.net.routers()} == {"R0", "R1"}
        assert {h.name for h in topo.net.hosts()} == {"H"}


class TestLifecycle:
    def test_start_idempotent(self):
        topo = build_line(2)
        calls = []
        topo.net.on_start(lambda: calls.append(1))
        topo.net.start()
        topo.net.start()
        assert calls == [1]

    def test_on_start_after_start_runs_immediately(self):
        topo = build_line(2)
        topo.net.start()
        calls = []
        topo.net.on_start(lambda: calls.append(1))
        assert calls == [1]

    def test_run_starts_implicitly(self):
        topo = build_line(2)
        topo.net.run(until=1.0)
        assert topo.net.now == 1.0
        # hellos went out at t=0
        assert topo.net.stats.total_bytes("pim") > 0

    def test_run_for(self):
        topo = build_line(1)
        topo.net.run(until=5.0)
        topo.net.run_for(3.0)
        assert topo.net.now == 8.0


class TestShortestPaths:
    def test_same_link_is_one(self):
        topo = build_line(2)
        assert topo.net.shortest_path_links("L0", "L0") == 1

    def test_adjacent(self):
        topo = build_line(2)
        assert topo.net.shortest_path_links("L0", "L1") == 2

    def test_line_distance(self):
        topo = build_line(3)
        assert topo.net.shortest_path_links("L0", "L3") == 4

    def test_symmetric(self):
        topo = build_line(3)
        assert topo.net.shortest_path_links("L0", "L2") == topo.net.shortest_path_links(
            "L2", "L0"
        )

    def test_disconnected_raises(self, net):
        net.add_link("LA", "2001:db8:a::/64")
        net.add_link("LB", "2001:db8:b::/64")
        with pytest.raises(ValueError):
            net.shortest_path_links("LA", "LB")

    def test_paper_topology_distances(self):
        from repro.core import build_paper_network

        paper = build_paper_network(seed=0)
        net = paper.net
        assert net.shortest_path_links("L1", "L2") == 2
        assert net.shortest_path_links("L1", "L3") == 3
        assert net.shortest_path_links("L1", "L4") == 4
        assert net.shortest_path_links("L1", "L6") == 4
        assert net.shortest_path_links("L4", "L6") == 3
