"""Unit tests for FIB computation, verified against networkx."""

import networkx as nx
import pytest

from repro.net import Address, Network, Prefix, RouteEntry, RoutingTable
from repro.pimdm import MulticastRouter

from topo_helpers import build_line


class TestRoutingTable:
    def _entry(self, prefix, metric=1):
        class FakeIface:
            link = None

        return RouteEntry(Prefix(prefix), FakeIface(), None, metric)

    def test_lookup_match(self):
        t = RoutingTable()
        e = self._entry("2001:db8:1::/64")
        t.install(e)
        assert t.lookup(Address("2001:db8:1::5")) is e

    def test_lookup_miss(self):
        t = RoutingTable()
        t.install(self._entry("2001:db8:1::/64"))
        assert t.lookup(Address("2001:db8:2::5")) is None

    def test_longest_prefix_wins(self):
        t = RoutingTable()
        short = self._entry("2001:db8::/32")
        long = self._entry("2001:db8:1::/64")
        t.install(short)
        t.install(long)
        assert t.lookup(Address("2001:db8:1::5")) is long
        assert t.lookup(Address("2001:db8:2::5")) is short

    def test_remove(self):
        t = RoutingTable()
        t.install(self._entry("2001:db8:1::/64"))
        t.remove(Prefix("2001:db8:1::/64"))
        assert t.lookup(Address("2001:db8:1::5")) is None

    def test_replace_same_prefix(self):
        t = RoutingTable()
        t.install(self._entry("2001:db8:1::/64", metric=5))
        newer = self._entry("2001:db8:1::/64", metric=1)
        t.install(newer)
        assert len(t) == 1
        assert t.lookup(Address("2001:db8:1::1")).metric == 1

    def test_connected_flag(self):
        e = self._entry("2001:db8:1::/64")
        assert e.connected


class TestFibComputation:
    def test_line_metrics(self):
        topo = build_line(3)  # L0 -R0- L1 -R1- L2 -R2- L3
        topo.net.build_routes()
        r0 = topo.routers[0]
        assert r0.routing.lookup(Address("2001:db8:1::99")).metric == 1
        assert r0.routing.lookup(Address("2001:db8:3::99")).metric == 2
        assert r0.routing.lookup(Address("2001:db8:4::99")).metric == 3

    def test_line_next_hops(self):
        topo = build_line(3)
        topo.net.build_routes()
        r0 = topo.routers[0]
        entry = r0.routing.lookup(Address("2001:db8:4::99"))
        # next hop toward L3 is R1's address on the shared link L1
        assert entry.next_hop == topo.links[1].prefix.address_for_host(2)

    def test_connected_prefixes_have_no_next_hop(self):
        topo = build_line(2)
        topo.net.build_routes()
        for router in topo.routers:
            for iface in router.interfaces:
                entry = router.routing.lookup(
                    iface.link.prefix.address_for_host(250)
                )
                assert entry.connected
                assert entry.metric == 1

    def test_rebuild_is_idempotent(self):
        topo = build_line(2)
        topo.net.build_routes()
        before = {
            (r.name, str(e.prefix)): (e.metric, str(e.next_hop))
            for r in topo.routers
            for e in r.routing.entries()
        }
        topo.net.build_routes()
        after = {
            (r.name, str(e.prefix)): (e.metric, str(e.next_hop))
            for r in topo.routers
            for e in r.routing.entries()
        }
        assert before == after

    def test_metrics_match_networkx(self):
        """Cross-check hop metrics on the paper topology against networkx."""
        from repro.core import ROUTER_LINKS, build_paper_network

        paper = build_paper_network(seed=0)
        paper.net.build_routes()

        g = nx.Graph()
        for router, links in ROUTER_LINKS.items():
            for link in links:
                g.add_edge(f"r:{router}", f"l:{link}")

        for rname, router in paper.routers.items():
            for lname in paper.net.links:
                expected = nx.shortest_path_length(g, f"r:{rname}", f"l:{lname}") // 2 + (
                    0 if f"l:{lname}" in g[f"r:{rname}"] else 0
                )
                # networkx path alternates router/link nodes; hops in links
                # = (path_len+1)//2
                path_len = nx.shortest_path_length(g, f"r:{rname}", f"l:{lname}")
                expected = (path_len + 1) // 2
                entry = router.routing.lookup(
                    paper.net.link(lname).prefix.address_for_host(200)
                )
                assert entry is not None, (rname, lname)
                assert entry.metric == expected, (rname, lname)

    def test_paper_topology_rpf_toward_link1(self):
        """All routers reach Link 1 through the expected interfaces."""
        from repro.core import build_paper_network

        paper = build_paper_network(seed=0)
        paper.net.build_routes()
        target = paper.net.link("L1").prefix.address_for_host(100)
        assert paper.routers["A"].routing.lookup(target).connected
        for name in ("B", "C"):
            entry = paper.routers[name].routing.lookup(target)
            assert entry.iface.link.name == "L2"
            assert entry.metric == 2
        for name in ("D", "E"):
            entry = paper.routers[name].routing.lookup(target)
            assert entry.iface.link.name == "L3"
            assert entry.metric == 3
