"""Unit tests for JSONL export/import and offline analysis."""

import json

import pytest

from repro.core.metrics import StatsSnapshot
from repro.obs.export import (
    FORMAT_VERSION,
    TraceArchive,
    export_run,
    import_run,
    read_events,
    summarize_mobility,
)
from repro.sim import Simulator, Tracer


def make_tracer():
    sim = Simulator()
    tracer = Tracer(sim)
    rows = [
        (1.0, "mobility", "R3", {"event": "detached", "link": "L4"}),
        (2.0, "mobility", "R3", {"event": "attached", "link": "L6"}),
        (3.5, "mcast.deliver", "R3", {"group": "ff1e::1", "latency": 0.002}),
        (4.0, "pim", "E", {"event": "graft-sent"}),
        (9.0, "mld", "C", {"event": "members-gone", "link": "L4", "group": "ff1e::1"}),
    ]
    for t, cat, node, detail in rows:
        sim.schedule_at(t, tracer.record, cat, node, **detail)
    sim.run()
    return tracer


SNAPSHOTS = [
    StatsSnapshot(time=1.0, data={"L4": {"mcast_data": 100, "mld": 10}}),
    StatsSnapshot(
        time=9.0, data={"L4": {"mcast_data": 400, "mld": 30, "tunnel_overhead": 8}}
    ),
]


class TestRoundTrip:
    def test_events_preserved_in_order(self, tmp_path):
        tracer = make_tracer()
        path = str(tmp_path / "run.jsonl")
        written = export_run(path, tracer)
        assert written == 5
        archive = import_run(path)
        assert len(archive) == 5
        assert [
            (e.time, e.category, e.node, e.detail) for e in archive.events
        ] == [(e.time, e.category, e.node, e.detail) for e in tracer.events]

    def test_header_meta_and_version(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        export_run(path, make_tracer(), meta={"scenario": "x", "seed": 3})
        first = json.loads(open(path).readline())
        assert first["type"] == "header"
        assert first["version"] == FORMAT_VERSION
        archive = import_run(path)
        assert archive.meta == {"scenario": "x", "seed": 3}

    def test_snapshots_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        export_run(path, make_tracer(), snapshots=SNAPSHOTS)
        archive = import_run(path)
        snaps = archive.snapshots
        assert [s.time for s in snaps] == [1.0, 9.0]
        assert snaps[1].delta(snaps[0]).bytes_on("L4", "mcast_data") == 300

    def test_archive_query_api_matches_tracer(self, tmp_path):
        tracer = make_tracer()
        path = str(tmp_path / "run.jsonl")
        export_run(path, tracer)
        archive = import_run(path)
        for kw in (
            {"category": "mobility"},
            {"category": "mobility", "node": "R3"},
            {"since": 2.0, "until": 4.0},
            {"category": "pim", "event": "graft-sent"},
        ):
            assert archive.count(**kw) == tracer.count(**kw)
        assert archive.first("mld").time == tracer.first("mld").time
        assert archive.last("mobility").detail == tracer.last("mobility").detail


class TestFormatEdges:
    def test_unknown_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            import_run(str(path))

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"type": "header", "version": 99}) + "\n")
        with pytest.raises(ValueError, match="unsupported trace version"):
            import_run(str(path))

    def test_seed_format_lines_without_type(self, tmp_path):
        # the pre-obs export format: bare event dicts, no type key
        path = tmp_path / "old.jsonl"
        path.write_text(
            json.dumps(
                {"time": 1.0, "category": "mld", "node": "A", "detail": {"x": 1}}
            )
            + "\n"
        )
        events = read_events(str(path))
        assert len(events) == 1
        assert events[0].category == "mld"

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        export_run(path, make_tracer())
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(import_run(path)) == 5

    def test_unsorted_events_are_ordered_on_import(self):
        from repro.sim.trace import TraceEvent

        archive = TraceArchive(
            [
                TraceEvent(5.0, "a", "n", {}),
                TraceEvent(1.0, "b", "n", {}),
                TraceEvent(3.0, "a", "n", {}),
            ]
        )
        assert [e.time for e in archive.events] == [1.0, 3.0, 5.0]


class TestSummarizeMobility:
    def test_summary_from_live_tracer(self):
        tracer = make_tracer()
        summary = summarize_mobility(
            tracer,
            move_time=1.0,
            receiver="R3",
            old_link="L4",
            snapshots=SNAPSHOTS,
            group="ff1e::1",
        )
        assert summary["join_delay"] == pytest.approx(2.5)
        assert summary["leave_delay"] == pytest.approx(8.0)
        assert summary["grafts"] == 1
        assert summary["wasted_bytes_old_link"] == 308  # 300 data + 8 overhead
        assert summary["mld_bytes"] == 20

    def test_summary_identical_offline(self, tmp_path):
        tracer = make_tracer()
        path = str(tmp_path / "run.jsonl")
        export_run(path, tracer, snapshots=SNAPSHOTS)
        archive = import_run(path)
        live = summarize_mobility(
            tracer, 1.0, "R3", "L4", SNAPSHOTS, group="ff1e::1"
        )
        offline = summarize_mobility(
            archive, 1.0, "R3", "L4", archive.snapshots, group="ff1e::1"
        )
        assert live == offline

    def test_missing_events_give_none(self):
        sim = Simulator()
        tracer = Tracer(sim)
        summary = summarize_mobility(tracer, 1.0, "R3", "L4", [])
        assert summary["join_delay"] is None
        assert summary["leave_delay"] is None
        assert "wasted_bytes_old_link" not in summary
