"""Unit tests for the indexed trace store."""

import pytest

from repro.obs.store import TraceStore
from repro.sim.trace import TraceEvent


def ev(time, category="mld", node="A", **detail):
    return TraceEvent(time=time, category=category, node=node, detail=detail)


def fill(store, rows):
    for row in rows:
        store.append(ev(*row))
    return store


DEFAULT_ROWS = [
    (1.0, "mld", "A"),
    (2.0, "pim", "A"),
    (3.0, "mld", "B"),
    (4.0, "pim", "B"),
    (5.0, "mld", "A"),
]


class TestAppend:
    def test_len_and_order(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert len(store) == 5
        assert [e.time for e in store.events] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_out_of_order_rejected(self):
        store = fill(TraceStore(), [(2.0, "mld", "A")])
        with pytest.raises(ValueError, match="out-of-order"):
            store.append(ev(1.0))

    def test_equal_times_allowed(self):
        store = fill(TraceStore(), [(1.0, "mld", "A"), (1.0, "pim", "B")])
        assert len(store) == 2

    def test_categories_and_nodes(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert store.categories() == ["mld", "pim"]
        assert store.nodes() == ["A", "B"]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_clear(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        store.clear()
        assert len(store) == 0
        assert store.count() == 0
        # appending after clear may go back in time (new run)
        store.append(ev(0.5))
        assert len(store) == 1


class TestSelect:
    def test_by_category(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert [e.time for e in store.select(category="mld")] == [1.0, 3.0, 5.0]

    def test_by_node(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert [e.time for e in store.select(node="B")] == [3.0, 4.0]

    def test_by_category_and_node(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert [e.time for e in store.select(category="mld", node="A")] == [1.0, 5.0]

    def test_time_window(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert [e.time for e in store.select(since=2.0, until=4.0)] == [2.0, 3.0, 4.0]

    def test_time_window_within_category(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert [e.time for e in store.select(category="mld", since=2.0)] == [3.0, 5.0]

    def test_reverse(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert [e.time for e in store.select(category="mld", reverse=True)] == [
            5.0,
            3.0,
            1.0,
        ]

    def test_unknown_category_empty(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert list(store.select(category="nope")) == []
        assert store.count(category="nope") == 0


class TestCount:
    def test_counts(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        assert store.count() == 5
        assert store.count(category="mld") == 3
        assert store.count(node="A") == 3
        assert store.count(category="pim", node="B") == 1
        assert store.count(since=2.0, until=4.0) == 3
        assert store.count(category="mld", since=2.0) == 2

    def test_count_matches_select(self):
        store = fill(TraceStore(), DEFAULT_ROWS)
        for kw in (
            {},
            {"category": "mld"},
            {"node": "B"},
            {"category": "pim", "node": "A"},
            {"since": 1.5},
            {"until": 3.5},
            {"category": "mld", "since": 0.0, "until": 3.0},
        ):
            assert store.count(**kw) == len(list(store.select(**kw)))


class TestRingMode:
    def test_eviction_keeps_newest(self):
        store = TraceStore(capacity=3)
        for i in range(10):
            store.append(ev(float(i), "c", "n", i=i))
        assert len(store) == 3
        assert [e.time for e in store.events] == [7.0, 8.0, 9.0]
        assert store.total_recorded == 10
        assert store.evicted == 7

    def test_indexes_respect_eviction(self):
        store = TraceStore(capacity=4)
        for i in range(12):
            store.append(ev(float(i), "even" if i % 2 == 0 else "odd", f"n{i % 3}"))
        # live window is events 8..11
        assert [e.time for e in store.select(category="even")] == [8.0, 10.0]
        assert [e.time for e in store.select(category="odd")] == [9.0, 11.0]
        assert store.count(node="n0") == len(
            [e for e in store.events if e.node == "n0"]
        )

    def test_ring_equals_tail_of_unbounded(self):
        unbounded, ring = TraceStore(), TraceStore(capacity=5)
        for i in range(37):
            for s in (unbounded, ring):
                s.append(ev(float(i), f"c{i % 4}", f"n{i % 3}"))
        assert ring.events == unbounded.events[-5:]
        for kw in ({}, {"category": "c1"}, {"node": "n2"}, {"since": 33.0}):
            tail = [e for e in unbounded.select(**kw) if e.time >= 32.0]
            assert list(ring.select(**kw)) == tail

    def test_compaction_bounds_memory(self):
        store = TraceStore(capacity=10)
        for i in range(1000):
            store.append(ev(float(i), "c", "n"))
        # internal array stays within 2x capacity after compaction
        assert len(store._events) <= 20
        assert len(store) == 10

    def test_capacity_larger_than_stream_is_lossless(self):
        unbounded, ring = TraceStore(), TraceStore(capacity=100)
        for row in DEFAULT_ROWS:
            unbounded.append(ev(*row))
            ring.append(ev(*row))
        assert ring.events == unbounded.events
