"""Causal span reconstruction: well-formedness and equivalence.

Four layers of checking for :mod:`repro.obs.spans`:

* Hypothesis properties over random synthetic event streams: every
  span tree the builder emits is *well-formed* (children nest inside
  parents, times are monotone, ids unique, everything closed after
  ``finish()``), and a live ``Tracer``-listener build is byte-identical
  to an offline replay of the same events;
* the same listener attached to a small-capacity **ring** tracer: span
  reconstruction and trace queries both stay correct across
  eviction-triggered compaction (listeners fire at record time, before
  eviction, so the span tree must not care about the ring at all);
* the paper scenario (Figure 2 receiver move): phase durations are the
  paper's handover pipeline and sum exactly to the §4.3 join delay,
  the leave-window span is the §4.3 leave delay, the export → import →
  :func:`build_spans` round trip is byte-identical, and
  ``scenario.finish()`` leaves nothing open;
* handover edge shapes: return-home (zero-length CoA phase) and a
  mid-pipeline second move (supersede).
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.obs import (
    HANDOVER_PHASES,
    MetricsRegistry,
    SpanBuilder,
    SpanRecorder,
    build_spans,
    export_run,
    import_run,
    iter_spans,
    spans_to_json,
)
from repro.obs.spans import SPAN_CATEGORIES
from repro.sim import Tracer
from repro.sim.trace import TraceEvent


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
class FakeClock:
    now = 0.0


def feed_stream(stream, capacity=None):
    """Run ``stream`` (time, category, node, detail) through a live
    tracer with an attached span listener; return (tracer, builder)."""
    clock = FakeClock()
    tracer = Tracer(clock, capacity=capacity)
    builder = SpanBuilder()
    tracer.add_listener(builder.feed, categories=SPAN_CATEGORIES)
    for time, category, node, detail in stream:
        clock.now = time
        tracer.record(category, node, **detail)
    return tracer, builder


def assert_well_formed(roots):
    """The invariants every finished span forest must satisfy."""
    seen = set()
    root_starts = [span.start for span in roots]
    assert root_starts == sorted(root_starts)
    for span in iter_spans(roots):
        assert span.end is not None, f"{span.span_id} left open"
        assert span.end >= span.start
        assert span.span_id not in seen, f"duplicate id {span.span_id}"
        seen.add(span.span_id)
        child_starts = [child.start for child in span.children]
        assert child_starts == sorted(child_starts)
        for child in span.children:
            assert child.parent_id == span.span_id
            assert child.start >= span.start, f"{child.span_id} starts early"
            assert child.end <= span.end, f"{child.span_id} outlives parent"


# ----------------------------------------------------------------------
# synthetic event streams (no simulator)
# ----------------------------------------------------------------------
G = "ff1e::1"
EVENT_MENU = [
    ("mobility", {"event": "detached", "from_link": "L4", "to_link": "L6"}),
    ("mobility", {"event": "detached", "from_link": "L6", "to_link": "L4"}),
    ("mobility", {"event": "blackout", "link": "L6", "duration": 2.0}),
    ("mobility", {"event": "attached", "link": "L6"}),
    ("mobility", {"event": "movement-detected", "link": "L6"}),
    ("mobility", {"event": "coa-configured", "coa": "2001:db8::c", "link": "L6"}),
    ("mobility", {"event": "returned-home"}),
    ("mobility", {"event": "app-join", "group": G}),
    ("mobility", {"event": "app-leave", "group": G}),
    ("mobility", {"event": "send-lost-detached"}),
    ("mipv6", {"event": "bu-sent", "seq": 1, "coa": "2001:db8::c"}),
    ("mipv6", {"event": "bu-retransmit", "attempt": 1}),
    ("mipv6", {"event": "ba-received", "status": 0, "seq": 1}),
    ("mld", {"event": "report-sent", "group": G}),
    ("mld", {"event": "members-gone", "iface": "B:L4", "link": "L4", "group": G}),
    ("pim", {"event": "graft-sent", "source": "S", "group": G, "target": "B"}),
    ("pim", {"event": "graft-acked", "source": "S", "group": G}),
    ("pim", {"event": "assert-sent", "iface": "i0", "source": "S", "group": G,
             "metric": 1}),
    ("pim", {"event": "assert-lost", "iface": "i0", "source": "S", "group": G,
             "winner": "B"}),
    ("pim", {"event": "assert-winner-stored", "iface": "i0", "winner": "B",
             "source": "S", "group": G}),
    ("pim", {"event": "assert-expired", "iface": "i0", "source": "S", "group": G}),
    ("pim", {"event": "prune-pending", "iface": "i0", "source": "S", "group": G}),
    ("pim", {"event": "join-override-received", "iface": "i0", "source": "S",
             "group": G}),
    ("pim.state", {"event": "oif-pruned", "iface": "i0", "source": "S",
                   "group": G}),
    ("mcast.deliver", {"group": G, "flow": "f", "seqno": 1}),
    ("mcast.forward", {"source": "S", "group": G, "links": ["L2"]}),  # ignored
]

stream_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),  # time delta
        st.sampled_from(["R3", "R2", "B"]),
        st.sampled_from(EVENT_MENU),
    ),
    min_size=0,
    max_size=80,
)


def materialize(deltas):
    stream, now = [], 0.0
    for delta, node, (category, detail) in deltas:
        now += delta
        stream.append((now, category, node, dict(detail)))
    return stream


class TestSyntheticProperties:
    @settings(max_examples=120, deadline=None)
    @given(stream_strategy)
    def test_every_stream_yields_well_formed_closed_forest(self, deltas):
        stream = materialize(deltas)
        _, builder = feed_stream(stream)
        roots = builder.finish()
        assert builder.open_count == 0
        assert_well_formed(roots)
        assert builder.finish() is roots  # idempotent

    @settings(max_examples=120, deadline=None)
    @given(stream_strategy)
    def test_live_and_replayed_trees_byte_identical(self, deltas):
        stream = materialize(deltas)
        tracer, builder = feed_stream(stream)
        live = builder.finish()
        replayed = build_spans(SimpleNamespace(events=list(tracer.events)))
        assert spans_to_json(replayed) == spans_to_json(live)

    @settings(max_examples=60, deadline=None)
    @given(stream_strategy)
    def test_span_ids_deterministic_across_rebuilds(self, deltas):
        stream = materialize(deltas)
        events = [
            TraceEvent(t, category, node, detail)
            for t, category, node, detail in stream
        ]
        first = build_spans(SimpleNamespace(events=events))
        second = build_spans(SimpleNamespace(events=events))
        assert spans_to_json(first) == spans_to_json(second)


# ----------------------------------------------------------------------
# ring-buffer tracer: spans and queries across eviction + compaction
# ----------------------------------------------------------------------
def handover_cycle(t0, node="R3"):
    """One scripted handover (with leave/graft/delivery) plus enough
    data-plane filler to force ring eviction between cycles."""
    yield (t0 + 0.0, "mobility", node,
           {"event": "detached", "from_link": "L4", "to_link": "L6"})
    yield (t0 + 0.1, "mobility", node, {"event": "attached", "link": "L6"})
    yield (t0 + 1.1, "mobility", node, {"event": "movement-detected", "link": "L6"})
    yield (t0 + 1.6, "mobility", node,
           {"event": "coa-configured", "coa": "2001:db8::c", "link": "L6"})
    yield (t0 + 1.6, "mipv6", node, {"event": "bu-sent", "seq": 1, "coa": "c"})
    yield (t0 + 1.7, "mipv6", node, {"event": "ba-received", "status": 0, "seq": 1})
    yield (t0 + 1.7, "mld", node, {"event": "report-sent", "group": G})
    yield (t0 + 1.8, "pim", "B",
           {"event": "graft-sent", "source": "S", "group": G, "target": "A"})
    yield (t0 + 1.9, "pim", "B", {"event": "graft-acked", "source": "S", "group": G})
    yield (t0 + 2.0, "mld", "B",
           {"event": "members-gone", "iface": "B:L4", "link": "L4", "group": G})
    yield (t0 + 2.1, "mcast.deliver", node, {"group": G, "flow": "f", "seqno": 1})
    yield (t0 + 2.2, "mobility", node,
           {"event": "detached", "from_link": "L6", "to_link": "L4"})
    yield (t0 + 2.3, "mobility", node, {"event": "attached", "link": "L4"})
    yield (t0 + 3.3, "mobility", node, {"event": "movement-detected", "link": "L4"})
    yield (t0 + 3.3, "mobility", node, {"event": "returned-home"})
    yield (t0 + 3.4, "mcast.deliver", node, {"group": G, "flow": "f", "seqno": 2})
    for k in range(10):
        yield (t0 + 3.5 + 0.01 * k, "mcast.forward", "A",
               {"source": "S", "group": G, "links": ["L2"], "uid": k})


def scripted_stream(cycles=40):
    stream = [(0.0, "mobility", "R3", {"event": "app-join", "group": G})]
    for c in range(cycles):
        stream.extend(handover_cycle(10.0 * c + 5.0))
    return stream


class TestRingBufferWithSpanListener:
    CAPACITY = 16

    def test_spans_and_queries_survive_eviction_compaction(self):
        stream = scripted_stream()
        seen = []
        clock = FakeClock()
        ring = Tracer(clock, capacity=self.CAPACITY)
        builder = SpanBuilder()
        ring.add_listener(builder.feed, categories=SPAN_CATEGORIES)
        ring.add_listener(seen.append)  # unfiltered: every event
        for time, category, node, detail in stream:
            clock.now = time
            ring.record(category, node, **detail)

        # eviction happened repeatedly and compaction actually ran
        # (the dead prefix is bounded by the live window, so it was cut)
        assert ring.store.evicted == len(stream) - self.CAPACITY
        assert ring.store.evicted > self.CAPACITY
        assert len(ring.store) == self.CAPACITY
        assert ring.store.total_recorded == len(stream)

        # listeners saw every event, in order, before any eviction
        assert [(e.time, e.category, e.node) for e in seen] == [
            (t, c, n) for t, c, n, _ in stream
        ]

        # the live window is the exact stream suffix and queries agree
        # with a linear scan over that suffix
        tail = stream[-self.CAPACITY:]
        assert [(e.time, e.category, e.node, e.detail) for e in ring.events] == [
            (t, c, n, d) for t, c, n, d in tail
        ]
        for kw in (
            {"category": "mcast.forward"},
            {"category": "mobility", "node": "R3"},
            {"node": "A"},
            {"since": tail[0][0]},
            {"category": "mcast.forward", "until": tail[-1][0]},
        ):
            expected = [
                (t, c, n)
                for t, c, n, d in tail
                if (kw.get("category") is None or c == kw["category"])
                and (kw.get("node") is None or n == kw["node"])
                and (kw.get("since") is None or t >= kw["since"])
                and (kw.get("until") is None or t <= kw["until"])
            ]
            assert [
                (e.time, e.category, e.node) for e in ring.query(**kw)
            ] == expected
            assert ring.count(**kw) == len(expected)

        # the span tree is identical to one built from the full stream:
        # ring eviction must be invisible to the listener-fed builder
        ring_roots = builder.finish()
        full_events = [TraceEvent(t, c, n, d) for t, c, n, d in stream]
        full_roots = build_spans(SimpleNamespace(events=full_events))
        assert spans_to_json(ring_roots) == spans_to_json(full_roots)
        assert_well_formed(ring_roots)

        # every scripted handover completed: 2 per cycle, all joined
        handovers = [s for s in ring_roots if s.kind == "handover"]
        assert len(handovers) == 2 * 40
        assert all(h.attrs.get("joined") for h in handovers)
        returns = [
            h for h in handovers
            if any(
                p.attrs.get("returned_home")
                for p in h.children
                if p.kind == "phase"
            )
        ]
        assert len(returns) == 40


# ----------------------------------------------------------------------
# the paper scenario: Figure 2 receiver move, spans vs §4.3 metrics
# ----------------------------------------------------------------------
MOVE_AT = 40.0


@pytest.fixture(scope="module")
def fig2_spans(tmp_path_factory):
    registry = MetricsRegistry()
    sc = PaperScenario(
        ScenarioConfig(seed=0, approach=LOCAL_MEMBERSHIP, trace_spans=False)
    )
    recorder = SpanRecorder(registry=registry, approach="local").attach(
        sc.net.tracer
    )
    sc.spans = recorder
    sc.converge()
    sc.move("R3", "L6", at=MOVE_AT)
    # run past the MLD membership timeout so the leave-window closes
    sc.run_until(MOVE_AT + 260.0 + 30.0)
    sc.finish()
    path = str(tmp_path_factory.mktemp("spans") / "fig2.jsonl")
    export_run(path, sc.net.tracer, snapshots=(), meta={"move_time": MOVE_AT})
    return sc, recorder, registry, path


def the_handover(roots):
    spans = [
        s
        for s in roots
        if s.kind == "handover" and s.node == "R3" and s.start >= MOVE_AT
    ]
    assert len(spans) == 1
    return spans[0]


class TestScenarioSpans:
    def test_everything_closed_by_scenario_finish(self, fig2_spans):
        _, recorder, _, _ = fig2_spans
        assert recorder.builder.open_count == 0
        assert all(s.end is not None for s in iter_spans(recorder.roots))
        assert_well_formed(recorder.roots)

    def test_pipeline_phases_sum_to_join_delay(self, fig2_spans):
        sc, recorder, _, _ = fig2_spans
        handover = the_handover(recorder.roots)
        phases = [c for c in handover.children if c.kind == "phase"]
        assert [p.name for p in phases] == list(HANDOVER_PHASES)
        # contiguous: each phase starts where the previous one ends
        assert phases[0].start == handover.start
        for prev, cur in zip(phases, phases[1:]):
            assert cur.start == prev.end
        # the paper's fixed pipeline delays (§4.1 / EXP-F2)
        assert phases[0].duration == pytest.approx(0.1)
        assert phases[1].duration == pytest.approx(1.0)
        assert phases[2].duration == pytest.approx(0.5)
        # delivery arrived in the rejoin phase and the four durations
        # sum exactly to the app-level join delay
        assert handover.attrs["delivered_in"] == "rejoin"
        join = sc.join_delay("R3", MOVE_AT)
        assert sum(p.duration for p in phases) == pytest.approx(join, abs=1e-9)
        assert handover.attrs["first_delivery"] - handover.start == pytest.approx(
            join, abs=1e-9
        )
        assert handover.attrs["joined"] is True

    def test_leave_window_is_the_leave_delay(self, fig2_spans):
        sc, recorder, _, _ = fig2_spans
        handover = the_handover(recorder.roots)
        leaves = [
            s
            for s in recorder.roots
            if s.kind == "leave-window"
            and s.attrs.get("handover") == handover.span_id
        ]
        assert len(leaves) == 1
        leave = leaves[0]
        assert leave.attrs["left"] is True
        assert leave.attrs["link"] == "L4"
        assert leave.duration == pytest.approx(
            sc.leave_delay("L4", MOVE_AT), abs=1e-9
        )

    def test_binding_update_child_acked(self, fig2_spans):
        _, recorder, _, _ = fig2_spans
        handover = the_handover(recorder.roots)
        updates = [c for c in handover.children if c.kind == "binding-update"]
        assert len(updates) == 1
        assert updates[0].attrs.get("acked") is True

    def test_live_equals_offline_replay_of_export(self, fig2_spans):
        _, recorder, _, path = fig2_spans
        live_json = spans_to_json(recorder.roots)
        # replay straight off the live tracer and off the JSONL archive
        archive = import_run(path)
        assert spans_to_json(build_spans(archive)) == live_json

    def test_durations_flow_into_histogram(self, fig2_spans):
        _, recorder, registry, _ = fig2_spans
        family = registry.get("repro_span_duration_seconds")
        child = family.labels(kind="phase", phase="movement-detection",
                              approach="local")
        assert child.count >= 1
        assert child.sum == pytest.approx(1.0)
        total = sum(h.count for h in family.samples().values())
        assert total == sum(1 for _ in iter_spans(recorder.roots))


# ----------------------------------------------------------------------
# handover edge shapes
# ----------------------------------------------------------------------
class TestHandoverEdges:
    def run_moves(self, moves, until=120.0):
        sc = PaperScenario(
            ScenarioConfig(seed=0, approach=LOCAL_MEMBERSHIP, trace_spans=True)
        )
        sc.converge()
        for node, link, at in moves:
            sc.move(node, link, at=at)
        sc.run_until(until)
        sc.finish()
        return sc

    def test_return_home_closes_coa_phase_instantly(self):
        sc = self.run_moves([("R3", "L6", 40.0), ("R3", "L4", 70.0)])
        roots = sc.spans.roots
        assert_well_formed(roots)
        homecoming = [
            s
            for s in roots
            if s.kind == "handover" and s.node == "R3" and s.start >= 70.0
        ]
        assert len(homecoming) == 1
        phases = {c.name: c for c in homecoming[0].children if c.kind == "phase"}
        coa = phases["coa-configuration"]
        assert coa.attrs.get("returned_home") is True
        assert coa.duration == 0.0
        assert homecoming[0].attrs.get("joined") is True

    def test_second_move_supersedes_open_handover(self):
        # the second detach lands mid-pipeline (0.8 s < the 1.6 s join)
        sc = self.run_moves([("R3", "L6", 40.0), ("R3", "L4", 40.8)])
        roots = sc.spans.roots
        assert_well_formed(roots)
        handovers = [
            s
            for s in roots
            if s.kind == "handover" and s.node == "R3" and s.start >= 40.0
        ]
        assert len(handovers) == 2
        first, second = handovers
        assert first.attrs.get("closed_by") == "superseded"
        assert first.attrs.get("joined") is False
        assert first.end == pytest.approx(second.start)
        assert second.attrs.get("joined") is True
