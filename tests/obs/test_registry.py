"""Unit tests for the metrics registry and the live trace collector."""

import pytest

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    TraceCollector,
)
from repro.sim import Simulator, Tracer


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.labels().value == 3.5

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_children_independent(self):
        c = MetricsRegistry().counter("x", label_names=("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="a").inc()
        c.labels(kind="b").inc()
        assert c.labels(kind="a").value == 2
        assert c.labels(kind="b").value == 1

    def test_wrong_labels_rejected(self):
        c = MetricsRegistry().counter("x", label_names=("kind",))
        with pytest.raises(ValueError):
            c.labels(other="a")
        with pytest.raises(ValueError):
            c.inc()  # labelled family has no solo child


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("pending")
        g.set(10)
        g.inc()
        g.dec(3)
        assert g.labels().value == 8


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(boundaries=(1.0, 10.0))
        for v in (0.5, 0.9, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(56.4)
        assert h.cumulative() == [(1.0, 2), (10.0, 3), (float("inf"), 4)]

    def test_mean_and_boundary_quantile(self):
        h = Histogram(boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(1.65)
        # boundary mode: the containing bucket's upper edge
        assert h.quantile(0.5, interpolated=False) == 2.0
        assert h.quantile(1.0, interpolated=False) == 4.0

    def test_interpolated_quantile(self):
        h = Histogram(boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        # rank 2 of 4 is halfway through the (1, 2] bucket (2 entries)
        assert h.quantile(0.5) == pytest.approx(1.5)
        # rank 1 of 4 is the whole way through the [0, 1] bucket
        assert h.quantile(0.25) == pytest.approx(1.0)
        # rank 4 of 4 is the whole way through the (2, 4] bucket
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_q0_returns_observed_minimum_bucket(self):
        h = Histogram(boundaries=(1.0, 10.0, 100.0))
        h.observe(50.0)
        # the minimum observation lives in (10, 100], not the first
        # configured bucket
        assert h.quantile(0.0) == 10.0
        assert h.quantile(0.0, interpolated=False) == 100.0

    def test_overflow_bucket_clamps_when_interpolating(self):
        h = Histogram(boundaries=(1.0,))
        h.observe(5.0)
        assert h.quantile(0.5) == 1.0  # top finite boundary
        assert h.quantile(0.5, interpolated=False) == float("inf")
        assert h.quantile(0.0) == 1.0

    def test_empty_quantile_none(self):
        assert Histogram(boundaries=(1.0,)).quantile(0.5) is None

    def test_out_of_range_quantile_rejected(self):
        h = Histogram(boundaries=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("x", label_names=("k",))
        b = reg.counter("x", label_names=("k",))
        assert a is b

    def test_conflicting_registration_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.counter("x", label_names=("k",))

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c", "help text", ("k",)).labels(k="a").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"]["samples"]["k=a"] == 2
        assert snap["h"]["samples"][""]["count"] == 1
        assert snap["h"]["samples"][""]["buckets"]["+Inf"] == 1

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("repro_events_total", "All events", ("category",)).labels(
            category="pim"
        ).inc(3)
        reg.gauge("repro_pending").set(7)
        reg.histogram("repro_lat", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.render_prometheus()
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{category="pim"} 3' in text
        assert "repro_pending 7" in text
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text


class TestTraceCollector:
    def make(self):
        sim = Simulator()
        tracer = Tracer(sim)
        reg = MetricsRegistry()
        TraceCollector(reg).attach(tracer)
        return sim, tracer, reg

    def test_category_counts(self):
        _, tracer, reg = self.make()
        tracer.record("pim", "A", event="prune-sent")
        tracer.record("pim", "B", event="prune-sent")
        tracer.record("mld", "A", event="report-sent")
        events = reg.get("repro_trace_events_total")
        assert events.labels(category="pim").value == 2
        assert events.labels(category="mld").value == 1
        proto = reg.get("repro_protocol_events_total")
        assert proto.labels(category="pim", event="prune-sent").value == 2

    def test_delivery_latency_histogram(self):
        _, tracer, reg = self.make()
        tracer.record("mcast.deliver", "R3", group="ff1e::1", latency=0.002)
        tracer.record("mcast.deliver", "R3", group="ff1e::1", latency=0.004)
        hist = reg.get("repro_delivery_latency_seconds").labels()
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.006)

    def test_event_without_kind_only_counts_category(self):
        _, tracer, reg = self.make()
        tracer.record("mcast.forward", "A", links=["L1"])
        assert reg.get("repro_trace_events_total").labels(
            category="mcast.forward"
        ).value == 1
        assert reg.get("repro_protocol_events_total").samples() == {}


class TestNetworkPublish:
    def test_network_stats_gauges(self):
        from repro.net.stats import NetworkStats
        from repro.net.packet import Ipv6Packet
        from repro.net.addressing import Address
        from repro.net.messages import ApplicationData

        stats = NetworkStats()
        packet = Ipv6Packet(
            Address("2001:db8:1::10"),
            Address("ff1e::1"),
            ApplicationData(seqno=0, payload_bytes=1000),
        )
        stats.account("L1", packet)
        reg = MetricsRegistry()
        stats.publish_to(reg)
        gauge = reg.get("repro_link_bytes")
        assert gauge.labels(link="L1", category="mcast_data").value > 0
        packets = reg.get("repro_link_packets")
        assert packets.labels(link="L1", category="mcast_data").value == 1
        # republish overwrites, not accumulates
        stats.publish_to(reg)
        assert packets.labels(link="L1", category="mcast_data").value == 1
