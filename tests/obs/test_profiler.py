"""Unit tests for the kernel profiler."""

from repro.obs.profiler import KernelProfiler, profiled
from repro.sim import Simulator


def busy():
    sum(range(200))


class TestAccounting:
    def test_aggregates_per_label(self):
        prof = KernelProfiler()
        prof.account("a", 0.1)
        prof.account("a", 0.3)
        prof.account("b", 0.2)
        assert prof.total_events == 3
        assert abs(prof.total_time - 0.6) < 1e-12
        (top,) = prof.top(1)
        assert top.label == "a"
        assert top.count == 2
        assert top.mean_time == 0.2

    def test_reset(self):
        prof = KernelProfiler()
        prof.account("a", 0.1)
        prof.reset()
        assert prof.total_events == 0
        assert prof.entries() == []


class TestKernelIntegration:
    def test_profiles_dispatched_events(self):
        sim = Simulator()
        prof = KernelProfiler().install(sim)
        for i in range(5):
            sim.schedule(float(i), busy, label="busy.tick")
        sim.schedule(10.0, busy)  # unlabeled: falls back to __qualname__
        sim.run()
        labels = {entry.label for entry in prof.entries()}
        assert "busy.tick" in labels
        assert "busy" in labels  # qualname fallback
        by_label = {entry.label: entry for entry in prof.entries()}
        assert by_label["busy.tick"].count == 5
        assert by_label["busy.tick"].total_time >= 0.0

    def test_step_also_profiles(self):
        sim = Simulator()
        prof = KernelProfiler().install(sim)
        sim.schedule(1.0, busy, label="x")
        assert sim.step()
        assert prof.total_events == 1

    def test_uninstall_stops_accounting(self):
        sim = Simulator()
        prof = KernelProfiler().install(sim)
        sim.schedule(1.0, busy, label="x")
        sim.run()
        prof.uninstall(sim)
        sim.schedule(2.0, busy, label="y")
        sim.run()
        assert {entry.label for entry in prof.entries()} == {"x"}

    def test_no_profiler_by_default(self):
        sim = Simulator()
        assert sim.profiler is None
        sim.schedule(1.0, busy)
        sim.run()  # must not raise

    def test_profiled_contextmanager(self):
        sim = Simulator()
        sim.schedule(1.0, busy, label="inside")
        with profiled(sim) as prof:
            sim.run()
        assert sim.profiler is None
        assert prof.total_events == 1
        sim.schedule(2.0, busy, label="outside")
        sim.run()
        assert {entry.label for entry in prof.entries()} == {"inside"}


class TestReport:
    def test_report_contains_hotspots(self):
        prof = KernelProfiler()
        for i in range(12):
            prof.account(f"label{i}", 0.001 * (i + 1))
        text = prof.report(top_n=3)
        assert "kernel profile" in text
        assert "label11" in text  # most expensive first
        assert "label0" not in text  # truncated
        assert "and 9 more labels" in text

    def test_report_empty_profile(self):
        text = KernelProfiler().report()
        assert "0 events" in text
