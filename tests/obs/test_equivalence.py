"""Equivalence of indexed / ring-buffer tracers with the seed behavior.

The seed's ``Tracer`` answered every query by a linear scan over a flat
event list.  The indexed :class:`~repro.obs.store.TraceStore` (and its
bounded ring mode) must be *observably identical*:

* a Hypothesis property drives random event streams and a query grid
  through a re-implementation of the seed's linear scan, the indexed
  tracer, and a ring tracer with capacity >= stream length;
* a paper scenario (the Figure 2 receiver move) is run with the
  default tracer and with a ring tracer, and every §4.3 metric must
  agree;
* a JSONL export -> import round trip must preserve event ordering and
  all ``ScenarioMetrics``-level outputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.obs import export_run, import_run, summarize_mobility
from repro.sim import Tracer
from repro.sim.trace import TraceEvent


# ----------------------------------------------------------------------
# the seed's list-backed query semantics, verbatim
# ----------------------------------------------------------------------
class LinearTrace:
    """Reference: the seed Tracer's flat-list linear-scan queries."""

    def __init__(self):
        self.events = []

    def query(self, category=None, node=None, since=None, until=None, **criteria):
        for ev in self.events:
            if category is not None and ev.category != category:
                continue
            if node is not None and ev.node != node:
                continue
            if since is not None and ev.time < since:
                continue
            if until is not None and ev.time > until:
                continue
            if criteria and not ev.matches(**criteria):
                continue
            yield ev

    def first(self, category=None, **kw):
        return next(self.query(category, **kw), None)

    def last(self, category=None, **kw):
        result = None
        for ev in self.query(category, **kw):
            result = ev
        return result

    def count(self, category=None, **kw):
        return sum(1 for _ in self.query(category, **kw))


class FakeClock:
    now = 0.0


def make_tracers(stream, capacity):
    linear = LinearTrace()
    clock_a, clock_b = FakeClock(), FakeClock()
    indexed = Tracer(clock_a)
    ring = Tracer(clock_b, capacity=capacity)
    for time, category, node, detail in stream:
        linear.events.append(TraceEvent(time, category, node, dict(detail)))
        clock_a.now = clock_b.now = time
        indexed.record(category, node, **detail)
        ring.record(category, node, **detail)
    return linear, indexed, ring


events_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),  # time delta
        st.sampled_from(["mld", "pim", "mobility"]),
        st.sampled_from(["A", "B", "C"]),
        st.sampled_from([{}, {"event": "x"}, {"event": "y", "link": "L4"}]),
    ),
    min_size=0,
    max_size=60,
)

QUERY_GRID = [
    {},
    {"category": "mld"},
    {"category": "pim"},
    {"node": "A"},
    {"category": "mld", "node": "B"},
    {"event": "x"},
    {"category": "pim", "event": "y"},
]


def as_tuples(events):
    return [(e.time, e.category, e.node, e.detail) for e in events]


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(events_strategy)
    def test_indexed_and_ring_match_linear_scan(self, deltas):
        stream = []
        now = 0.0
        for delta, category, node, detail in deltas:
            now += delta
            stream.append((now, category, node, detail))
        linear, indexed, ring = make_tracers(stream, capacity=len(stream) or 1)

        times = [t for t, _, _, _ in stream]
        midpoints = [None]
        if times:
            midpoints += [times[len(times) // 2], times[0], times[-1] + 1.0]
        for base in QUERY_GRID:
            for since in midpoints:
                for until in midpoints:
                    kw = dict(base)
                    if since is not None:
                        kw["since"] = since
                    if until is not None:
                        kw["until"] = until
                    expected = list(linear.query(**kw))
                    assert as_tuples(indexed.query(**kw)) == as_tuples(expected)
                    assert as_tuples(ring.query(**kw)) == as_tuples(expected)
                    assert indexed.count(**kw) == len(expected)
                    assert ring.count(**kw) == len(expected)
                    assert indexed.first(**kw) == linear.first(**kw)
                    assert ring.first(**kw) == linear.first(**kw)
                    assert indexed.last(**kw) == linear.last(**kw)
                    assert ring.last(**kw) == linear.last(**kw)

    @settings(max_examples=30, deadline=None)
    @given(events_strategy, st.integers(min_value=1, max_value=10))
    def test_small_ring_is_exact_suffix(self, deltas, capacity):
        stream = []
        now = 0.0
        for delta, category, node, detail in deltas:
            now += delta
            stream.append((now, category, node, detail))
        linear, _, ring = make_tracers(stream, capacity=capacity)
        assert as_tuples(ring.events) == as_tuples(linear.events[-capacity:])


# ----------------------------------------------------------------------
# paper scenario: every metric identical under the ring tracer
# ----------------------------------------------------------------------
def run_fig2(capacity=None, until=90.0):
    sc = PaperScenario(ScenarioConfig(seed=0, approach=LOCAL_MEMBERSHIP))
    if capacity is not None:
        sc.net.tracer.set_capacity(capacity)
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(until)
    return sc


def scenario_metric_values(sc):
    return {
        "join_delay": sc.join_delay("R3", 40.0),
        "asserts": sc.metrics.assert_count(),
        "grafts": sc.metrics.graft_count(),
        "prunes": sc.metrics.prune_count(),
        "entries": sc.metrics.entries_created(),
        "flood_extent": sc.metrics.flood_extent(
            sc.paper.sender.home_address, sc.group
        ),
        "move_start": sc.metrics.move_start_time("R3"),
        "attach": sc.metrics.attach_time("R3", "L6"),
        "coa": sc.metrics.coa_ready_time("R3"),
        "category_counts": {
            c: sc.net.tracer.count(c) for c in sc.net.tracer.store.categories()
        },
    }


class TestPaperScenarioEquivalence:
    def test_ring_tracer_reproduces_all_metrics(self):
        baseline = run_fig2()
        ringed = run_fig2(capacity=200_000)  # larger than the event stream
        assert scenario_metric_values(ringed) == scenario_metric_values(baseline)

    def test_seed_linear_scan_agrees_with_indexed_queries(self):
        sc = run_fig2()
        linear = LinearTrace()
        linear.events = list(sc.net.tracer.events)
        for kw in (
            {"category": "pim", "event": "prune-sent"},
            {"category": "mld", "since": 40.0},
            {"category": "mcast.deliver", "node": "R3", "since": 40.0},
            {"category": "mobility", "node": "R3"},
            {"since": 40.0, "until": 60.0},
        ):
            assert as_tuples(sc.net.tracer.query(**kw)) == as_tuples(
                linear.query(**kw)
            )
            assert sc.net.tracer.count(**kw) == linear.count(**kw)


# ----------------------------------------------------------------------
# JSONL round trip on the full Figure 2 run
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig2_run(tmp_path_factory):
    sc = PaperScenario(ScenarioConfig(seed=0, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    before = sc.metrics.snapshot()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(40.0 + 260.0 + 30.0)
    snapshots = [before, sc.metrics.snapshot()]
    path = str(tmp_path_factory.mktemp("trace") / "fig2.jsonl")
    export_run(
        path,
        sc.net.tracer,
        snapshots=snapshots,
        meta={"move_time": 40.0, "receiver": "R3", "old_link": "L4"},
    )
    return sc, snapshots, path


class TestJsonlRoundTrip:
    def test_event_ordering_preserved(self, fig2_run):
        sc, _, path = fig2_run
        archive = import_run(path)
        assert len(archive.events) == len(sc.net.tracer.events)
        assert [(e.time, e.category, e.node) for e in archive.events] == [
            (e.time, e.category, e.node) for e in sc.net.tracer.events
        ]

    def test_scenario_metrics_reproduced_offline(self, fig2_run):
        sc, snapshots, path = fig2_run
        archive = import_run(path)

        live = summarize_mobility(
            sc.net.tracer, 40.0, "R3", "L4", snapshots, group=str(sc.group)
        )
        offline = summarize_mobility(
            archive, 40.0, "R3", "L4", archive.snapshots, group=str(sc.group)
        )
        assert live == offline
        # the summary's delays are the ScenarioMetrics/App-level numbers
        assert live["join_delay"] == pytest.approx(sc.join_delay("R3", 40.0))
        assert live["leave_delay"] == pytest.approx(sc.leave_delay("L4", 40.0))

    def test_metric_queries_identical_offline(self, fig2_run):
        sc, _, path = fig2_run
        archive = import_run(path)
        metrics = sc.metrics
        assert archive.count("pim", event="prune-sent") == metrics.prune_count()
        assert archive.count("pim", event="graft-sent") == metrics.graft_count()
        assert archive.count("pim", event="assert-sent") == metrics.assert_count()
        assert (
            archive.count("pim.state", event="entry-created")
            == metrics.entries_created()
        )
        links = set()
        for ev in archive.query(
            "mcast.forward",
            source=str(sc.paper.sender.home_address),
            group=str(sc.group),
        ):
            links.update(ev.detail.get("links", []))
        assert sorted(links) == metrics.flood_extent(
            sc.paper.sender.home_address, sc.group
        )
