"""Property-based tests (hypothesis) on core invariants.

Covers the data structures everything else stands on: the event
kernel's ordering guarantees, timer algebra, addressing, wire formats,
and the MLD timer relationships from the paper.
"""

from hypothesis import given, settings, strategies as st

from repro.mld import MldConfig
from repro.net import Address, ApplicationData, Ipv6Packet, Prefix
from repro.net.stats import NetworkStats, classify_packet
from repro.sim import Simulator, Timer

# ----------------------------------------------------------------------
# kernel ordering
# ----------------------------------------------------------------------
delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=60
)


class TestKernelProperties:
    @given(delays)
    def test_dispatch_order_is_sorted_by_time(self, ds):
        sim = Simulator()
        fired = []
        for d in ds:
            sim.schedule(d, lambda t=d: fired.append(t))
        sim.run()
        assert fired == sorted(fired, key=lambda t: t)
        assert len(fired) == len(ds)

    @given(delays)
    def test_equal_times_preserve_fifo(self, ds):
        sim = Simulator()
        fired = []
        for i, d in enumerate(ds):
            sim.schedule(round(d, 0), lambda i=i: fired.append(i))
        sim.run()
        # stable: among equal times, submission order is preserved
        times = [round(d, 0) for d in ds]
        expected = [i for _, i in sorted(zip(times, range(len(ds))), key=lambda p: (p[0], p[1]))]
        assert fired == expected

    @given(delays, st.sets(st.integers(min_value=0, max_value=59)))
    def test_cancellation_removes_exactly_those(self, ds, to_cancel):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(ds)
        ]
        for idx in to_cancel:
            if idx < len(events):
                events[idx].cancel()
        sim.run()
        cancelled = {i for i in to_cancel if i < len(ds)}
        assert set(fired) == set(range(len(ds))) - cancelled

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=20))
    def test_clock_never_goes_backward(self, ds):
        sim = Simulator()
        observed = []
        for d in ds:
            sim.schedule(d, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


class TestTimerProperties:
    @given(
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        st.lists(st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
                 max_size=8),
    )
    def test_restarts_fire_exactly_once_at_last_deadline(self, first, restarts):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(first)
        t = 0.0
        deadline = first
        for r in restarts:
            # restart strictly before the pending deadline
            step = min(r, deadline - t) * 0.5
            t += step
            sim.run(until=t)
            timer.restart(r)
            deadline = t + r
        sim.run()
        assert len(fired) == 1
        assert abs(fired[0] - deadline) < 1e-9


# ----------------------------------------------------------------------
# addressing / prefixes
# ----------------------------------------------------------------------
host_ids = st.integers(min_value=1, max_value=2**60)


class TestAddressingProperties:
    @given(host_ids, host_ids)
    def test_prefix_host_addresses_injective(self, a, b):
        p = Prefix("2001:db8:77::/64")
        if a != b:
            assert p.address_for_host(a) != p.address_for_host(b)
        else:
            assert p.address_for_host(a) == p.address_for_host(b)

    @given(host_ids)
    def test_host_address_stays_in_prefix(self, h):
        p = Prefix("2001:db8:77::/64")
        assert p.contains(p.address_for_host(h))

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_ordering_matches_integers(self, v):
        if v + 1 < 2**128:
            assert Address(v) < Address(v + 1)


# ----------------------------------------------------------------------
# accounting invariants
# ----------------------------------------------------------------------
payloads = st.integers(min_value=0, max_value=9000)


class TestAccountingProperties:
    @given(st.lists(payloads, min_size=1, max_size=30), st.integers(0, 3))
    def test_total_bytes_equals_sum_of_packets(self, sizes, depth):
        stats = NetworkStats()
        total = 0
        for size in sizes:
            pkt = Ipv6Packet(
                Address("2001:db8:1::1"), Address("ff1e::1"),
                ApplicationData(seqno=0, payload_bytes=size),
            )
            for _ in range(depth):
                pkt = pkt.encapsulate(Address("2001:db8:2::1"),
                                      Address("2001:db8:3::1"))
            stats.account("L", pkt)
            total += pkt.size_bytes
        assert stats.link_bytes("L") == total
        # overhead channel carries exactly depth*40 per packet
        assert stats.link_bytes("L", "tunnel_overhead") == 40 * depth * len(sizes)

    @given(payloads, st.integers(0, 4))
    def test_classification_invariant_under_tunneling(self, size, depth):
        pkt = Ipv6Packet(
            Address("2001:db8:1::1"), Address("ff1e::1"),
            ApplicationData(seqno=0, payload_bytes=size),
        )
        base = classify_packet(pkt)
        for _ in range(depth):
            pkt = pkt.encapsulate(Address("2001:db8:2::1"), Address("2001:db8:3::1"))
        assert classify_packet(pkt) == base


# ----------------------------------------------------------------------
# MLD timer relationships (paper §3.2 / §4.4)
# ----------------------------------------------------------------------
class TestMldConfigProperties:
    @given(
        st.floats(min_value=10.0, max_value=500.0, allow_nan=False),
        st.integers(min_value=1, max_value=5),
    )
    def test_t_mli_formula_holds(self, qi, robustness):
        cfg = MldConfig(robustness=robustness).with_query_interval(qi)
        assert cfg.multicast_listener_interval == robustness * qi + 10.0
        # the other-querier interval is always shorter than T_MLI
        assert cfg.other_querier_present_interval < cfg.multicast_listener_interval

    @given(st.floats(min_value=10.0, max_value=500.0, allow_nan=False))
    def test_expected_delays_monotone_in_query_interval(self, qi):
        from repro.analysis import (
            expected_join_delay_wait_for_query,
            expected_leave_delay,
            leave_delay_bounds,
        )

        small = MldConfig().with_query_interval(10.0)
        big = MldConfig().with_query_interval(max(qi, 10.0))
        assert expected_join_delay_wait_for_query(small) <= (
            expected_join_delay_wait_for_query(big)
        )
        assert expected_leave_delay(small) <= expected_leave_delay(big)
        lo, hi = leave_delay_bounds(big)
        assert lo <= expected_leave_delay(big) <= hi
