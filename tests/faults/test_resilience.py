"""Resilience metric arithmetic on synthetic delivery records."""

from types import SimpleNamespace

import pytest

from repro.faults import (
    delivery_stats,
    duplicate_stats,
    expected_seqnos,
    longest_outage,
    publish_resilience,
    recovery_time,
)
from repro.obs import MetricsRegistry


class FakeApp:
    """Duck-typed stand-in for repro.workloads.ReceiverApp."""

    def __init__(self, deliveries):
        # deliveries: list of (time, seqno, duplicate)
        self._d = [
            SimpleNamespace(time=t, seqno=s, duplicate=dup)
            for t, s, dup in deliveries
        ]

    def delivered_seqnos(self, flow=None):
        return [d.seqno for d in self._d if not d.duplicate]

    def deliveries_between(self, start, end):
        return [d for d in self._d if start <= d.time <= end]

    def join_delay(self, move_time):
        later = [d.time for d in self._d if d.time >= move_time]
        return (min(later) - move_time) if later else None


class TestExpectedSeqnos:
    def test_basic_window(self):
        # seqno k sent at 20 + 0.5k; window [21, 23] -> seqnos 2..6
        assert expected_seqnos(20.0, 0.5, 21.0, 23.0, 100) == (2, 6)

    def test_window_before_traffic(self):
        assert expected_seqnos(20.0, 0.5, 0.0, 10.0, 100) == (0, -1)

    def test_clamped_to_total_sent(self):
        assert expected_seqnos(20.0, 0.5, 21.0, 1000.0, 5) == (2, 4)

    def test_boundary_inclusive(self):
        # a packet sent exactly at the window edge counts
        first, last = expected_seqnos(20.0, 0.5, 20.0, 20.5, 100)
        assert (first, last) == (0, 1)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            expected_seqnos(0.0, 0.0, 0.0, 1.0, 10)


class TestDeliveryStats:
    def test_counts_unique_in_range(self):
        app = FakeApp([(1.0, 0, False), (2.0, 1, False), (2.1, 1, True)])
        stats = delivery_stats(app, "f", 0, 3)
        assert stats == {
            "expected": 4,
            "delivered": 2,
            "lost": 2,
            "delivery_ratio": 0.5,
        }

    def test_empty_window(self):
        app = FakeApp([])
        stats = delivery_stats(app, "f", 0, -1)
        assert stats["expected"] == 0 and stats["delivery_ratio"] is None


class TestRecoveryAndOutage:
    def test_recovery_time(self):
        app = FakeApp([(5.0, 0, False), (11.5, 1, False)])
        assert recovery_time(app, 10.0) == pytest.approx(1.5)
        assert recovery_time(app, 12.0) is None

    def test_longest_outage_interior_gap(self):
        app = FakeApp([(1.0, 0, False), (2.0, 1, False), (7.0, 2, False)])
        assert longest_outage(app, 0.0, 8.0) == pytest.approx(5.0)

    def test_longest_outage_silent_window(self):
        assert longest_outage(FakeApp([]), 10.0, 25.0) == pytest.approx(15.0)

    def test_longest_outage_tail_gap(self):
        app = FakeApp([(1.0, 0, False)])
        assert longest_outage(app, 0.0, 9.0) == pytest.approx(8.0)


class TestDuplicateStats:
    def test_ratio(self):
        app = FakeApp([(1.0, 0, False), (1.1, 0, True), (2.0, 1, False)])
        stats = duplicate_stats(app, 0.0, 3.0)
        assert stats["deliveries"] == 3 and stats["duplicates"] == 1
        assert stats["duplicate_ratio"] == pytest.approx(1 / 3)

    def test_empty_window_is_zero(self):
        assert duplicate_stats(FakeApp([]), 0.0, 1.0)["duplicate_ratio"] == 0.0


class TestPublish:
    def test_gauges_labelled_by_approach_and_scenario(self):
        registry = MetricsRegistry()
        rows = [
            {
                "approach": "local",
                "scenario": "loss",
                "recovery_time": 1.5,
                "delivery_ratio": 0.9,
                "duplicate_ratio": 0.0,
                "control_bytes": 1234,
                "longest_outage": 2.0,
            },
            {
                "approach": "bidir",
                "scenario": "loss",
                "recovery_time": None,  # never recovered: no sample
                "delivery_ratio": 0.1,
            },
        ]
        publish_resilience(registry, rows)
        text = registry.render_prometheus()
        assert 'repro_resilience_recovery_seconds{approach="local",scenario="loss"} 1.5' in text
        assert 'repro_resilience_delivery_ratio{approach="bidir",scenario="loss"} 0.1' in text
        assert 'recovery_seconds{approach="bidir"' not in text
