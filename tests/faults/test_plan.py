"""FaultPlan / FaultEvent: validation, ordering, JSON round-trips."""

import pytest

from repro.faults import (
    FaultEvent,
    FaultPlan,
    gilbert_loss,
    handover_blackout,
    link_down,
    link_up,
    loss_burst,
    node_crash,
    node_restart,
)


class TestFaultEvent:
    def test_valid_event(self):
        ev = FaultEvent(5.0, "link-down", "L1")
        assert ev.at == 5.0 and ev.kind == "link-down" and ev.target == "L1"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent(-1.0, "link-down", "L1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(1.0, "meteor-strike", "L1")

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            FaultEvent(1.0, "link-down", "")

    def test_params_must_be_jsonable(self):
        with pytest.raises(ValueError, match="JSON-able"):
            FaultEvent(1.0, "link-down", "L1", {"bad": object()})

    def test_loss_start_params_validated_at_construction(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "loss-start", "L1", {"model": "nonsense"})
        # a valid spec constructs fine
        FaultEvent(1.0, "loss-start", "L1", {"model": "bernoulli", "rate": 0.1})

    def test_blackout_requires_positive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(1.0, "blackout", "R3")
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(1.0, "blackout", "R3", {"duration": 0.0})

    def test_round_trip(self):
        ev = FaultEvent(2.0, "loss-start", "L6", {"model": "bernoulli", "rate": 0.2})
        assert FaultEvent.from_jsonable(ev.to_jsonable()) == ev


class TestFaultPlan:
    def test_sorted_by_time(self):
        plan = FaultPlan(
            FaultEvent(9.0, "link-up", "L1"),
            FaultEvent(3.0, "link-down", "L1"),
        )
        assert [e.at for e in plan] == [3.0, 9.0]

    def test_accepts_factory_tuples(self):
        plan = FaultPlan(link_down(5.0, "L1", duration=2.0), node_crash(1.0, "D"))
        assert [e.kind for e in plan] == ["node-crash", "link-down", "link-up"]

    def test_simultaneous_events_keep_plan_order(self):
        plan = FaultPlan(
            FaultEvent(4.0, "link-down", "L1"),
            FaultEvent(4.0, "node-crash", "D"),
        )
        assert [e.kind for e in plan] == ["link-down", "node-crash"]

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultPlan("link-down")
        with pytest.raises(TypeError):
            FaultPlan([1, 2])

    def test_targets_sorted_unique(self):
        plan = FaultPlan(link_down(1.0, "L2", duration=1.0), link_down(2.0, "L1"))
        assert plan.targets() == ["L1", "L2"]

    def test_round_trip(self):
        plan = FaultPlan(
            gilbert_loss(3.0, "L6", rate=0.05, duration=10.0),
            node_crash(5.0, "D", duration=2.0),
            handover_blackout(7.0, "R3", 1.5),
        )
        again = FaultPlan.from_jsonable(plan.to_jsonable())
        assert again == plan and len(again) == 5

    def test_from_jsonable_none_is_empty(self):
        assert len(FaultPlan.from_jsonable(None)) == 0


class TestFactories:
    def test_link_down_with_duration_emits_link_up(self):
        down, up = link_down(5.0, "L1", duration=2.5)
        assert (down.kind, up.kind) == ("link-down", "link-up")
        assert up.at == 7.5

    def test_link_down_without_duration(self):
        (only,) = link_down(5.0, "L1")
        assert only.kind == "link-down"

    def test_link_up_factory(self):
        (ev,) = link_up(8.0, "L1")
        assert ev.kind == "link-up" and ev.at == 8.0

    @pytest.mark.parametrize("factory", [link_down, node_crash])
    def test_nonpositive_duration_rejected(self, factory):
        with pytest.raises(ValueError, match="duration"):
            factory(1.0, "X", duration=0.0)

    def test_loss_burst_params(self):
        start, stop = loss_burst(2.0, "L6", rate=0.3, duration=4.0)
        assert start.params == {"model": "bernoulli", "rate": 0.3}
        assert stop.kind == "loss-stop" and stop.at == 6.0

    def test_gilbert_loss_needs_exactly_one_rate_form(self):
        with pytest.raises(ValueError, match="exactly one"):
            gilbert_loss(1.0, "L6")
        with pytest.raises(ValueError, match="exactly one"):
            gilbert_loss(1.0, "L6", rate=0.1, p_good_to_bad=0.01)
        (by_rate,) = gilbert_loss(1.0, "L6", rate=0.1)
        assert by_rate.params["rate"] == 0.1
        (raw,) = gilbert_loss(1.0, "L6", p_good_to_bad=0.02)
        assert raw.params["p_good_to_bad"] == 0.02

    def test_node_crash_with_restart(self):
        crash, restart = node_crash(10.0, "D", duration=15.0)
        assert restart == node_restart(25.0, "D")[0]

    def test_blackout_factory(self):
        (ev,) = handover_blackout(6.0, "R3", 2.0)
        assert ev.kind == "blackout" and ev.params == {"duration": 2.0}


class TestSequencingValidation:
    """Overlap rejection + heal accounting (the chaos contract)."""

    def test_overlapping_link_down_rejected(self):
        with pytest.raises(ValueError, match="overlapping link-down.*L1"):
            FaultPlan(
                FaultEvent(1.0, "link-down", "L1"),
                FaultEvent(2.0, "link-down", "L1"),
            )

    def test_overlapping_node_crash_rejected(self):
        with pytest.raises(ValueError, match="overlapping node-crash.*D"):
            FaultPlan(
                FaultEvent(1.0, "node-crash", "D"),
                FaultEvent(3.0, "node-crash", "D"),
            )

    def test_out_of_order_construction_normalizes_then_validates(self):
        # events given out of order: the sort happens first, so the
        # healed sequence down@1 up@2 down@3 is legal in any order
        plan = FaultPlan(
            FaultEvent(3.0, "link-down", "L1"),
            FaultEvent(1.0, "link-down", "L1"),
            FaultEvent(2.0, "link-up", "L1"),
        )
        assert [e.at for e in plan] == [1.0, 2.0, 3.0]

    def test_interleaved_down_up_legal(self):
        plan = FaultPlan(
            link_down(1.0, "L1", duration=1.0),
            link_down(5.0, "L1", duration=1.0),
        )
        assert plan.unhealed() == {}

    def test_nested_loss_start_legal(self):
        # the injector keeps a save/restore stack of loss models
        plan = FaultPlan(
            FaultEvent(1.0, "loss-start", "L1", {"model": "bernoulli", "rate": 0.1}),
            FaultEvent(2.0, "loss-start", "L1", {"model": "bernoulli", "rate": 0.5}),
            FaultEvent(3.0, "loss-stop", "L1"),
            FaultEvent(4.0, "loss-stop", "L1"),
        )
        assert plan.unhealed() == {}

    def test_different_targets_do_not_interact(self):
        plan = FaultPlan(
            FaultEvent(1.0, "link-down", "L1"),
            FaultEvent(1.5, "link-down", "L2"),
            FaultEvent(2.0, "link-up", "L1"),
            FaultEvent(2.5, "link-up", "L2"),
        )
        assert plan.unhealed() == {}

    def test_unhealed_reports_open_faults(self):
        plan = FaultPlan(
            FaultEvent(1.0, "link-down", "L1"),
            FaultEvent(2.0, "node-crash", "D"),
            FaultEvent(3.0, "loss-start", "L6", {"model": "bernoulli", "rate": 0.1}),
        )
        assert plan.unhealed() == {
            "L1": "link-down", "D": "node-crash", "L6": "loss-start",
        }

    def test_last_heal_time_plain(self):
        plan = FaultPlan(link_down(5.0, "L1", duration=2.5))
        assert plan.last_heal_time() == 7.5

    def test_last_heal_time_extends_for_blackout(self):
        plan = FaultPlan(handover_blackout(6.0, "R3", 2.0))
        assert plan.last_heal_time() == 8.0

    def test_last_heal_time_empty_plan(self):
        assert FaultPlan().last_heal_time() == 0.0


class TestFromJsonableErrors:
    """Malformed plans must fail loudly, not half-load."""

    def test_event_not_a_mapping(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            FaultEvent.from_jsonable(["link-down", "L1"])

    def test_event_missing_fields(self):
        with pytest.raises(ValueError, match=r"missing field\(s\).*kind"):
            FaultEvent.from_jsonable({"at": 1.0, "target": "L1"})

    def test_event_params_not_a_mapping(self):
        with pytest.raises(ValueError, match="'params' must be a mapping"):
            FaultEvent.from_jsonable(
                {"at": 1.0, "kind": "link-down", "target": "L1", "params": [1]}
            )

    def test_plan_round_trip_with_gilbert_params(self):
        plan = FaultPlan(
            gilbert_loss(3.0, "L6", p_good_to_bad=0.02, duration=4.0),
            node_crash(5.0, "D", duration=2.0),
        )
        blob = plan.to_jsonable()
        again = FaultPlan.from_jsonable(blob)
        assert again == plan
        assert again.to_jsonable() == blob

    def test_plan_round_trip_rejects_overlap(self):
        blob = [
            {"at": 1.0, "kind": "link-down", "target": "L1"},
            {"at": 2.0, "kind": "link-down", "target": "L1"},
        ]
        with pytest.raises(ValueError, match="overlapping link-down"):
            FaultPlan.from_jsonable(blob)
