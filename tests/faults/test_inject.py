"""FaultInjector behaviour: validation, firing, and protocol effects."""

import pytest

from repro.core.scenario import PaperScenario, ScenarioConfig
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    handover_blackout,
    link_down,
    loss_burst,
    node_crash,
)
from repro.net import Address, ApplicationData, BernoulliLoss, Host, Network
from repro.pimdm import PimDmConfig

from topo_helpers import build_line

GROUP = Address("ff1e::1")


def lan(seed=3):
    net = Network(seed=seed)
    link = net.add_link("LAN", "2001:db8:1::/64")
    a = Host(net.sim, "A", tracer=net.tracer, rng=net.rng)
    a.attach_to(link, link.prefix.address_for_host(1))
    b = Host(net.sim, "B", tracer=net.tracer, rng=net.rng)
    b.attach_to(link, link.prefix.address_for_host(2))
    for h in (a, b):
        net.register_node(h)
    return net, link, a, b


def blast(net, sender, start, count, gap=0.5):
    for k in range(count):
        net.sim.schedule_at(
            start + k * gap, sender.send_multicast, GROUP, ApplicationData(seqno=k)
        )


class TestArmValidation:
    def test_unknown_link_rejected(self):
        net, *_ = lan()
        with pytest.raises(ValueError, match="unknown link"):
            FaultInjector(net, FaultPlan(link_down(1.0, "L99"))).arm()

    def test_unknown_node_rejected(self):
        net, *_ = lan()
        with pytest.raises(ValueError, match="unknown node"):
            FaultInjector(net, FaultPlan(node_crash(1.0, "ghost"))).arm()

    def test_blackout_needs_mobile_target(self):
        net, link, a, b = lan()
        with pytest.raises(ValueError, match="non-mobile"):
            FaultInjector(net, FaultPlan(handover_blackout(1.0, "A", 2.0))).arm()

    def test_double_arm_rejected(self):
        net, *_ = lan()
        injector = FaultInjector(net, FaultPlan()).arm()
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()


class TestLinkFaults:
    def test_down_window_drops_and_recovers(self):
        net, link, a, b = lan()
        got = []
        b.joined_groups.add(GROUP)
        b.on_app_data(lambda p, m: got.append(m.seqno))
        blast(net, a, start=1.0, count=10, gap=1.0)  # t = 1..10
        plan = FaultPlan(link_down(3.5, "LAN", duration=3.0))  # covers t = 4,5,6
        injector = FaultInjector(net, plan).arm()
        net.run(until=12.0)
        assert got == [0, 1, 2, 6, 7, 8, 9]
        assert injector.fired == 2
        assert not link.up or link.up  # property exists
        assert net.stats.link_drops("LAN", "link-down") == 3

    def test_fault_trace_events_emitted(self):
        net, link, a, b = lan()
        FaultInjector(net, FaultPlan(link_down(2.0, "LAN", duration=1.0))).arm()
        net.run(until=5.0)
        kinds = [e.detail["event"] for e in net.tracer.query("fault")]
        assert kinds == ["link-down", "link-up"]
        assert all(e.node == "LAN" for e in net.tracer.query("fault"))

    def test_loss_stop_restores_previous_model(self):
        net, link, a, b = lan()
        link.loss_rate = 0.2  # pre-existing background loss
        plan = FaultPlan(loss_burst(1.0, "LAN", rate=0.9, duration=2.0))
        FaultInjector(net, plan).arm()
        net.run(until=1.5)
        assert link.loss_model.rate == 0.9
        net.run(until=4.0)
        assert isinstance(link.loss_model, BernoulliLoss)
        assert link.loss_model.rate == 0.2

    def test_loss_stop_without_prior_model_clears(self):
        net, link, a, b = lan()
        FaultInjector(
            net, FaultPlan(FaultEvent(1.0, "loss-stop", "LAN"))
        ).arm()
        net.run(until=2.0)
        assert link.loss_model is None


class TestNodeCrash:
    def test_crash_silences_and_restart_recovers(self):
        cfg = PimDmConfig(hello_period=2.0, hello_holdtime=7.0)
        topo = build_line(2, pim_config=cfg)
        r0, r1 = topo.routers
        shared = topo.links[1]
        plan = FaultPlan(node_crash(5.0, "R0", duration=10.0))
        FaultInjector(topo.net, plan).arm()
        topo.net.run(until=4.0)
        assert r1.pim.has_pim_neighbors(r1.iface_on(shared))
        topo.net.run(until=14.0)  # crash at 5, holdtime expires at 12ish
        assert r0.crashed
        assert not r1.pim.has_pim_neighbors(r1.iface_on(shared))
        topo.net.run(until=25.0)  # restart at 15, hellos resume
        assert not r0.crashed
        assert r1.pim.has_pim_neighbors(r1.iface_on(shared))

    def test_crashed_node_drops_frames_both_ways(self):
        topo = build_line(1)
        sender = topo.host_on(0, 100, "S")
        FaultInjector(topo.net, FaultPlan(node_crash(2.0, "R0"))).arm()
        blast(topo.net, sender, start=3.0, count=4)
        topo.net.run(until=6.0)
        assert topo.net.stats.total_drops("node-crashed") >= 4

    def test_crash_clears_pim_entries(self):
        topo = build_line(2)
        sender = topo.host_on(0, 100, "S")
        topo.net.run(until=1.0)
        sender.send_multicast(GROUP, ApplicationData(seqno=0))
        topo.net.run(until=3.0)
        r0 = topo.routers[0]
        assert r0.pim.get_entry(sender.primary_address(), GROUP) is not None
        FaultInjector(topo.net, FaultPlan(node_crash(4.0, "R0"))).arm()
        topo.net.run(until=5.0)
        assert r0.pim.get_entry(sender.primary_address(), GROUP) is None

    def test_home_agent_crash_wipes_bindings(self):
        topo = build_line(1, use_home_agents=True, seed=11)
        ha = topo.routers[0]
        home_link = topo.links[0]
        home = home_link.prefix.address_for_host(77)
        coa = topo.links[1].prefix.address_for_host(77)
        topo.net.run(until=1.0)
        ha.binding_cache.update(home, coa, lifetime=100.0, sequence=1)
        ha.home_iface_for(home).link.register_address(
            ha.home_iface_for(home), home
        )
        FaultInjector(topo.net, FaultPlan(node_crash(2.0, "R0"))).arm()
        topo.net.run(until=3.0)
        assert home not in ha.binding_cache
        assert home_link.resolve(home) is None


class TestBlackout:
    def test_mobile_reattaches_and_rejoins(self):
        sc = PaperScenario(ScenarioConfig(seed=0))
        plan = FaultPlan(handover_blackout(50.0, "R3", 2.0))
        FaultInjector(sc.net, plan).arm()
        sc.converge()
        sc.run_until(80.0)
        host = sc.paper.host("R3")
        assert host.current_link is not None
        assert host.current_link.name == "L4"  # back on the home link
        assert sc.net.tracer.count("mobility", event="blackout") == 1
        # radio gap (2 s) + movement detection + rejoin, then data flows
        delay = sc.apps["R3"].join_delay(50.0)
        assert delay is not None and 2.0 < delay < 8.0
