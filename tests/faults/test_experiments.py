"""End-to-end resilience experiments: qualitative results + determinism.

The acceptance bar for the subsystem: under wireless loss the tunnel
approaches and the local-membership approaches must be *measurably*
different (recovery time and delivery ratio), the zero-fault row must
be approach-independent on the handoff pipeline, and the campaign
sharding (jobs=1 vs jobs=N) must produce byte-identical rows.
"""

import json

import pytest

from repro.campaign import CampaignRunner
from repro.core.strategies import (
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
)
from repro.faults.experiments import (
    crash_cells,
    fault_sweep_cells,
    ha_crash_run,
    loss_receiver_run,
    render_crash_table,
    render_fault_table,
    run_fault_sweep,
)

FAST = dict(run_until=70.0, packet_interval=0.2)


class TestLossReceiverRun:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            (ap.key, rate): loss_receiver_run(ap, loss_rate=rate, **FAST)
            for ap in (LOCAL_MEMBERSHIP, BIDIRECTIONAL_TUNNEL)
            for rate in (0.0, 0.02)
        }

    def test_zero_loss_is_approach_neutral(self, rows):
        local, bidir = rows[("local", 0.0)], rows[("bidir", 0.0)]
        # no faults fire; both recover on the bare handoff pipeline
        assert local["faults_fired"] == bidir["faults_fired"] == 0
        assert local["frames_lost"] == bidir["frames_lost"] == 0
        assert local["recovery_time"] == pytest.approx(
            bidir["recovery_time"], abs=0.05
        )

    def test_loss_separates_tunnel_from_local(self, rows):
        """The qualitative claim: under >=1% loss the BU retransmission
        machinery (1 s) beats the MLD unsolicited-Report cadence (10 s)."""
        local, bidir = rows[("local", 0.02)], rows[("bidir", 0.02)]
        assert bidir["recovery_time"] < local["recovery_time"] - 1.0
        assert bidir["delivery_ratio"] > local["delivery_ratio"] + 0.02
        assert local["longest_outage"] > bidir["longest_outage"]

    def test_loss_row_shape(self, rows):
        row = rows[("local", 0.02)]
        assert row["scenario"] == "loss" and row["model"] == "gilbert"
        assert row["frames_lost"] >= 0
        assert row["link_loss_drops"] == row["frames_lost"]
        assert row["expected"] == row["delivered"] + row["lost"]
        json.dumps(row)  # cache/JSON contract

    def test_bernoulli_model_supported(self):
        row = loss_receiver_run(
            LOCAL_MEMBERSHIP, loss_rate=0.05, model="bernoulli", **FAST
        )
        assert row["model"] == "bernoulli" and row["frames_lost"] > 0

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown loss model"):
            loss_receiver_run(LOCAL_MEMBERSHIP, loss_rate=0.1, model="laplace")


class TestHaCrashRun:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            ap.key: ha_crash_run(ap, packet_interval=0.2)
            for ap in (LOCAL_MEMBERSHIP, BIDIRECTIONAL_TUNNEL)
        }

    def test_local_rides_through(self, rows):
        # Router D (the HA) is not on the native path to L6
        assert rows["local"]["recovery_time"] < 0.5
        assert rows["local"]["delivery_ratio"] > 0.95

    def test_tunnel_stalls_for_crash_plus_refresh(self, rows):
        bidir = rows["bidir"]
        assert bidir["recovery_time"] > rows["local"]["recovery_time"] + 5.0
        assert bidir["delivery_ratio"] < rows["local"]["delivery_ratio"] - 0.2
        assert bidir["longest_outage"] >= bidir["crash_duration"]

    def test_binding_restored_after_restart(self, rows):
        assert rows["bidir"]["binding_restored"] is True

    def test_crash_drops_accounted(self, rows):
        assert rows["bidir"]["crash_drops"] > 0
        json.dumps(rows["bidir"])


class TestCampaignIntegration:
    def test_cells_are_jsonable_and_ordered(self):
        cells = fault_sweep_cells([0.0, 0.05], seed=3)
        assert len(cells) == 8  # 2 rates x 4 approaches
        assert cells[0].task == "faults.receiver"
        assert cells[0].params["loss_rate"] == 0.0
        assert crash_cells(seed=3)[0].task == "faults.ha_crash"

    def test_jobs_parallelism_is_byte_identical(self, tmp_path):
        approaches = (LOCAL_MEMBERSHIP, BIDIRECTIONAL_TUNNEL)
        kw = dict(loss_rates=(0.0, 0.05), approaches=approaches, seed=1, **FAST)
        serial = run_fault_sweep(
            runner=CampaignRunner(jobs=1, master_seed=1), **kw
        )
        parallel = run_fault_sweep(
            runner=CampaignRunner(
                jobs=2, master_seed=1, cache_dir=tmp_path / "cache"
            ),
            **kw,
        )
        canon = lambda rows: json.dumps(rows, sort_keys=True)
        assert canon(serial) == canon(parallel)

    def test_render_tables(self):
        loss_row = loss_receiver_run(LOCAL_MEMBERSHIP, loss_rate=0.0, **FAST)
        text = render_fault_table([loss_row])
        assert "Resilience under wireless loss" in text and "local" in text
        crash_row = ha_crash_run(LOCAL_MEMBERSHIP, packet_interval=0.2)
        assert "Home-agent crash" in render_crash_table([crash_row])
