"""Gilbert–Elliott / Bernoulli loss model statistics and plumbing."""

import random

import pytest

from repro.net import (
    BernoulliLoss,
    GilbertElliottLoss,
    gilbert_for_mean_loss,
    loss_model_from_jsonable,
)


def drop_pattern(model, n, seed=123):
    rng = random.Random(seed)
    return [model.should_drop(rng) for _ in range(n)]


def mean_burst_length(pattern):
    bursts, run = [], 0
    for dropped in pattern:
        if dropped:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    if run:
        bursts.append(run)
    return sum(bursts) / len(bursts) if bursts else 0.0


class TestBernoulli:
    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)
        assert BernoulliLoss(0.0).mean_loss == 0.0

    def test_mean_loss_is_rate(self):
        assert BernoulliLoss(0.25).mean_loss == 0.25

    def test_empirical_rate(self):
        pattern = drop_pattern(BernoulliLoss(0.3), 4000)
        assert 0.25 <= sum(pattern) / len(pattern) <= 0.35

    def test_jsonable_round_trip(self):
        model = BernoulliLoss(0.4)
        again = loss_model_from_jsonable(model.to_jsonable())
        assert isinstance(again, BernoulliLoss) and again.rate == 0.4


class TestGilbertElliott:
    def test_stationary_bad(self):
        model = GilbertElliottLoss(p_good_to_bad=0.01, p_bad_to_good=0.09)
        assert model.stationary_bad == pytest.approx(0.1)

    def test_mean_loss_formula(self):
        model = GilbertElliottLoss(
            p_good_to_bad=0.02, p_bad_to_good=0.18, loss_good=0.0, loss_bad=0.5
        )
        assert model.mean_loss == pytest.approx(0.1 * 0.5)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=1.5, p_bad_to_good=0.1)
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.1, loss_bad=-1.0)

    def test_empirical_mean_matches_target(self):
        model = gilbert_for_mean_loss(0.1)
        pattern = drop_pattern(model, 20000)
        assert 0.07 <= sum(pattern) / len(pattern) <= 0.13

    def test_losses_are_burstier_than_bernoulli(self):
        """Same mean loss, but GE drops arrive in runs."""
        rate = 0.1
        ge = mean_burst_length(drop_pattern(gilbert_for_mean_loss(rate), 20000))
        bern = mean_burst_length(drop_pattern(BernoulliLoss(rate), 20000))
        assert ge > bern * 1.5

    def test_deterministic_given_same_rng_stream(self):
        a = drop_pattern(gilbert_for_mean_loss(0.2), 500, seed=9)
        b = drop_pattern(gilbert_for_mean_loss(0.2), 500, seed=9)
        assert a == b


class TestSolver:
    def test_zero_mean_never_drops(self):
        model = gilbert_for_mean_loss(0.0)
        assert not any(drop_pattern(model, 1000))

    def test_mean_loss_reproduced_analytically(self):
        for target in (0.01, 0.05, 0.2):
            assert gilbert_for_mean_loss(target).mean_loss == pytest.approx(target)

    def test_unreachable_target_rejected(self):
        # mean loss above loss_bad cannot be reached by mixing states
        with pytest.raises(ValueError):
            gilbert_for_mean_loss(0.95, loss_bad=0.9)


class TestFromJsonable:
    def test_gilbert_by_rate(self):
        model = loss_model_from_jsonable({"model": "gilbert", "rate": 0.05})
        assert isinstance(model, GilbertElliottLoss)
        assert model.mean_loss == pytest.approx(0.05)

    def test_gilbert_by_raw_probabilities(self):
        model = loss_model_from_jsonable(
            {"model": "gilbert", "p_good_to_bad": 0.02, "p_bad_to_good": 0.2}
        )
        assert isinstance(model, GilbertElliottLoss)
        assert model.p_good_to_bad == 0.02

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            loss_model_from_jsonable({"model": "cantor-dust"})
