"""Each oracle must actually fire: seed one violation per rule.

Every test runs a real Figure 1 scenario with a deliberately broken
protocol component (a suppressed retransmission, a corrupted cache
entry, a mutated event) and asserts the matching oracle rule reports
it.  The adversarial counterpart of ``test_zero_violations.py``.
"""

import pytest

from repro.core import LOCAL_MEMBERSHIP, BIDIRECTIONAL_TUNNEL
from repro.core.scenario import PaperScenario, ScenarioConfig
from repro.invariants import (
    InvariantMonitor,
    InvariantViolationError,
    KernelSanityOracle,
)
from repro.mipv6.mobile_node import MobileNode
from repro.net import Address
from repro.pimdm.router import PimDmEngine


def rules(monitor):
    return [v.rule for v in monitor.violations]


def scenario_with_monitor(approach, **kwargs):
    sc = PaperScenario(ScenarioConfig(approach=approach, **kwargs))
    return sc, InvariantMonitor(sc.net).attach()


# ----------------------------------------------------------------------
# PIM-DM oracle
# ----------------------------------------------------------------------

def rogue_outgoing_ifaces(self, entry):
    """A broken oif computation that ignores prune and assert state."""
    return [
        iface
        for iface in self.node.interfaces
        if iface.attached
        and iface is not entry.upstream_iface
        and (
            self._has_local_members(iface, entry.group)
            or self.has_pim_neighbors(iface)
        )
    ]


class TestPimDmOracle:
    def test_forward_on_pruned_oif(self, monkeypatch):
        sc, monitor = scenario_with_monitor(LOCAL_MEMBERSHIP)
        sc.converge()  # flood-and-prune leaves pruned oifs behind
        assert sc.metrics.prune_count() > 0
        monkeypatch.setattr(PimDmEngine, "outgoing_ifaces", rogue_outgoing_ifaces)
        sc.run_for(5.0)  # CBR traffic now floods the pruned branches
        assert "forward-on-pruned-oif" in rules(monitor)

    def test_graft_never_acked_or_retried(self, monkeypatch):
        original = PimDmEngine._graft_upstream

        def graft_without_retry(self, entry):
            original(self, entry)
            if entry.graft_retry_timer is not None:
                entry.graft_retry_timer.stop()  # retransmission suppressed

        monkeypatch.setattr(PimDmEngine, "_graft_upstream", graft_without_retry)
        # Patched before the routers are built: _on_graft is registered
        # as a message handler at engine construction time.
        monkeypatch.setattr(
            PimDmEngine, "_on_graft", lambda self, packet, graft, iface: None
        )
        sc, monitor = scenario_with_monitor(LOCAL_MEMBERSHIP)
        sc.converge()
        sc.move("R3", "L6", at=40.0)  # rejoin off-tree: the router grafts
        sc.run_until(60.0)
        monitor.finalize()
        assert "graft-unacked" in rules(monitor)

    def test_graft_lost_to_fault_plan_without_retry(self, monkeypatch):
        """PR 3 fault plans as the adversarial harness: a link outage
        eats the Graft in flight, and with retransmission suppressed
        the oracle flags the broken liveness machinery (with the retry
        timer intact the same fault plan recovers cleanly)."""
        from repro.faults import FaultInjector, FaultPlan, link_down

        original = PimDmEngine._graft_upstream

        def graft_without_retry(self, entry):
            original(self, entry)
            if entry.graft_retry_timer is not None:
                entry.graft_retry_timer.stop()

        monkeypatch.setattr(PimDmEngine, "_graft_upstream", graft_without_retry)
        sc, monitor = scenario_with_monitor(LOCAL_MEMBERSHIP)
        # The outage covers router E's upstream link exactly when the
        # post-handoff Graft crosses it (t ~ 41.6).
        FaultInjector(
            sc.net, FaultPlan(link_down(41.5, "L3", duration=2.0))
        ).arm()
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(60.0)
        monitor.finalize()
        assert "graft-unacked" in rules(monitor)

    def test_forward_while_assert_loser(self):
        sc, monitor = scenario_with_monitor(LOCAL_MEMBERSHIP)
        sc.converge()
        # Pick a (router, link) actually on the forwarding tree and claim
        # the router lost an assert election there; it keeps forwarding.
        tree = sc.current_tree()
        node = next(name for name, links in tree.items() if links)
        link = tree[node][0]
        iface = next(
            i for i in sc.net.nodes[node].interfaces
            if i.link is not None and i.link.name == link
        )
        source = str(sc.paper.sender.home_address)
        sc.net.tracer.record(
            "pim", node, event="assert-lost", iface=iface.name,
            winner="fe80::beef", source=source, group=str(sc.group),
        )
        sc.run_for(3.0)
        assert "forward-while-assert-loser" in rules(monitor)

    def test_parallel_forwarders_persist(self):
        sc, monitor = scenario_with_monitor(LOCAL_MEMBERSHIP)
        sc.converge()
        source, group = str(sc.paper.sender.home_address), str(sc.group)

        def duplicate(uid, node):
            sc.net.tracer.record(
                "mcast.forward", node, source=source, group=group,
                links=["L2"], uid=uid,
            )

        # Two routers forward the same datagram onto L2 every half
        # second for 7 s: an assert election that never converges.
        t0 = sc.now
        for k in range(14):
            sc.net.sim.schedule_at(t0 + 0.5 * k, duplicate, 9000 + k, "A")
            sc.net.sim.schedule_at(t0 + 0.5 * k + 0.01, duplicate, 9000 + k, "B")
        sc.run_for(8.0)
        assert "parallel-forwarders-persist" in rules(monitor)


# ----------------------------------------------------------------------
# MLD oracle
# ----------------------------------------------------------------------

class TestMldOracle:
    def test_stale_listener_state(self):
        sc, monitor = scenario_with_monitor(LOCAL_MEMBERSHIP)
        sc.converge()
        sc.move("R3", "L6", at=40.0)

        def freeze_membership():
            d = sc.paper.router("D")
            for record in d.mld_router._memberships.values():
                link = record.iface.link
                if link is not None and link.name == "L4" and record.active:
                    record.timer.restart(1e6)  # expiry machinery broken

        sc.net.sim.schedule_at(45.0, freeze_membership)
        # Past T_MLI + response slack the orphaned belief is illegal.
        sc.run_until(40.0 + 260.0 + 10.0 + 30.0)
        monitor.finalize()
        assert "stale-listener-state" in rules(monitor)

    def test_legal_leave_window_is_not_a_violation(self):
        sc, monitor = scenario_with_monitor(LOCAL_MEMBERSHIP)
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(40.0 + 260.0 + 30.0)  # natural expiry path
        monitor.finalize()
        assert monitor.violations == []


# ----------------------------------------------------------------------
# MIPv6 oracle
# ----------------------------------------------------------------------

class TestMipv6Oracle:
    def test_tunnel_stale_coa_after_cache_corruption(self):
        sc, monitor = scenario_with_monitor(BIDIRECTIONAL_TUNNEL)
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(50.0)

        def corrupt_binding():
            d = sc.paper.router("D")
            entry = d.binding_cache.get(sc.paper.host("R3").home_address)
            assert entry is not None
            entry.care_of_address = Address("2001:db8:bad::9")

        sc.net.sim.schedule_at(52.0, corrupt_binding)
        sc.run_until(60.0)
        assert "tunnel-stale-coa" in rules(monitor)

    def test_tunnel_to_mobile_that_is_home(self, monkeypatch):
        sc, monitor = scenario_with_monitor(BIDIRECTIONAL_TUNNEL)
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(55.0)
        # Deregistration lost forever: the HA's binding outlives the
        # mobile's return home, so it keeps tunneling to a home node.
        monkeypatch.setattr(
            MobileNode, "_send_binding_update", lambda self, *a, **k: None
        )
        sc.move("R3", "L4", at=56.0)
        sc.run_until(70.0)
        assert "tunnel-to-home-mn" in rules(monitor)

    def test_binding_registered_for_unconfigured_coa(self):
        sc, monitor = scenario_with_monitor(BIDIRECTIONAL_TUNNEL)
        sc.converge()
        home = str(sc.paper.host("R3").home_address)
        sc.net.tracer.record(
            "mipv6", "D", event="binding-registered",
            home=home, coa="2001:db8:ffff::9",
        )
        assert "binding-coa-unknown" in rules(monitor)

    def test_binding_sequence_regression(self):
        sc, monitor = scenario_with_monitor(BIDIRECTIONAL_TUNNEL)
        sc.converge()
        sc.move("R3", "L6", at=40.0)
        sc.run_until(50.0)  # real BU acked, sequence recorded
        d = sc.paper.router("D")
        entry = d.binding_cache.get(sc.paper.host("R3").home_address)
        assert entry is not None
        entry.sequence = -1  # an older BU overwrote a newer one
        sc.net.tracer.record(
            "mipv6", "D", event="binding-refreshed",
            home=str(entry.home_address), coa=str(entry.care_of_address),
        )
        assert "binding-sequence-regressed" in rules(monitor)


# ----------------------------------------------------------------------
# kernel oracle
# ----------------------------------------------------------------------

class TestKernelOracle:
    def test_time_regression_from_mutated_event(self):
        sc = PaperScenario(ScenarioConfig(approach=LOCAL_MEMBERSHIP))
        monitor = InvariantMonitor(sc.net).attach()
        sim = sc.net.sim
        sim.schedule_at(5.0, lambda: None, label="ok")
        rogue = sim.schedule_at(10.0, lambda: None, label="rogue")
        rogue.time = 1.0  # mutated after scheduling: heap disagrees
        sim.run(until=20.0)
        assert "time-regression" in rules(monitor)

    def test_fired_after_cancel_and_double_dispatch(self):
        sc = PaperScenario(ScenarioConfig(approach=LOCAL_MEMBERSHIP))
        monitor = InvariantMonitor(sc.net).attach()
        oracle = next(
            o for o in monitor.oracles if isinstance(o, KernelSanityOracle)
        )
        cancelled = sc.net.sim.schedule_at(1.0, lambda: None, label="ghost")
        cancelled.cancel()
        oracle.on_dispatch(cancelled)
        assert "fired-after-cancel" in rules(monitor)
        twice = sc.net.sim.schedule_at(2.0, lambda: None, label="again")
        twice.dispatched = True
        oracle.on_dispatch(twice)
        assert "double-dispatch" in rules(monitor)


# ----------------------------------------------------------------------
# escalate mode
# ----------------------------------------------------------------------

def test_escalate_mode_raises_immediately():
    sc = PaperScenario(ScenarioConfig(approach=LOCAL_MEMBERSHIP))
    monitor = InvariantMonitor(sc.net, escalate=True).attach()
    with pytest.raises(InvariantViolationError) as excinfo:
        sc.net.tracer.record(
            "mipv6", "D", event="binding-registered",
            home=str(sc.paper.host("R3").home_address), coa="2001:db8:ffff::1",
        )
    assert excinfo.value.violations[0].rule == "binding-coa-unknown"
    assert monitor.violations  # recorded before the raise


def test_violation_emits_trace_event_and_counter():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    sc = PaperScenario(ScenarioConfig(approach=LOCAL_MEMBERSHIP))
    monitor = InvariantMonitor(sc.net, registry=registry).attach()
    sc.net.tracer.record(
        "mipv6", "D", event="binding-registered",
        home=str(sc.paper.host("R3").home_address), coa="2001:db8:ffff::1",
    )
    assert monitor.violations
    events = list(sc.net.tracer.query(category="invariant.violation"))
    assert events and events[0].detail["rule"] == "binding-coa-unknown"
    text = registry.render_prometheus()
    assert "repro_invariant_violations" in text
