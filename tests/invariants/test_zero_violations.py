"""Legal runs must be violation-free — and unperturbed by the oracles.

The flip side of ``test_seeded_violations.py``: every golden scenario
and both PR 3 fault experiments run clean under invariant checking,
and enabling the oracles changes neither trace-visible behavior nor
result payloads (the monitor is a passive listener).
"""

import json

import pytest

from repro.core import BIDIRECTIONAL_TUNNEL, LOCAL_MEMBERSHIP
from repro.core.goldens import CANNED_RUNS, run_canned
from repro.invariants import ENV_FLAG, checking_enabled


@pytest.mark.parametrize("name", sorted(CANNED_RUNS))
def test_golden_scenarios_run_clean(name, monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "1")
    assert checking_enabled()
    sc = run_canned(name, seed=0)
    assert sc.invariants is not None  # self-attached from the environment
    sc.finish()  # escalate mode: raises on any breach
    assert sc.invariants.violations == []


def test_env_flag_off_means_no_monitor(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    sc = run_canned("fig1", seed=0)
    assert sc.invariants is None
    sc.finish()  # still a safe no-op


def test_oracles_do_not_perturb_results(monkeypatch):
    """A monitored fig2 run yields the same digest as an unmonitored one."""
    from repro.core.comparison import receiver_mobility_run

    monkeypatch.delenv(ENV_FLAG, raising=False)
    plain = receiver_mobility_run(LOCAL_MEMBERSHIP, seed=0)
    monkeypatch.setenv(ENV_FLAG, "1")
    checked = receiver_mobility_run(LOCAL_MEMBERSHIP, seed=0)
    assert json.dumps(plain, sort_keys=True) == json.dumps(
        checked, sort_keys=True
    )


class TestFaultExperimentsRunClean:
    """PR 3's adversarial fault plans stay within the protocol invariants
    (loss and crashes are legal events; only buggy state machines are
    violations) — and the oracles do not change the measured rows."""

    def test_loss_receiver_run(self, monkeypatch):
        from repro.faults.experiments import loss_receiver_run

        monkeypatch.delenv(ENV_FLAG, raising=False)
        plain = loss_receiver_run(LOCAL_MEMBERSHIP, seed=0, loss_rate=0.05)
        monkeypatch.setenv(ENV_FLAG, "1")
        checked = loss_receiver_run(LOCAL_MEMBERSHIP, seed=0, loss_rate=0.05)
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            checked, sort_keys=True
        )

    def test_ha_crash_run(self, monkeypatch):
        from repro.faults.experiments import ha_crash_run

        monkeypatch.delenv(ENV_FLAG, raising=False)
        plain = ha_crash_run(BIDIRECTIONAL_TUNNEL, seed=0)
        monkeypatch.setenv(ENV_FLAG, "1")
        checked = ha_crash_run(BIDIRECTIONAL_TUNNEL, seed=0)
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            checked, sort_keys=True
        )


def test_monitor_emits_no_trace_events_when_legal(monkeypatch):
    """Attached oracles leave the trace untouched on a legal run, so
    golden digests are identical with and without checking."""
    monkeypatch.delenv(ENV_FLAG, raising=False)
    plain = run_canned("fig3", seed=0)
    monkeypatch.setenv(ENV_FLAG, "1")
    monitored = run_canned("fig3", seed=0)
    monitored.finish()
    assert (
        list(monitored.net.tracer.query(category="invariant.violation")) == []
    )
    assert len(monitored.net.tracer.events) == len(plain.net.tracer.events)
