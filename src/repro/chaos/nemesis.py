"""Seeded nemesis-schedule generation.

A *nemesis* is an adversarial :class:`~repro.faults.FaultPlan` composed
from one of five archetypes, carved out of the structure of a
:class:`~repro.net.topogen.TopoGraph`:

``flaps``
    Rolling link flaps: a sample of transit links goes down and comes
    back at staggered times across the chaos window.
``partition``
    A regional partition: a BFS-grown router region is cut off by
    downing every link crossing the region boundary, then healed.
``bursts``
    Correlated Gilbert–Elliott loss bursts: a sample of transit links
    shares one burst window with independently jittered loss rates.
``ha-storm``
    Home-agent crash/failover storm: a sample of home-agent routers
    crash-restarts at staggered times.
``mobility-storm``
    Mass-handover storm: a clustered wave of radio blackouts across
    the mobile receiver population.

Every schedule is a pure function of ``(graph, archetype, intensity,
seed, cell)``: randomness comes from ``random.Random(derive_seed(seed,
f"nemesis.{archetype}.{cell}"))`` over sorted candidate lists, so the
same inputs yield a byte-identical plan on any worker.  All generated
plans are *healed by construction* — every fault is undone no later
than ``start + duration`` (``FaultPlan.unhealed()`` is empty), which is
the precondition for the convergence oracle's post-heal reference
state (:mod:`repro.chaos.convergence`).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence

from ..faults.plan import (
    FaultEvent,
    FaultPlan,
    gilbert_loss,
    handover_blackout,
    link_down,
    node_crash,
)
from ..net.topogen import TopoGraph
from ..sim.rng import derive_seed

__all__ = ["ARCHETYPES", "nemesis_plan"]

#: The five nemesis archetypes, generation order = documentation order.
ARCHETYPES = ("flaps", "partition", "bursts", "ha-storm", "mobility-storm")


def _scaled_count(intensity: float, population: int, fraction: float) -> int:
    """How many targets an archetype hits: ``intensity`` scales a
    ``fraction`` of the candidate population, always at least one."""
    return max(1, min(population, round(intensity * population * fraction)))


def _transit_links(graph: TopoGraph) -> List[str]:
    """Links joining two or more routers — the multicast tree's trunk.
    Falls back to all links for topologies with no shared links."""
    on_link = graph.routers_on()
    transit = sorted(l for l, members in on_link.items() if len(members) >= 2)
    return transit or sorted(on_link)


def _flaps(
    rng: random.Random, graph: TopoGraph, intensity: float,
    start: float, duration: float,
) -> List[Iterable[FaultEvent]]:
    links = _transit_links(graph)
    count = _scaled_count(intensity, len(links), 1.0)
    events: List[Iterable[FaultEvent]] = []
    for link in rng.sample(links, count):
        down_at = start + rng.uniform(0.0, 0.55) * duration
        outage = (0.10 + 0.25 * rng.random()) * duration
        events.append(link_down(down_at, link, duration=outage))
    return events


def _partition(
    rng: random.Random, graph: TopoGraph, intensity: float,
    start: float, duration: float,
) -> List[Iterable[FaultEvent]]:
    adj = graph.adjacency()
    routers = sorted(adj)
    if len(routers) < 2:
        # Nothing to partition; degrade to a flap of every link.
        return _flaps(rng, graph, intensity, start, duration)
    target = max(1, min(len(routers) - 1,
                        round(intensity * len(routers) * 0.4)))
    region = {rng.choice(routers)}
    frontier = sorted(region)
    while frontier and len(region) < target:
        nxt: List[str] = []
        for name in frontier:
            for peer in sorted(adj[name]):
                if peer not in region and len(region) < target:
                    region.add(peer)
                    nxt.append(peer)
        frontier = nxt
    cut = sorted(
        link
        for link, members in graph.routers_on().items()
        if members
        and any(m in region for m in members)
        and any(m not in region for m in members)
    )
    if not cut:
        return _flaps(rng, graph, intensity, start, duration)
    cut_at = start + rng.uniform(0.0, 0.2) * duration
    heal_after = (0.30 + 0.35 * rng.random()) * duration
    return [link_down(cut_at, link, duration=heal_after) for link in cut]


def _bursts(
    rng: random.Random, graph: TopoGraph, intensity: float,
    start: float, duration: float,
) -> List[Iterable[FaultEvent]]:
    links = _transit_links(graph)
    count = _scaled_count(intensity, len(links), 1.0)
    burst_at = start + rng.uniform(0.0, 0.25) * duration
    burst_len = (0.30 + 0.35 * rng.random()) * duration
    events: List[Iterable[FaultEvent]] = []
    for link in rng.sample(links, count):
        # Cap below the solver's ceiling: with the factory defaults
        # (loss_bad=0.9, p_bad_to_good=0.25) mean rates above ~0.72
        # have no stationary solution.
        rate = min(0.65, (0.15 + 0.55 * intensity) * (0.8 + 0.4 * rng.random()))
        events.append(
            gilbert_loss(burst_at, link, rate=rate, duration=burst_len)
        )
    return events


def _ha_storm(
    rng: random.Random, graph: TopoGraph, intensity: float,
    start: float, duration: float,
) -> List[Iterable[FaultEvent]]:
    ha_routers = sorted({router for _, router in graph.home_agents})
    if not ha_routers:
        raise ValueError("ha-storm needs a topology with home agents")
    count = _scaled_count(intensity, len(ha_routers), 0.4)
    events: List[Iterable[FaultEvent]] = []
    for router in rng.sample(ha_routers, count):
        crash_at = start + rng.uniform(0.0, 0.5) * duration
        downtime = (0.10 + 0.25 * rng.random()) * duration
        events.append(node_crash(crash_at, router, duration=downtime))
    return events


def _mobility_storm(
    rng: random.Random, graph: TopoGraph, intensity: float,
    start: float, duration: float, hosts: Sequence[str],
) -> List[Iterable[FaultEvent]]:
    if not hosts:
        raise ValueError(
            "mobility-storm needs the mobile host names "
            "(nemesis_plan(..., hosts=[...]))"
        )
    names = sorted(hosts)
    count = _scaled_count(intensity, len(names), 0.6)
    wave_at = start + rng.uniform(0.0, 0.3) * duration
    # Cluster the wave inside 20% of the window; individual blackouts
    # are radio-scale (0.5–2 s), bounded so re-attach lands in-window.
    events: List[Iterable[FaultEvent]] = []
    for host in rng.sample(names, count):
        blackout_at = wave_at + rng.uniform(0.0, 0.2) * duration
        blackout_len = min(0.5 + 1.5 * rng.random(),
                           max(0.1, start + duration - blackout_at - 0.05))
        events.append(handover_blackout(blackout_at, host, blackout_len))
    return events


def nemesis_plan(
    graph: TopoGraph,
    archetype: str,
    *,
    intensity: float = 0.5,
    seed: int = 0,
    cell: str = "",
    start: float = 10.0,
    duration: float = 10.0,
    hosts: Sequence[str] = (),
) -> FaultPlan:
    """Generate the seeded nemesis schedule for one chaos cell.

    ``intensity`` in (0, 1] scales how much of the candidate population
    (links, routers, hosts) each archetype hits.  ``cell`` is folded
    into the derived seed so distinct cells of one campaign draw
    independent schedules from one master seed.  ``hosts`` supplies the
    mobile receiver names (required for ``mobility-storm``, ignored
    elsewhere).
    """
    if archetype not in ARCHETYPES:
        raise ValueError(
            f"unknown nemesis archetype {archetype!r}; known: {ARCHETYPES}"
        )
    if not 0.0 < intensity <= 1.0:
        raise ValueError(f"intensity must be in (0, 1], got {intensity}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    rng = random.Random(derive_seed(seed, f"nemesis.{archetype}.{cell}"))
    if archetype == "flaps":
        groups = _flaps(rng, graph, intensity, start, duration)
    elif archetype == "partition":
        groups = _partition(rng, graph, intensity, start, duration)
    elif archetype == "bursts":
        groups = _bursts(rng, graph, intensity, start, duration)
    elif archetype == "ha-storm":
        groups = _ha_storm(rng, graph, intensity, start, duration)
    else:
        groups = _mobility_storm(rng, graph, intensity, start, duration, hosts)
    plan = FaultPlan(*groups)
    leftovers: Dict[str, str] = plan.unhealed()
    if leftovers:  # pragma: no cover - generator invariant
        raise AssertionError(f"nemesis plan left faults open: {leftovers}")
    return plan
