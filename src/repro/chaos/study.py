"""EXP-R3: the seeded chaos study (nemesis campaigns + convergence).

One campaign cell (:func:`chaos_cell`, task ``chaos.cell``) generates a
seeded topology, homes a mobile receiver population, starts one (S,G)
flow, unleashes a nemesis schedule (:mod:`repro.chaos.nemesis`) across
a bounded chaos window, then runs a settle window past the plan's last
heal and asks the convergence oracle
(:mod:`repro.chaos.convergence`) whether the live forwarding state
re-converged to the healed-topology reference RPF tree.

Reported metrics — convergence verdict + time, residual divergence
counts, and the delivery-survival ratio (application units delivered
over the flow's lifetime vs. the loss-free expectation) — are pure
functions of the cell parameters (no wall-clock fields), preserving
the campaign determinism/caching contracts.  ``traffic_model="fluid"``
makes 10⁴-receiver cells feasible: the analytic engine integrates
delivery while sparse probes keep PIM-DM's data-driven recovery alive.

The *chaos profile* tightens the protocol timers (PIM hello 5 s, MLD
query 15 s vs. the RFC 30/125 s) so post-fault recovery — bounded by
neighbor-relearn and membership-requery latencies — completes inside a
settle window of ~20 s instead of minutes.  The paper's §4.4 argument
is exactly this trade: shorter soft-state timers buy faster recovery
for more control traffic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis.tables import fmt_float, render_table
from ..campaign import CampaignGrid, CampaignRunner
from ..mipv6 import MobileIpv6Config
from ..mld import MldConfig
from ..net.packet import IPV6_HEADER_BYTES
from ..pimdm import PimDmConfig
from .nemesis import ARCHETYPES, nemesis_plan

__all__ = [
    "DEFAULT_INTENSITIES",
    "DEFAULT_TOPOS",
    "chaos_cell",
    "chaos_grid",
    "chaos_mipv6_config",
    "chaos_mld_config",
    "chaos_pim_config",
    "render_chaos_report",
    "run_chaos_sweep",
]

#: Default topology axis: one small hierarchical tree, one Waxman mesh
#: (the redundant-path shape where assert elections actually matter).
DEFAULT_TOPOS: List[Dict[str, Any]] = [
    {"model": "hier", "depth": 2, "fanout": 5},     # 30 routers, tree
    {"model": "waxman", "n": 24, "seed": 7},        # 24 routers, mesh
]

DEFAULT_INTENSITIES = (0.3, 0.7)


def chaos_pim_config(backend: str = "compact") -> PimDmConfig:
    """PIM-DM timers for the chaos profile: 5 s hellos bound the
    neighbor-relearn time after a crash/restart to one hello period."""
    return PimDmConfig(
        state_backend=backend, hello_period=5.0, hello_holdtime=17.5
    )


def chaos_mld_config() -> MldConfig:
    """MLD timers for the chaos profile: 15 s queries bound the
    membership-requery time after a cold router restart."""
    return MldConfig(
        query_interval=15.0,
        query_response_interval=4.0,
        startup_query_interval=3.75,
        unsolicited_report_interval=2.0,
    )


def chaos_mipv6_config() -> MobileIpv6Config:
    """MIPv6 timers for the chaos profile: fast binding refresh so HA
    failover storms resolve inside the settle window."""
    return MobileIpv6Config(binding_lifetime=64.0, binding_refresh_interval=10.0)


def chaos_cell(
    topo: Optional[Dict[str, Any]] = None,
    archetype: str = "flaps",
    intensity: float = 0.5,
    receivers: int = 12,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    chaos_duration: float = 10.0,
    settle: float = 20.0,
    packet_interval: float = 0.2,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
    check_invariants: Optional[bool] = None,
) -> Dict[str, Any]:
    """One chaos cell: generate, populate, break, heal, judge.

    Timeline: joins spread over ``[1, 1 + 0.4·warmup]``, the flow
    starts at ``warmup/2`` (tree established before the storm), the
    nemesis owns ``[warmup, warmup + chaos_duration]`` and is healed by
    construction no later than its end, and the run extends ``settle``
    seconds further before the convergence oracle's verdict.
    """
    from ..faults import FaultInjector
    from ..invariants import InvariantMonitor, checking_enabled
    from ..net.topogen import build_network, topo_graph
    from ..traffic import make_traffic_model
    from .convergence import ConvergenceOracle

    spec = dict(topo) if topo else dict(DEFAULT_TOPOS[0])
    graph = topo_graph(spec)
    built = build_network(
        graph,
        seed=seed,
        pim_config=chaos_pim_config(backend),
        mld_config=chaos_mld_config(),
        mipv6_config=chaos_mipv6_config(),
    )
    net = built.net
    protocol_monitor = None
    if check_invariants or (check_invariants is None and checking_enabled()):
        protocol_monitor = InvariantMonitor(net, escalate=True).attach()

    group = built.make_group(1)
    source = built.place_source("s000")
    population = built.place_receivers(receivers)
    plan = nemesis_plan(
        graph,
        archetype,
        intensity=intensity,
        seed=seed,
        # The schedule is part of the *physical* scenario: state
        # backend and traffic engine must see the same storm so their
        # results stay comparable.
        cell=f"{spec.get('model')}.{archetype}.{intensity}",
        start=warmup,
        duration=chaos_duration,
        hosts=[h.name for h in population],
    )
    heal_at = plan.last_heal_time()
    end = warmup + chaos_duration + settle
    oracle = ConvergenceOracle(
        flows=[("s000", group)], heal_at=heal_at, settle=end - heal_at
    )
    monitor = InvariantMonitor(net, oracles=[oracle], escalate=False).attach()
    injector = FaultInjector(net, plan)

    traffic = make_traffic_model(traffic_model, probe_interval=probe_interval)
    traffic.attach(net)
    net.start()
    injector.arm()
    built.schedule_joins(
        population, group, start=1.0, spread=max(warmup * 0.4, 1.0),
        stream="topogen.joins.g0",
    )
    flow_start = warmup / 2
    delivered = {"units": 0}
    if traffic_model == "packet":
        def _count_delivery(ev) -> None:
            delivered["units"] += 1

        net.tracer.add_listener(_count_delivery, categories=("mcast.deliver",))
    flow = traffic.add_cbr(
        source, group, packet_interval=packet_interval, flow="flow-g0"
    )
    flow.start(at=flow_start)
    net.run(until=end)
    traffic.finish()
    monitor.finalize()
    if protocol_monitor is not None:
        protocol_monitor.check()

    if traffic_model != "packet":
        inner_bytes = 1000 + IPV6_HEADER_BYTES  # add_cbr default payload
        total_bytes = sum(
            traffic.delivered_bytes.values()
        ) if hasattr(traffic, "delivered_bytes") else 0.0
        delivered_units = total_bytes / inner_bytes
    else:
        delivered_units = float(delivered["units"])
    expected_units = receivers * (end - flow_start) / packet_interval
    verdict = oracle.results[0]
    rules = sorted({d["rule"] for d in verdict["divergences"]})
    result: Dict[str, Any] = {
        "topo": spec,
        "archetype": archetype,
        "intensity": intensity,
        "routers": len(graph.routers),
        "links": len(graph.links),
        "receivers": receivers,
        "backend": backend,
        "traffic_model": traffic_model,
        "seed": seed,
        "graph_digest": graph.digest(),
        "plan_events": len(plan),
        "plan_targets": len(plan.targets()),
        "heal_at": round(heal_at, 6),
        "settle": settle,
        "events": net.sim.events_dispatched,
        "converged": verdict["converged"],
        "convergence_time": verdict["convergence_time"],
        "divergences": len(verdict["divergences"]),
        "divergence_rules": rules,
        "member_links": verdict["member_links"],
        "reference_links": verdict["reference_links"],
        "live_links": verdict["live_links"],
        "delivered_units": round(delivered_units, 3),
        "expected_units": round(expected_units, 3),
        "delivery_ratio": round(
            delivered_units / expected_units if expected_units else 0.0, 4
        ),
    }
    if traffic_model != "packet":
        result["traffic"] = traffic.describe()
    return result


def chaos_grid(
    topos: Optional[Sequence[Dict[str, Any]]] = None,
    archetypes: Sequence[str] = ARCHETYPES,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    traffic_models: Sequence[str] = ("packet",),
    receivers: int = 12,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    chaos_duration: float = 10.0,
    settle: float = 20.0,
    packet_interval: float = 0.2,
    probe_interval: Optional[float] = None,
    check_invariants: Optional[bool] = None,
) -> CampaignGrid:
    """The EXP-R3 grid: topologies × archetypes × intensities ×
    traffic models."""
    base: Dict[str, Any] = {
        "receivers": receivers,
        "backend": backend,
        "seed": seed,
        "warmup": warmup,
        "chaos_duration": chaos_duration,
        "settle": settle,
        "packet_interval": packet_interval,
    }
    if probe_interval is not None:
        base["probe_interval"] = probe_interval
    if check_invariants is not None:
        base["check_invariants"] = check_invariants
    return CampaignGrid(
        "chaos.cell",
        axes={
            "topo": [dict(t) for t in (topos or DEFAULT_TOPOS)],
            "archetype": list(archetypes),
            "intensity": list(intensities),
            "traffic_model": list(traffic_models),
        },
        base=base,
        name="chaos-sweep",
    )


def run_chaos_sweep(
    topos: Optional[Sequence[Dict[str, Any]]] = None,
    archetypes: Sequence[str] = ARCHETYPES,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    traffic_models: Sequence[str] = ("packet",),
    receivers: int = 12,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    chaos_duration: float = 10.0,
    settle: float = 20.0,
    packet_interval: float = 0.2,
    probe_interval: Optional[float] = None,
    check_invariants: Optional[bool] = None,
    runner: Optional[CampaignRunner] = None,
    jobs: int = 1,
    cache_dir=None,
) -> Dict[str, Any]:
    """Run EXP-R3 and assemble convergence-time distributions plus
    delivery-survival curves."""
    grid = chaos_grid(
        topos=topos,
        archetypes=archetypes,
        intensities=intensities,
        traffic_models=traffic_models,
        receivers=receivers,
        backend=backend,
        seed=seed,
        warmup=warmup,
        chaos_duration=chaos_duration,
        settle=settle,
        packet_interval=packet_interval,
        probe_interval=probe_interval,
        check_invariants=check_invariants,
    )
    if runner is None:
        runner = CampaignRunner(jobs=jobs, cache_dir=cache_dir, master_seed=seed)
    rows = runner.run(grid.cells()).require_success().results()
    rows = sorted(
        rows,
        key=lambda r: (
            r["topo"]["model"], r["archetype"], r["intensity"],
            r["traffic_model"],
        ),
    )
    converged = [r for r in rows if r["converged"]]
    times = sorted(
        r["convergence_time"] for r in converged
        if r["convergence_time"] is not None
    )

    def quantile(values: List[float], q: float) -> Optional[float]:
        if not values:
            return None
        idx = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
        return round(values[idx], 6)

    by_archetype: Dict[str, Dict[str, Any]] = {}
    for archetype in sorted({r["archetype"] for r in rows}):
        sub = [r for r in rows if r["archetype"] == archetype]
        sub_times = sorted(
            r["convergence_time"] for r in sub
            if r["converged"] and r["convergence_time"] is not None
        )
        by_archetype[archetype] = {
            "cells": len(sub),
            "converged": sum(1 for r in sub if r["converged"]),
            "convergence_time": {
                "p50": quantile(sub_times, 0.5),
                "p90": quantile(sub_times, 0.9),
                "max": round(sub_times[-1], 6) if sub_times else None,
            },
            "delivery_survival": [
                {
                    "intensity": intensity,
                    "delivery_ratio": round(
                        sum(
                            r["delivery_ratio"] for r in sub
                            if r["intensity"] == intensity
                        ) / max(
                            1,
                            sum(1 for r in sub if r["intensity"] == intensity),
                        ),
                        4,
                    ),
                }
                for intensity in sorted({r["intensity"] for r in sub})
            ],
        }
    return {
        "experiment": "EXP-R3",
        "seed": seed,
        "cells": len(rows),
        "converged_cells": len(converged),
        "convergence_rate": round(len(converged) / len(rows), 4) if rows else 0.0,
        "convergence_time": {
            "p50": quantile(times, 0.5),
            "p90": quantile(times, 0.9),
            "max": round(times[-1], 6) if times else None,
        },
        "rows": rows,
        "by_archetype": by_archetype,
    }


def render_chaos_report(report: Dict[str, Any]) -> str:
    """Human-readable EXP-R3 tables."""
    flat = [
        {
            "topo": r["topo"]["model"],
            "archetype": r["archetype"],
            "intensity": r["intensity"],
            "traffic": r["traffic_model"],
            "events": r["events"],
            "converged": "yes" if r["converged"] else "NO",
            "conv_time": (
                r["convergence_time"]
                if r["convergence_time"] is not None
                else float("nan")
            ),
            "diverg": r["divergences"],
            "delivery": r["delivery_ratio"],
        }
        for r in report["rows"]
    ]
    table = render_table(
        flat,
        [
            "topo",
            "archetype",
            ("intensity", "intensity", fmt_float(2)),
            "traffic",
            "events",
            "converged",
            ("conv_time", "conv time (s)", fmt_float(3)),
            ("diverg", "residual div"),
            ("delivery", "delivery", fmt_float(4)),
        ],
        title=(
            f"EXP-R3 — chaos convergence ({report['cells']} cells, "
            f"{report['converged_cells']} converged, "
            f"p90 convergence {report['convergence_time']['p90']} s)"
        ),
    )
    lines = [table]
    for archetype, stats in report["by_archetype"].items():
        survival = ", ".join(
            f"i={p['intensity']:g}:{p['delivery_ratio']:.3f}"
            for p in stats["delivery_survival"]
        )
        lines.append(
            f"{archetype}: {stats['converged']}/{stats['cells']} converged, "
            f"p50={stats['convergence_time']['p50']} s — survival {survival}"
        )
    return "\n".join(lines)
