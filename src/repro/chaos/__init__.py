"""repro.chaos — seeded nemesis campaigns with a convergence oracle.

Adversarial robustness testing for the PIM-DM/MIPv6 interoperation:
:mod:`~repro.chaos.nemesis` composes seeded
:class:`~repro.faults.FaultPlan`\\ s from five archetypes (rolling link
flaps, regional partitions, correlated Gilbert–Elliott loss bursts,
home-agent crash storms, mass-handover mobility storms),
:mod:`~repro.chaos.convergence` proves the multicast tree
re-converges to the healed-topology reference RPF state, and
:mod:`~repro.chaos.study` runs the EXP-R3 campaign (``repro sweep
chaos``, task ``chaos.cell``).  See ``docs/FAULTS.md``.
"""

from .convergence import (
    STATE_MUTATION_EVENTS,
    ConvergenceOracle,
    evaluate_convergence,
)
from .nemesis import ARCHETYPES, nemesis_plan
from .study import (
    DEFAULT_INTENSITIES,
    DEFAULT_TOPOS,
    chaos_cell,
    chaos_grid,
    chaos_mipv6_config,
    chaos_mld_config,
    chaos_pim_config,
    render_chaos_report,
    run_chaos_sweep,
)

__all__ = [
    "ARCHETYPES",
    "ConvergenceOracle",
    "DEFAULT_INTENSITIES",
    "DEFAULT_TOPOS",
    "STATE_MUTATION_EVENTS",
    "chaos_cell",
    "chaos_grid",
    "chaos_mipv6_config",
    "chaos_mld_config",
    "chaos_pim_config",
    "evaluate_convergence",
    "nemesis_plan",
    "render_chaos_report",
    "run_chaos_sweep",
]
