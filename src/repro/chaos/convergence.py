"""Post-fault convergence oracle.

PIM-DM is a soft-state protocol: after arbitrary link/node churn it is
supposed to *self-stabilize* — the broadcast-and-prune tree regrows to
exactly the shortest-path (RPF) tree for the healed topology.  This
module checks that claim mechanically.

:func:`evaluate_convergence` recomputes the **reference** forwarding
state for one (S,G) flow from first principles — a flood-and-prune
emulation over the healed topology's static FIBs, with forwarders
elected per link by the assert rules (lower metric to source, ties to
the numerically higher address) — and diffs it against the **live**
tree implied by every router's (S,G) state (an RPF-checked flood from
the source link through each router's ``outgoing_ifaces``).  The diff
works identically for the ``compact`` and ``dict`` state backends
because every check goes through the duck-typed
:mod:`repro.pimdm.state` surface.

Divergence rules
================

=====================  ================================================
``member-not-tracked``  a joined host's link has no router with live
                        MLD membership for the group
``unreached-link``      the reference tree carries the flow over a
                        link the live tree never reaches
``stale-oif``           the live tree forwards onto a link the
                        reference flood does not cover (a prunable
                        oif that never got pruned)
``duplicate-forwarder`` two routers both forward onto one link
                        (assert election failed to converge)
``stale-rpf``           a router's (S,G) upstream iface disagrees with
                        its FIB's RPF iface
``graft-stuck``         pruned toward upstream while still having
                        local interest (graft never completed)
``prune-stuck``         a downstream iface marked pruned with no
                        running prune-hold timer
``assert-stuck``        an assert loser with no running assert timer
``no-rpf-path``         the reference flood cannot reach some joined
                        host's link at all (topology cut off)
=====================  ================================================

:class:`ConvergenceOracle` wraps the evaluation as a
:class:`repro.invariants.base.Oracle`: it passively timestamps the
last (S,G) state mutation seen in the trace (never scheduling events,
preserving the monitor's trace-invisibility contract), and at
``finalize()`` — called after the plan's last heal plus the settle
window — evaluates every flow and reports each residual divergence as
a violation.  ``convergence_time`` is the gap between the last heal
and the last state mutation, defined only when the flow converged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..invariants.base import Oracle
from ..sim.trace import TraceEvent

__all__ = [
    "ConvergenceOracle",
    "STATE_MUTATION_EVENTS",
    "evaluate_convergence",
]

#: PIM trace events that mutate (S,G)/neighbor state.  Message *sends*
#: (prune-sent, graft-sent, assert-sent, ...) are excluded: a periodic
#: retry is not a state change, and convergence means the state stops
#: moving, not that the protocol goes silent.
STATE_MUTATION_EVENTS = frozenset({
    "entry-created",
    "entry-expired",
    "oif-pruned",
    "oif-prune-expired",
    "oif-grafted",
    "oif-added",
    "oif-removed",
    "graft-acked",
    "prune-pending",
    "join-override-received",
    "assert-lost",
    "assert-winner-stored",
    "assert-expired",
    "neighbor-up",
    "neighbor-expired",
    "node-join",
    "node-leave",
})


def _rpf_link(router, source) -> Optional[Tuple[str, int]]:
    """(link name, metric) of the router's FIB route toward ``source``."""
    entry = router.routing.lookup(source)
    if entry is None or entry.iface.link is None:
        return None
    return entry.iface.link.name, entry.metric


def _routers_on(net, link_name: str) -> List[Any]:
    """Non-crashed routers attached to a link, attachment order."""
    return [
        iface.node
        for iface in net.link(link_name).interfaces
        if iface.node.is_router and not iface.node.crashed
    ]


def _member_links(net, group) -> Tuple[Set[str], Set[str], List[Dict[str, Any]]]:
    """(host-derived links, router-MLD-derived links, divergences).

    Host ``joined_groups`` is the ground truth; the router-MLD view may
    additionally hold *stale* memberships for hosts that moved away —
    legitimate interest under MLD's leave latency, so the reference
    tree must cover the union.  A joined host whose link no router
    tracks is a real divergence (membership lost across a fault).
    """
    host_links: Set[str] = set()
    divergences: List[Dict[str, Any]] = []
    for host in net.hosts():
        if group not in getattr(host, "joined_groups", ()):
            continue
        attached = [i for i in host.interfaces if i.link is not None]
        if not attached:
            continue  # still detached (blackout ran past the window)
        link_name = attached[0].link.name
        host_links.add(link_name)
        tracked = any(
            r.mld_router.has_members(r.iface_on(net.link(link_name)), group)
            for r in _routers_on(net, link_name)
        )
        if not tracked:
            divergences.append({
                "rule": "member-not-tracked", "node": host.name,
                "link": link_name,
            })
    mld_links: Set[str] = set()
    for router in net.routers():
        if router.crashed:
            continue
        for iface in router.interfaces:
            if iface.link is not None and router.mld_router.has_members(
                iface, group
            ):
                mld_links.add(iface.link.name)
    return host_links, mld_links, divergences


def _reference_links(
    net, source, source_link: str, member_links: Iterable[str],
    host_member_links: Iterable[str],
) -> Tuple[Set[str], List[Dict[str, Any]]]:
    """The reference link set: a flood-and-prune emulation on the
    healed topology.

    Dense mode converges to "flood minus prunes", not to the minimal
    member tree: a prune is only ever sent by a router whose *RPF*
    interface the data arrives on, so a cross-link whose routers all
    RPF elsewhere keeps carrying (and discarding) data forever — that
    is converged protocol state, and the reference must include it.
    A link ``M`` carries data iff its elected forwarder has data on
    its own RPF link and ``M`` is *wanted*:

    * ``M`` has local members (live MLD state), or
    * ``M`` has no RPF children to prune it but does have PIM
      neighbors (the permanent-flood case), or
    * some RPF child of ``M`` has downstream interest (it would
      graft/join-override any prune).

    Interest is computed first, bottom-up, by a monotone fixpoint with
    *ungated* elections — a router's downstream interest (what drives
    grafts and join overrides) does not depend on whether data is
    currently arriving.  The reached closure then floods from the
    source link with elections gated on data actually being available
    at the candidate forwarder, so a wanted-but-severed branch stays
    out of the reference.  Both passes are bounded, deterministic, and
    independent of any router's live (S,G) state.
    """
    members = set(member_links)
    routers = [r for r in net.routers() if not r.crashed]
    rpf: Dict[str, Optional[Tuple[str, int]]] = {
        r.name: _rpf_link(r, source) for r in routers
    }
    link_names = set(net.links.keys())
    rpf_children: Dict[str, List[Any]] = {L: [] for L in link_names}
    for r in routers:
        route = rpf[r.name]
        if route is not None:
            rpf_children[route[0]].append(r)
    multi_router = {L: len(_routers_on(net, L)) >= 2 for L in link_names}

    def elect(link_name: str, reached: Optional[Set[str]] = None):
        pool = []
        for r in _routers_on(net, link_name):
            route = rpf[r.name]
            if route is None or route[0] == link_name:
                continue
            if reached is not None and route[0] not in reached:
                continue  # no data at this candidate yet
            address = r.address_on(net.link(link_name))
            if address is None:
                continue
            pool.append((route[1], address, r))
        if not pool:
            return None
        best_metric = min(metric for metric, _, _ in pool)
        return max(
            (c for c in pool if c[0] == best_metric), key=lambda c: c[1]
        )[2]

    def wanted(link_name: str, want: Dict[str, bool]) -> bool:
        if link_name in members:
            return True
        children = rpf_children[link_name]
        if not children:
            return multi_router[link_name]
        return any(want[c.name] for c in children)

    want: Dict[str, bool] = {r.name: False for r in routers}
    changed = True
    while changed:
        changed = False
        for r in routers:
            if want[r.name]:
                continue
            route = rpf[r.name]
            for iface in r.interfaces:
                if iface.link is None:
                    continue
                link_name = iface.link.name
                if route is not None and link_name == route[0]:
                    continue
                if elect(link_name) is r and wanted(link_name, want):
                    want[r.name] = True
                    changed = True
                    break

    reached: Set[str] = {source_link}
    changed = True
    while changed:
        changed = False
        for link_name in link_names - reached:
            forwarder = elect(link_name, reached)
            if forwarder is not None and wanted(link_name, want):
                reached.add(link_name)
                changed = True
    divergences = [
        {"rule": "no-rpf-path", "node": link_name, "link": link_name}
        for link_name in sorted(set(host_member_links) - reached)
    ]
    return reached, divergences


def _live_links(
    net, source, group, source_link: str
) -> Tuple[Set[str], Dict[str, List[str]]]:
    """Links the live (S,G) state actually floods: an RPF-checked walk
    from the source link through each router's ``outgoing_ifaces``.
    Also returns forwarders per link for duplicate detection."""
    reached: Set[str] = {source_link}
    forwarders: Dict[str, List[str]] = {}
    frontier = [source_link]
    while frontier:
        link_name = frontier.pop()
        for router in _routers_on(net, link_name):
            entry = router.pim.get_entry(source, group)
            if entry is None or entry.upstream_iface is None:
                continue
            upstream = entry.upstream_iface.link
            if upstream is None or upstream.name != link_name:
                continue  # data arriving here would fail the RPF check
            for oif in router.pim.outgoing_ifaces(entry):
                if oif.link is None or not oif.link.up:
                    continue
                out = oif.link.name
                forwarders.setdefault(out, []).append(router.name)
                if out not in reached:
                    reached.add(out)
                    frontier.append(out)
    return reached, forwarders


def _liveness_sweep(net, source, group) -> List[Dict[str, Any]]:
    """Per-router residual-state checks: nothing stays pending forever."""
    divergences: List[Dict[str, Any]] = []
    for router in sorted(net.routers(), key=lambda r: r.name):
        if router.crashed:
            continue
        entry = router.pim.get_entry(source, group)
        if entry is None:
            continue
        rpf = _rpf_link(router, source)
        upstream = (
            entry.upstream_iface.link.name
            if entry.upstream_iface is not None
            and entry.upstream_iface.link is not None
            else None
        )
        if rpf is not None and upstream != rpf[0]:
            divergences.append({
                "rule": "stale-rpf", "node": router.name,
                "upstream": upstream, "expected": rpf[0],
            })
        interest = (
            entry.group in router.pim.node_groups
            or bool(router.pim.outgoing_ifaces(entry))
        )
        if entry.pruned_upstream and interest:
            divergences.append({
                "rule": "graft-stuck", "node": router.name,
                "graft_retry_running": (
                    entry.graft_retry_timer is not None
                    and entry.graft_retry_timer.running
                ),
            })
        for iface in router.interfaces:
            if iface.link is None:
                continue
            # .get() not .state_for(): the oracle must never create
            # downstream state as a side effect of observing it.
            state = entry.downstream.get(iface.uid)
            if state is None:
                continue
            if state.pruned and not (
                state.prune_hold_timer is not None
                and state.prune_hold_timer.running
            ) and not (
                state.prune_pending_timer is not None
                and state.prune_pending_timer.running
            ):
                divergences.append({
                    "rule": "prune-stuck", "node": router.name,
                    "iface_link": iface.link.name,
                })
            if state.assert_loser and not (
                state.assert_timer is not None and state.assert_timer.running
            ):
                divergences.append({
                    "rule": "assert-stuck", "node": router.name,
                    "iface_link": iface.link.name,
                })
    return divergences


def evaluate_convergence(net, source_name: str, group) -> Dict[str, Any]:
    """Diff the live (S,G) forwarding state against the healed-topology
    reference tree.  Returns a JSON-able verdict::

        {"converged": bool, "divergences": [...],
         "member_links": n, "reference_links": n, "live_links": n}

    Precondition: the fault plan has healed (no link down, no node
    crashed) — the reference is only defined for the healed topology.
    """
    source_node = net.node(source_name)
    attached = [i for i in source_node.interfaces if i.link is not None]
    if not attached:
        return {
            "converged": False,
            "divergences": [{"rule": "source-detached", "node": source_name}],
            "member_links": 0, "reference_links": 0, "live_links": 0,
        }
    source_link = attached[0].link.name
    source = source_node.primary_address()

    host_links, mld_links, divergences = _member_links(net, group)
    member_links = host_links | mld_links
    reference, ref_div = _reference_links(
        net, source, source_link, member_links, host_links
    )
    divergences.extend(ref_div)
    reached, forwarders = _live_links(net, source, group, source_link)

    for link_name in sorted(reference - reached):
        divergences.append({
            "rule": "unreached-link", "node": link_name, "link": link_name,
        })
    for link_name in sorted(reached - reference):
        divergences.append({
            "rule": "stale-oif",
            "node": forwarders.get(link_name, ["?"])[0],
            "link": link_name,
        })
    for link_name in sorted(forwarders):
        names = sorted(set(forwarders[link_name]))
        if len(names) > 1:
            divergences.append({
                "rule": "duplicate-forwarder", "node": link_name,
                "link": link_name, "forwarders": names,
            })
    divergences.extend(_liveness_sweep(net, source, group))
    return {
        "converged": not divergences,
        "divergences": divergences,
        "member_links": len(member_links),
        "reference_links": len(reference),
        "live_links": len(reached),
    }


class ConvergenceOracle(Oracle):
    """Arm on a chaos run; verdicts land in :attr:`results` at finalize.

    ``flows`` is a sequence of ``(source node name, group address)``
    pairs.  ``heal_at`` is the plan's declared last heal time
    (:meth:`repro.faults.FaultPlan.last_heal_time`); the run must
    extend at least ``settle`` seconds past it before ``finalize()``
    for the verdict to be meaningful.
    """

    name = "convergence"

    def __init__(
        self,
        flows: Sequence[Tuple[str, Any]],
        heal_at: float = 0.0,
        settle: float = 20.0,
    ) -> None:
        super().__init__()
        self.flows = list(flows)
        self.heal_at = heal_at
        self.settle = settle
        self.last_mutation = 0.0
        self.last_fault: Optional[float] = None
        self.results: List[Dict[str, Any]] = []

    def routes(self) -> Dict[str, Callable[[TraceEvent], None]]:
        return {
            "pim": self._on_pim,
            "pim.state": self._on_pim,
            "fault": self._on_fault,
        }

    def _on_pim(self, ev: TraceEvent) -> None:
        if ev.detail.get("event") in STATE_MUTATION_EVENTS:
            self.last_mutation = ev.time

    def _on_fault(self, ev: TraceEvent) -> None:
        self.last_fault = ev.time

    def finalize(self) -> None:
        for source_name, group in self.flows:
            verdict = evaluate_convergence(self.net, source_name, group)
            verdict["flow"] = {"source": source_name, "group": str(group)}
            verdict["heal_at"] = self.heal_at
            verdict["settle"] = self.settle
            verdict["convergence_time"] = (
                round(max(0.0, self.last_mutation - self.heal_at), 6)
                if verdict["converged"]
                else None
            )
            self.results.append(verdict)
            for divergence in verdict["divergences"]:
                detail = {
                    k: v for k, v in divergence.items()
                    if k not in ("rule", "node")
                }
                self.violate(
                    divergence["rule"], divergence["node"],
                    source=source_name, group=str(group), **detail,
                )
