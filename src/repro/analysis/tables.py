"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Column", "render_table", "fmt_seconds", "fmt_bytes", "fmt_float"]

Formatter = Callable[[Any], str]


def fmt_seconds(value: Any) -> str:
    """Format a delay in adaptive units."""
    if value is None:
        return "-"
    value = float(value)
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def fmt_bytes(value: Any) -> str:
    if value is None:
        return "-"
    value = int(value)
    if value >= 10_000_000:
        return f"{value / 1e6:.1f}MB"
    if value >= 10_000:
        return f"{value / 1e3:.1f}kB"
    return f"{value}B"


def fmt_float(digits: int = 2) -> Formatter:
    def fmt(value: Any) -> str:
        return "-" if value is None else f"{float(value):.{digits}f}"

    return fmt


class Column:
    """One table column: dict key, header, optional formatter."""

    def __init__(self, key: str, header: Optional[str] = None, fmt: Optional[Formatter] = None):
        self.key = key
        self.header = header if header is not None else key
        self.fmt = fmt or (lambda v: "-" if v is None else str(v))

    def render(self, row: Dict[str, Any]) -> str:
        return self.fmt(row.get(self.key))


def render_table(
    rows: Sequence[Dict[str, Any]],
    columns: Sequence[Union[Column, str, Tuple]],
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned text table.

    Columns may be :class:`Column` objects, plain keys, or
    ``(key, header[, fmt])`` tuples.
    """
    cols: List[Column] = []
    for spec in columns:
        if isinstance(spec, Column):
            cols.append(spec)
        elif isinstance(spec, str):
            cols.append(Column(spec))
        else:
            cols.append(Column(*spec))

    header = [c.header for c in cols]
    body = [[c.render(row) for c in cols] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(cols))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)
