"""Delay models and span-derived §4.3 measurements.

Two complementary sources for the paper's join/leave/disruption
numbers live here:

* closed-form expectations (§4.3.1, §4.4) — with default MLD timers
  the join and leave delays of mobile receivers are far too high; the
  improvement comes from decreasing T_Query.  Model assumptions
  (matching the simulator): a single member on the link, a querier
  sending General Queries every T_Query, hosts answering after a
  uniform delay in [0, T_RespDel], memberships expiring after
  T_MLI = Robustness · T_Query + T_RespDel.
* span-derived measurements — the same numbers read off the
  transaction trees of :mod:`repro.obs.spans`, phase-attributed:
  :func:`join_delay_from_spans` is the ``handover`` root's detach to
  first delivery, :func:`phase_breakdown` splits it into the pipeline
  phases, :func:`leave_delay_from_spans` is the ``leave-window`` span.
  :func:`verify_span_equivalence` cross-checks every one of them
  against the event-level computation
  (:func:`repro.obs.export.summarize_mobility`) on the same trace, so
  the two measurement paths can never silently diverge.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..mipv6 import MobileIpv6Config
from ..mld import MldConfig
from ..obs.spans import HANDOVER_PHASES, Span, iter_spans

__all__ = [
    "expected_join_delay_wait_for_query",
    "expected_join_delay_unsolicited",
    "expected_leave_delay",
    "leave_delay_bounds",
    "disruption_from_spans",
    "handovers_of",
    "join_delay_from_spans",
    "leave_delay_from_spans",
    "phase_breakdown",
    "verify_span_equivalence",
]


def expected_join_delay_wait_for_query(mld: MldConfig) -> float:
    """E[join delay] for a host that waits for the next Query.

    Attachment is uniform within a query cycle (E[wait] = T_Query / 2),
    then the response timer adds E[U(0, T_RespDel)] = T_RespDel / 2.
    The subsequent graft completes in network round-trip time — ignored
    at these scales.  125 s defaults give ≈ 67.5 s, the "far too high"
    value of §4.3.1.
    """
    return mld.query_interval / 2 + mld.query_response_interval / 2


def expected_join_delay_unsolicited(mipv6: MobileIpv6Config) -> float:
    """E[join delay] with unsolicited Reports after the move (§4.3.1).

    The delay collapses to the handoff pipeline itself: L2 handoff +
    movement detection + care-of address configuration, after which the
    Report and Graft are sub-second.
    """
    return (
        mipv6.handoff_delay
        + mipv6.movement_detection_delay
        + mipv6.coa_config_delay
    )


def expected_leave_delay(mld: MldConfig) -> float:
    """E[leave delay] — departure to membership-timer expiry.

    The membership timer holds T_MLI since the last Report.  The host's
    last Report preceded its departure by a uniform phase within the
    query cycle plus its response delay, so on average the timer has
    T_MLI − T_Query/2 − T_RespDel/2 left.  Defaults: ≈ 192.5 s, bounded
    by the paper's "max. 260 seconds".
    """
    return (
        mld.multicast_listener_interval
        - mld.query_interval / 2
        - mld.query_response_interval / 2
    )


def leave_delay_bounds(mld: MldConfig) -> tuple:
    """(min, max) possible leave delay.

    Max: the host reported immediately before leaving → full T_MLI.
    Min: the last report is one full query cycle plus the maximum
    response delay stale → T_MLI − T_Query − T_RespDel (= Robustness−1
    query intervals for the RFC relationship).
    """
    t_mli = mld.multicast_listener_interval
    return (
        t_mli - mld.query_interval - mld.query_response_interval,
        t_mli,
    )


# ----------------------------------------------------------------------
# span-derived measurements (repro.obs.spans transaction trees)
# ----------------------------------------------------------------------
def handovers_of(
    roots: Iterable[Span], node: str, since: Optional[float] = None
) -> List[Span]:
    """The node's ``handover`` root spans, oldest first."""
    return [
        span
        for span in roots
        if span.kind == "handover"
        and span.node == node
        and (since is None or span.start >= since)
    ]


def phase_breakdown(handover: Span) -> Dict[str, Optional[float]]:
    """Pipeline-phase durations of one handover, in pipeline order.

    Phases the handover never reached (e.g. it was superseded mid
    detection) report ``None``; reached phases report their exact
    duration, and — whenever the first delivery arrived in the
    ``rejoin`` phase, the §4.3 shape — the reached durations sum to
    the end-to-end join delay.
    """
    durations: Dict[str, Optional[float]] = {name: None for name in HANDOVER_PHASES}
    for child in handover.children:
        if child.kind == "phase" and child.end is not None:
            durations[child.name] = child.end - child.start
    return durations


def join_delay_from_spans(
    roots: Iterable[Span], node: str, since: Optional[float] = None
) -> Optional[float]:
    """Detach → first delivery at the new location, from the span tree.

    Matches ``first("mcast.deliver", node=..., since=move)`` relative
    to the move time because the handover root opens at the
    ``detached`` event and records ``first_delivery`` verbatim.
    """
    for handover in handovers_of(roots, node, since=since):
        delivered = handover.attrs.get("first_delivery")
        if delivered is not None:
            return delivered - handover.start
    return None


def leave_delay_from_spans(
    roots: Iterable[Span],
    node: str,
    link: str,
    group: Optional[str] = None,
    since: Optional[float] = None,
) -> Optional[float]:
    """Departure → ``members-gone`` on the old link, span-shaped.

    ``None`` when the membership had not yet expired by the end of the
    run (the window closed unexpired at ``finish()``).
    """
    for span in iter_spans(roots):
        if span.kind != "leave-window" or span.node != node:
            continue
        if span.attrs.get("link") != link:
            continue
        if group is not None and span.attrs.get("group") != group:
            continue
        if since is not None and span.start < since:
            continue
        if span.attrs.get("left"):
            return span.end - span.start
        return None
    return None


def disruption_from_spans(
    roots: Iterable[Span], node: str, since: Optional[float] = None
) -> Optional[float]:
    """Last delivery before detach → first delivery after re-attach.

    The receiver-side service disruption of one handover; ``None``
    when the node was not receiving before the move or never rejoined.
    """
    for handover in handovers_of(roots, node, since=since):
        before = handover.attrs.get("last_delivery_before")
        after = handover.attrs.get("first_delivery")
        if before is not None and after is not None:
            return after - before
    return None


def verify_span_equivalence(
    trace: Any,
    roots: Iterable[Span],
    move_time: float,
    receiver: str,
    old_link: str,
    group: Optional[str] = None,
) -> Dict[str, Any]:
    """Cross-check span-derived §4.3 numbers against the event-level
    computation on the same trace.

    Returns the two join/leave readings, the phase sum, and
    ``equivalent`` — True iff the span tree reproduces
    :func:`repro.obs.export.summarize_mobility`'s join and leave
    delays exactly and, when delivery arrived in the ``rejoin`` phase,
    the phase durations sum to the join delay (float-exact up to 1e-9
    accumulation error).
    """
    roots = list(roots)
    join_ev = trace.first("mcast.deliver", node=receiver, since=move_time)
    leave_kw: Dict[str, Any] = {"event": "members-gone", "link": old_link}
    if group is not None:
        leave_kw["group"] = group
    leave_ev = trace.first("mld", since=move_time, **leave_kw)
    event_join = join_ev.time - move_time if join_ev else None
    event_leave = leave_ev.time - move_time if leave_ev else None

    span_join = join_delay_from_spans(roots, receiver, since=move_time)
    span_leave = leave_delay_from_spans(
        roots, receiver, old_link, group=group, since=move_time
    )
    handovers = handovers_of(roots, receiver, since=move_time)
    phases: Dict[str, Optional[float]] = {}
    phase_sum: Optional[float] = None
    delivered_in: Optional[str] = None
    if handovers:
        phases = phase_breakdown(handovers[0])
        reached = [d for d in phases.values() if d is not None]
        phase_sum = sum(reached) if reached else None
        delivered_in = handovers[0].attrs.get("delivered_in")

    def close(a: Optional[float], b: Optional[float]) -> bool:
        if a is None or b is None:
            return a is None and b is None
        return abs(a - b) <= 1e-9

    equivalent = close(span_join, event_join) and close(span_leave, event_leave)
    if delivered_in == HANDOVER_PHASES[-1] and equivalent:
        equivalent = close(phase_sum, event_join)
    return {
        "receiver": receiver,
        "move_time": move_time,
        "event_join_delay": event_join,
        "span_join_delay": span_join,
        "event_leave_delay": event_leave,
        "span_leave_delay": span_leave,
        "phases": phases,
        "phase_sum": phase_sum,
        "delivered_in": delivered_in,
        "equivalent": equivalent,
    }
