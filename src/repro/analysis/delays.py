"""Closed-form delay models for MLD-driven join/leave latencies.

The paper argues (§4.3.1, §4.4) that with default MLD timers the join
and leave delays of mobile receivers are far too high and derives the
improvement from decreasing T_Query.  These are the corresponding
expectations; the simulation experiments check against them.

Model assumptions (matching the simulator): a single member on the
link, a querier sending General Queries every T_Query, hosts answering
after a uniform delay in [0, T_RespDel], memberships expiring after
T_MLI = Robustness · T_Query + T_RespDel.
"""

from __future__ import annotations

from ..mipv6 import MobileIpv6Config
from ..mld import MldConfig

__all__ = [
    "expected_join_delay_wait_for_query",
    "expected_join_delay_unsolicited",
    "expected_leave_delay",
    "leave_delay_bounds",
]


def expected_join_delay_wait_for_query(mld: MldConfig) -> float:
    """E[join delay] for a host that waits for the next Query.

    Attachment is uniform within a query cycle (E[wait] = T_Query / 2),
    then the response timer adds E[U(0, T_RespDel)] = T_RespDel / 2.
    The subsequent graft completes in network round-trip time — ignored
    at these scales.  125 s defaults give ≈ 67.5 s, the "far too high"
    value of §4.3.1.
    """
    return mld.query_interval / 2 + mld.query_response_interval / 2


def expected_join_delay_unsolicited(mipv6: MobileIpv6Config) -> float:
    """E[join delay] with unsolicited Reports after the move (§4.3.1).

    The delay collapses to the handoff pipeline itself: L2 handoff +
    movement detection + care-of address configuration, after which the
    Report and Graft are sub-second.
    """
    return (
        mipv6.handoff_delay
        + mipv6.movement_detection_delay
        + mipv6.coa_config_delay
    )


def expected_leave_delay(mld: MldConfig) -> float:
    """E[leave delay] — departure to membership-timer expiry.

    The membership timer holds T_MLI since the last Report.  The host's
    last Report preceded its departure by a uniform phase within the
    query cycle plus its response delay, so on average the timer has
    T_MLI − T_Query/2 − T_RespDel/2 left.  Defaults: ≈ 192.5 s, bounded
    by the paper's "max. 260 seconds".
    """
    return (
        mld.multicast_listener_interval
        - mld.query_interval / 2
        - mld.query_response_interval / 2
    )


def leave_delay_bounds(mld: MldConfig) -> tuple:
    """(min, max) possible leave delay.

    Max: the host reported immediately before leaving → full T_MLI.
    Min: the last report is one full query cycle plus the maximum
    response delay stale → T_MLI − T_Query − T_RespDel (= Robustness−1
    query intervals for the RFC relationship).
    """
    t_mli = mld.multicast_listener_interval
    return (
        t_mli - mld.query_interval - mld.query_response_interval,
        t_mli,
    )
