"""Bandwidth time series.

The byte counters in :class:`~repro.net.stats.NetworkStats` are
cumulative; a :class:`BandwidthRecorder` samples them on a fixed period
and exposes per-bin byte rates, so experiments can show *when* traffic
happened — the flood burst after a sender move, the leave-delay plateau
on an abandoned link, the instant a graft reconnects a branch.

Includes a dependency-free ASCII sparkline/bar renderer for reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..net import Network

__all__ = ["BandwidthRecorder", "render_series", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


class BandwidthRecorder:
    """Samples per-link byte counters every ``period`` seconds."""

    def __init__(self, net: Network, period: float = 1.0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.net = net
        self.period = period
        #: sample times (end of each bin)
        self.times: List[float] = []
        #: per-sample snapshots: link -> category -> cumulative bytes
        self._snapshots: List[Dict[str, Dict[str, int]]] = []
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._snapshots.append(self.net.stats.snapshot())
        self.times.append(self.net.now)
        self._schedule()

    def stop(self) -> None:
        self._running = False

    def _schedule(self) -> None:
        self.net.sim.schedule(self.period, self._sample, label="bandwidth-recorder")

    def _sample(self) -> None:
        if not self._running:
            return
        self.times.append(self.net.now)
        self._snapshots.append(self.net.stats.snapshot())
        self._schedule()

    # ------------------------------------------------------------------
    def _bytes_at(self, index: int, link: Optional[str], category: Optional[str]) -> int:
        snap = self._snapshots[index]
        links = [link] if link is not None else list(snap)
        total = 0
        for name in links:
            cats = snap.get(name, {})
            if category is None:
                total += sum(cats.values())
            else:
                total += cats.get(category, 0)
        return total

    def rate_series(
        self, link: Optional[str] = None, category: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """(bin end time, bytes/s during the bin) for a link/category.

        ``None`` aggregates over all links / all categories.
        """
        series: List[Tuple[float, float]] = []
        for i in range(1, len(self._snapshots)):
            dt = self.times[i] - self.times[i - 1]
            if dt <= 0:
                continue
            delta = self._bytes_at(i, link, category) - self._bytes_at(
                i - 1, link, category
            )
            series.append((self.times[i], delta / dt))
        return series

    def peak_rate(self, link: Optional[str] = None, category: Optional[str] = None) -> float:
        rates = [r for _, r in self.rate_series(link, category)]
        return max(rates) if rates else 0.0

    def busy_bins(
        self,
        link: Optional[str] = None,
        category: Optional[str] = None,
        threshold: float = 0.0,
    ) -> List[float]:
        """Bin end times whose rate exceeded ``threshold`` bytes/s."""
        return [t for t, r in self.rate_series(link, category) if r > threshold]


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (empty string for no data)."""
    values = list(values)
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    out = []
    for v in values:
        idx = int(round(v / top * (len(_BLOCKS) - 1)))
        out.append(_BLOCKS[max(0, min(idx, len(_BLOCKS) - 1))])
    return "".join(out)


def render_series(
    series: Sequence[Tuple[float, float]],
    label: str = "",
    width: int = 60,
) -> str:
    """Sparkline plus scale annotations for one rate series."""
    if not series:
        return f"{label}: (no samples)"
    values = [r for _, r in series]
    if len(values) > width:
        # downsample by averaging consecutive chunks
        chunk = len(values) / width
        values = [
            sum(values[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))])
            / max(1, len(values[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))]))
            for i in range(width)
        ]
    peak = max(r for _, r in series)
    t0, t1 = series[0][0], series[-1][0]
    return (
        f"{label} [{t0:.0f}s..{t1:.0f}s] peak {peak:.0f} B/s\n  {sparkline(values)}"
    )
