"""Analytic models and report rendering."""

from .delays import (
    expected_join_delay_unsolicited,
    expected_join_delay_wait_for_query,
    expected_leave_delay,
    leave_delay_bounds,
)
from .figures import render_figure, render_tree, tree_edges
from .tables import Column, fmt_bytes, fmt_float, fmt_seconds, render_table
from .timeline import (
    export_trace_json,
    handoff_timeline,
    load_trace_json,
    render_timeline,
)
from .timeseries import BandwidthRecorder, render_series, sparkline

__all__ = [
    "BandwidthRecorder",
    "Column",
    "expected_join_delay_unsolicited",
    "export_trace_json",
    "expected_join_delay_wait_for_query",
    "expected_leave_delay",
    "fmt_bytes",
    "fmt_float",
    "fmt_seconds",
    "handoff_timeline",
    "load_trace_json",
    "leave_delay_bounds",
    "render_figure",
    "render_series",
    "render_timeline",
    "sparkline",
    "render_table",
    "render_tree",
    "tree_edges",
]
