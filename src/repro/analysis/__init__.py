"""Analytic models and report rendering."""

from .delays import (
    disruption_from_spans,
    expected_join_delay_unsolicited,
    expected_join_delay_wait_for_query,
    expected_leave_delay,
    handovers_of,
    join_delay_from_spans,
    leave_delay_bounds,
    leave_delay_from_spans,
    phase_breakdown,
    verify_span_equivalence,
)
from .figures import render_figure, render_tree, tree_edges
from .phases import (
    render_phase_table,
    run_span_breakdown,
    span_breakdown_cells,
    span_receiver_run,
)
from .tables import Column, fmt_bytes, fmt_float, fmt_seconds, render_table
from .timeline import (
    export_trace_json,
    handoff_timeline,
    load_trace_json,
    render_timeline,
)
from .timeseries import BandwidthRecorder, render_series, sparkline

__all__ = [
    "BandwidthRecorder",
    "Column",
    "disruption_from_spans",
    "expected_join_delay_unsolicited",
    "export_trace_json",
    "expected_join_delay_wait_for_query",
    "expected_leave_delay",
    "fmt_bytes",
    "fmt_float",
    "fmt_seconds",
    "handoff_timeline",
    "handovers_of",
    "join_delay_from_spans",
    "load_trace_json",
    "leave_delay_bounds",
    "leave_delay_from_spans",
    "phase_breakdown",
    "render_figure",
    "render_phase_table",
    "render_series",
    "render_table",
    "render_timeline",
    "render_tree",
    "run_span_breakdown",
    "span_breakdown_cells",
    "span_receiver_run",
    "sparkline",
    "tree_edges",
    "verify_span_equivalence",
]
