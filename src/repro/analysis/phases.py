"""Phase-attributed handover breakdowns (the ``repro spans`` study).

One run = one §4.3 receiver handover executed with a live
:class:`~repro.obs.spans.SpanRecorder`, read back as a span tree and
flattened into a table row: every pipeline phase's duration, their
sum, the end-to-end join delay, and the span-vs-event equivalence
verdict of :func:`repro.analysis.delays.verify_span_equivalence`.
Optionally the handover happens under the wireless-loss model of
:mod:`repro.faults`, which stretches the ``rejoin`` phase (lost
Reports/Binding Updates pace recovery) while the fixed pipeline phases
stay put — phase attribution shows *where* loss hurts.

Rows shard through :mod:`repro.campaign` (task ``spans.receiver``), so
``repro spans`` gets caching and parallel execution for free.

``repro.core`` / ``repro.campaign`` / ``repro.faults`` are imported
lazily inside the run functions: ``repro.core`` imports this package's
siblings at module level, and a module-level back-import would be
circular (the :mod:`repro.campaign.tasks` convention).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..obs.spans import HANDOVER_PHASES, iter_spans
from .delays import handovers_of, verify_span_equivalence
from .tables import fmt_float, fmt_seconds, render_table

__all__ = [
    "render_phase_table",
    "run_span_breakdown",
    "span_breakdown_cells",
    "span_receiver_run",
]

#: Row keys for the pipeline phases, in order (dashes are awkward in
#: JSON-able row dicts and format strings).
PHASE_KEYS = tuple("phase_" + name.replace("-", "_") for name in HANDOVER_PHASES)


def span_receiver_run(
    approach: Any,
    seed: int = 0,
    loss_rate: float = 0.0,
    model: str = "gilbert",
    move_link: str = "L6",
    move_at: float = 40.0,
    fault_at: float = 32.0,
    handoff_blackout: float = 2.0,
    run_until: float = 90.0,
    packet_interval: float = 0.05,
) -> Dict[str, Any]:
    """One phase-attributed handover row: Receiver 3 to ``move_link``.

    With ``loss_rate == 0`` this is exactly the §4.3 receiver move
    (EXP-F2's 1.60 s pipeline); with loss it adopts the EXP-R1 fault
    shape (loss live at ``fault_at``, a ``handoff_blackout`` radio
    fade over the join signaling) so the breakdown shows the stretched
    ``rejoin`` phase against the untouched fixed phases.
    """
    from ..core.scenario import PaperScenario, ScenarioConfig
    from ..faults import FaultInjector, FaultPlan, gilbert_loss, link_down, loss_burst

    sc = PaperScenario(
        ScenarioConfig(
            approach=approach,
            seed=seed,
            packet_interval=packet_interval,
            trace_spans=True,
        )
    )
    events = []
    if loss_rate > 0.0:
        if model == "bernoulli":
            events.append(loss_burst(fault_at, move_link, rate=loss_rate))
        elif model == "gilbert":
            events.append(gilbert_loss(fault_at, move_link, rate=loss_rate))
        else:
            raise ValueError(f"unknown loss model {model!r} (bernoulli/gilbert)")
        if handoff_blackout > 0.0:
            # same fade as the resilience sweep: the join/BU exchange
            # (1.6 s after the move) lands inside the outage
            events.append(
                link_down(move_at + 1.5, move_link, duration=handoff_blackout)
            )
    injector = FaultInjector(sc.net, FaultPlan(*events)).arm()
    sc.converge()
    sc.move("R3", move_link, at=move_at)
    sc.run_until(run_until)
    sc.finish()

    roots = sc.spans.roots
    verdict = verify_span_equivalence(
        sc.net.tracer, roots, move_at, "R3", "L4", group=str(sc.group)
    )
    row: Dict[str, Any] = {
        "scenario": "spans",
        "approach": approach.key,
        "title": approach.title,
        "seed": seed,
        "loss_rate": loss_rate,
        "model": model if loss_rate > 0.0 else None,
        "join_delay": verdict["span_join_delay"],
        "phase_sum": verdict["phase_sum"],
        "delivered_in": verdict["delivered_in"],
        "equivalent": verdict["equivalent"],
        "event_join_delay": verdict["event_join_delay"],
        "leave_delay": verdict["span_leave_delay"],
    }
    for key, name in zip(PHASE_KEYS, HANDOVER_PHASES):
        row[key] = verdict["phases"].get(name)

    handovers = handovers_of(roots, "R3", since=move_at)
    handover = handovers[0] if handovers else None
    row["disruption"] = None
    row["bu_retransmits"] = 0
    if handover is not None:
        before = handover.attrs.get("last_delivery_before")
        after = handover.attrs.get("first_delivery")
        if before is not None and after is not None:
            row["disruption"] = after - before
        row["bu_retransmits"] = sum(
            child.attrs.get("retransmits", 0)
            for child in handover.children
            if child.kind == "binding-update"
        )
    grafts = [
        span
        for span in iter_spans(roots)
        if span.kind == "graft" and span.start >= move_at
    ]
    row["graft_count"] = len(grafts)
    row["graft_time"] = max(
        (span.duration for span in grafts if span.attrs.get("acked")), default=None
    )
    row["spans_total"] = sum(1 for _ in iter_spans(roots))
    row["handover_id"] = handover.span_id if handover is not None else None
    row["faults_fired"] = injector.fired
    return row


def span_breakdown_cells(
    approaches: Optional[Sequence[Any]] = None,
    loss_rates: Sequence[float] = (0.0,),
    seed: int = 0,
    model: str = "gilbert",
    run_until: float = 90.0,
    packet_interval: float = 0.05,
) -> List[Any]:
    """Loss-rate × approach grid of ``spans.receiver`` cells."""
    from ..campaign import CampaignCell
    from ..core.strategies import ALL_APPROACHES

    if approaches is None:
        approaches = tuple(ALL_APPROACHES)
    return [
        CampaignCell(
            "spans.receiver",
            {
                "approach": approach.key,
                "seed": seed,
                "loss_rate": rate,
                "model": model,
                "run_until": run_until,
                "packet_interval": packet_interval,
            },
        )
        for rate in loss_rates
        for approach in approaches
    ]


def run_span_breakdown(
    approaches: Optional[Sequence[Any]] = None,
    loss_rates: Sequence[float] = (0.0,),
    seed: int = 0,
    model: str = "gilbert",
    run_until: float = 90.0,
    packet_interval: float = 0.05,
    runner: Optional[Any] = None,
) -> List[Dict[str, Any]]:
    """Run the breakdown grid through the campaign engine; rows in
    grid order."""
    from ..campaign import CampaignRunner

    if runner is None:
        runner = CampaignRunner(master_seed=seed)
    cells = span_breakdown_cells(
        approaches, loss_rates, seed, model, run_until, packet_interval
    )
    return runner.run(cells).require_success().results()


def render_phase_table(rows: List[Dict[str, Any]]) -> str:
    """Phase-attribution table: one row per (approach, loss rate)."""
    return render_table(
        rows,
        [
            ("approach", "approach"),
            ("loss_rate", "loss", fmt_float(3)),
            (PHASE_KEYS[0], "l2", fmt_seconds),
            (PHASE_KEYS[1], "detect", fmt_seconds),
            (PHASE_KEYS[2], "coa", fmt_seconds),
            (PHASE_KEYS[3], "rejoin", fmt_seconds),
            ("phase_sum", "sum", fmt_seconds),
            ("join_delay", "join delay", fmt_seconds),
            ("disruption", "disruption", fmt_seconds),
            ("bu_retransmits", "BU rexmt"),
            ("equivalent", "spans==events"),
        ],
        title="Handover phase attribution (R3 hands off, span-derived)",
    )
