"""ASCII rendering of multicast distribution trees and tunnels.

Regenerates the pictures of Figures 1–4: which links carry (S,G)
traffic, through which routers, plus any active home-agent tunnels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["tree_edges", "render_tree", "render_figure"]


def tree_edges(tree: Dict[str, List[str]]) -> List[Tuple[str, str]]:
    """Flatten a per-router forwarding map into sorted (router, link) edges."""
    edges = []
    for router, links in sorted(tree.items()):
        for link in links:
            edges.append((router, link))
    return edges


def render_tree(
    tree: Dict[str, List[str]],
    source_link: str,
    router_links: Dict[str, List[str]],
    title: str = "multicast distribution tree",
) -> str:
    """BFS layout of the distribution tree starting at the source link.

    ``router_links`` maps each router to all its attached links, so the
    renderer can tell which attached link a router received from.
    """
    lines = [f"{title}:"]
    visited_links = {source_link}
    frontier = [source_link]
    depth = 0
    lines.append(f"  {source_link}  (source link)")
    while frontier and depth < 10:
        depth += 1
        next_frontier: List[str] = []
        for link in frontier:
            for router, out_links in sorted(tree.items()):
                if link not in router_links.get(router, []):
                    continue
                for out in out_links:
                    if out in visited_links:
                        continue
                    visited_links.add(out)
                    lines.append(f"  {'  ' * depth}{link} --{router}--> {out}")
                    next_frontier.append(out)
        frontier = next_frontier
    return "\n".join(lines)


def render_figure(
    tree: Dict[str, List[str]],
    source_link: str,
    router_links: Dict[str, List[str]],
    tunnels: Optional[List[Tuple[str, str, str]]] = None,
    title: str = "figure",
) -> str:
    """Tree plus tunnel annotations: tunnels are (from, to, label) triples."""
    out = render_tree(tree, source_link, router_links, title=title)
    if tunnels:
        lines = [out, "  tunnels:"]
        for src, dst, label in tunnels:
            lines.append(f"    {src} ====> {dst}   ({label})")
        out = "\n".join(lines)
    return out
