"""Trace timelines and export.

Debugging/analysis aids over the structured trace:

* :func:`handoff_timeline` — the ordered story of one mobile host's
  handoff (detach → attach → detection → CoA → BU/BA → first
  delivery), the sequence behind every join-delay number,
* :func:`render_timeline` — align any event list as a time-offset
  table,
* :func:`export_trace_json` / :func:`load_trace_json` — lossless trace
  round-trip for external tooling (thin wrappers over
  :mod:`repro.obs.export`, which adds the versioned header and stats
  snapshots used by ``python -m repro trace``).
"""

from __future__ import annotations

from typing import List, Optional

from ..net import Network
from ..obs.export import export_run, read_events
from ..sim import TraceEvent, Tracer

__all__ = [
    "handoff_timeline",
    "render_timeline",
    "export_trace_json",
    "load_trace_json",
]

#: (category, event) pairs that tell the handoff story, in causal order.
_HANDOFF_EVENTS = (
    ("mobility", "detached"),
    ("mobility", "attached"),
    ("mobility", "movement-detected"),
    ("mobility", "coa-configured"),
    ("mobility", "returned-home"),
    ("mipv6", "bu-sent"),
    ("mipv6", "ba-received"),
    ("mipv6", "ha-failover"),
    ("mld", "report-sent"),
    ("mld", "done-sent"),
)


def handoff_timeline(
    net: Network, host: str, since: float = 0.0, until: Optional[float] = None
) -> List[TraceEvent]:
    """All handoff-relevant events of ``host``, plus its first multicast
    delivery after each attachment."""
    relevant = []
    for category, event in _HANDOFF_EVENTS:
        relevant.extend(
            net.tracer.query(category, node=host, since=since, until=until,
                             event=event)
        )
    relevant.sort(key=lambda ev: ev.time)
    # first delivery after the last attachment completes the story
    attaches = [ev for ev in relevant if ev.detail.get("event") == "attached"]
    if attaches:
        first = net.tracer.first(
            "mcast.deliver", node=host, since=attaches[-1].time, until=until
        )
        if first is not None:
            relevant.append(first)
            relevant.sort(key=lambda ev: ev.time)
    return relevant


def render_timeline(events: List[TraceEvent], origin: Optional[float] = None) -> str:
    """Render events as a +offset table from ``origin`` (default: first)."""
    if not events:
        return "(no events)"
    base = origin if origin is not None else events[0].time
    lines = []
    for ev in events:
        label = ev.detail.get("event", ev.category)
        extras = ", ".join(
            f"{k}={v}"
            for k, v in ev.detail.items()
            if k != "event" and v not in (None, [], "")
        )
        lines.append(f"  +{ev.time - base:9.3f}s  {label:<20} {extras}")
    return "\n".join(lines)


def export_trace_json(tracer: Tracer, path: str) -> int:
    """Write the whole trace as JSON lines; returns the event count."""
    return export_run(path, tracer)


def load_trace_json(path: str) -> List[TraceEvent]:
    """Read the events back from :func:`export_trace_json` output (or
    any ``repro.obs.export`` JSONL file; non-event lines are skipped)."""
    return read_events(path)
