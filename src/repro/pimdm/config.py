"""PIM-DM protocol configuration (draft-ietf-pim-v2-dm-03).

Defaults are the values the paper quotes:

* (S,G) data timeout = 210 s — how long state for a silent source is
  kept (paper §3.1; the stale-tree cost of a moving sender, §4.2.2-A),
* Prune Delay Time T_PruneDel = 3 s — the join-override window on
  multi-access links (paper §3.1, §4.3.1 bandwidth discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PimDmConfig"]


@dataclass(frozen=True)
class PimDmConfig:
    """Tunable PIM-DM timers; defaults match the draft/paper."""

    #: (S,G) entry lifetime for a silent source (s).  Paper: 210 s.
    data_timeout: float = 210.0
    #: T_PruneDel: delay before acting on a received Prune, giving other
    #: routers on the link the chance to send a Join (s).  Paper: 3 s.
    prune_delay: float = 3.0
    #: Lifetime of prune state on an interface before forwarding resumes
    #: (dense-mode periodic re-flood).
    prune_hold_time: float = 210.0
    #: Minimum interval between repeated Prunes for the same (S,G) while
    #: unwanted data keeps arriving.  Overheard Joins for the same flow
    #: on the incoming link refresh this limit (the LAN stays unpruned
    #: on purpose); an assert-winner change resets it so the next Prune
    #: retargets the elected forwarder immediately.
    prune_retry_interval: float = 60.0
    #: Hello period / holdtime for PIM neighbor discovery (s).
    hello_period: float = 30.0
    hello_holdtime: float = 105.0
    #: Graft retransmission interval while no Graft-Ack arrives (s).
    graft_retry_interval: float = 3.0
    #: Capped-exponential backoff on Graft retransmissions: retry *n*
    #: waits ``graft_retry_interval * graft_backoff_factor**n`` seconds,
    #: capped at ``graft_retry_max_interval``.  The first (re)try keeps
    #: the base interval, so loss-free runs are unaffected; under
    #: sustained faults the backoff stops a partitioned router from
    #: hammering a dead upstream (graceful degradation).  Factor 1.0
    #: restores the fixed-interval draft behaviour.
    graft_backoff_factor: float = 2.0
    graft_retry_max_interval: float = 30.0
    #: Lifetime of assert-loser state on an interface (s).
    assert_time: float = 180.0
    #: PIM-DM State Refresh (the RFC 3973 extension): first-hop routers
    #: periodically flood a control message down the broadcast tree that
    #: keeps downstream prune state alive, suppressing the periodic
    #: data re-flood of plain dense mode.  Off by default (the paper
    #: predates it); the ablation benchmark measures what it saves.
    state_refresh_enabled: bool = False
    #: Interval between State Refresh originations (s).
    state_refresh_interval: float = 60.0
    #: (S,G) state representation: ``"compact"`` (interned keys,
    #: array-backed downstream tables, bitset oif flags) or ``"dict"``
    #: (the seed representation).  Behaviourally identical — the
    #: differential golden tests pin byte-identical traces — but the
    #: compact form is what makes thousand-router topologies fit.
    state_backend: str = "compact"

    def __post_init__(self) -> None:
        if self.data_timeout <= 0:
            raise ValueError("data_timeout must be positive")
        if self.prune_delay < 0:
            raise ValueError("prune_delay must be non-negative")
        if self.hello_period <= 0 or self.hello_holdtime <= self.hello_period:
            raise ValueError("hello_holdtime must exceed hello_period")
        if self.graft_retry_interval <= 0:
            raise ValueError("graft_retry_interval must be positive")
        if self.graft_backoff_factor < 1.0:
            raise ValueError("graft_backoff_factor must be >= 1.0")
        if self.graft_retry_max_interval < self.graft_retry_interval:
            raise ValueError(
                "graft_retry_max_interval must be >= graft_retry_interval"
            )
        if self.state_refresh_interval <= 0:
            raise ValueError("state_refresh_interval must be positive")
        if self.state_backend not in ("dict", "compact"):
            raise ValueError(
                f"state_backend must be 'dict' or 'compact', got {self.state_backend!r}"
            )
