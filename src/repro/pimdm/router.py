"""PIM-DM multicast router.

:class:`PimDmEngine` implements the broadcast-and-prune protocol of
paper §3.1 / draft-ietf-pim-v2-dm-03 on top of the node layer:

* **flood**: the first datagram of an (S,G) creates an entry whose
  incoming interface is the RPF interface toward S; the datagram is
  forwarded over every other interface with attached PIM routers or
  group members,
* **prune**: a router with no downstream interest sends a Prune on the
  incoming interface; the upstream router waits T_PruneDel (3 s) for a
  Join override from other routers on the link before pruning,
* **graft**: when membership appears on a pruned branch, a Graft
  (unicast, acknowledged, retransmitted) reinstates forwarding,
* **assert**: a datagram arriving on an *outgoing* interface signals
  parallel forwarders (Routers B and C of Figure 1) or a mobile sender
  transmitting with a stale source address (§4.3.1); Assert messages
  elect a single forwarder (best metric, then highest address) and
  downstream routers retarget Prunes/Grafts at the winner,
* **state expiry**: (S,G) entries for silent sources are deleted after
  the data timeout (210 s) — why a moved sender's old tree lingers.

:class:`MulticastRouter` composes the engine with the MLD router part
into the node type used for Routers A–E.

The ``pim`` events these mechanisms emit are transaction delimiters
for :mod:`repro.obs.spans`: ``graft-sent``/``graft-acked`` bound a
``graft`` span per (router, S, G), ``assert-sent`` /
``assert-lost`` / ``assert-winner-stored`` / ``assert-expired`` bound
an ``assert`` election span per (router, iface, S, G), and
``prune-pending`` / ``join-override-received`` / ``oif-pruned`` bound
the ``prune-override`` window.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..mld import MldConfig, MldRouter
from ..net.addressing import ALL_PIM_ROUTERS, Address
from ..net.interface import Interface
from ..net.node import Node
from ..net.packet import Ipv6Packet
from ..sim import Event, PeriodicTimer, Timer
from .config import PimDmConfig
from .messages import (
    PimAssert,
    PimGraft,
    PimGraftAck,
    PimHello,
    PimJoin,
    PimPrune,
    PimStateRefresh,
)
from .state import DownstreamState, SgEntry, StateStore, sg_key

__all__ = ["PimDmEngine", "MulticastRouter"]

LocalDeliveryHook = Callable[[Ipv6Packet, Interface], None]


class PimDmEngine:
    """The PIM-DM state machine for one router node."""

    def __init__(
        self,
        node: Node,
        config: Optional[PimDmConfig] = None,
        mld: Optional[MldRouter] = None,
    ) -> None:
        self.node = node
        self.config = config or PimDmConfig()
        self.mld = mld
        #: backend-selected keying/representation (dict vs compact)
        self.store = StateStore(self.config.state_backend)
        self.entries: Dict[object, SgEntry] = {}
        #: per-iface neighbor table: iface uid -> {address: holdtime timer}
        self.neighbors: Dict[int, Dict[Address, Timer]] = {}
        #: groups this node itself subscribed to (home-agent on-behalf joins)
        self.node_groups: Set[Address] = set()
        self._local_hooks: List[LocalDeliveryHook] = []
        self._hello_timers: List[PeriodicTimer] = []
        self._join_override_events: Dict[tuple, Event] = {}
        self._last_assert_sent: Dict[Tuple[tuple, int], float] = {}
        self._rng = node.rng.stream(f"pim.{node.name}")

        node.register_message_handler(PimHello, self._on_hello)
        node.register_message_handler(PimJoin, self._on_join)
        node.register_message_handler(PimPrune, self._on_prune)
        node.register_message_handler(PimGraft, self._on_graft)
        node.register_message_handler(PimGraftAck, self._on_graft_ack)
        node.register_message_handler(PimAssert, self._on_assert)
        node.register_message_handler(PimStateRefresh, self._on_state_refresh)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin Hello advertisement on all attached interfaces."""
        for iface in self.node.interfaces:
            if not iface.attached:
                continue
            timer = PeriodicTimer(
                self.node.sim,
                lambda i=iface: self._send_hello(i),
                period=self.config.hello_period,
                name=f"{self.node.name}.pim.hello.{iface.name}",
            )
            timer.start(fire_immediately=True)
            self._hello_timers.append(timer)

    def on_local_delivery(self, hook: LocalDeliveryHook) -> None:
        """Register a hook fed with multicast data for node-level joins."""
        self._local_hooks.append(hook)

    def shutdown(self) -> None:
        """Crash support: cancel every timer and discard all protocol
        state (entries, neighbors, node-level joins).  A later
        :meth:`start` re-advertises Hellos from a cold state and the
        forwarding state is rebuilt by flood-and-prune."""
        for timer in self._hello_timers:
            timer.stop()
        self._hello_timers.clear()
        for table in self.neighbors.values():
            for timer in table.values():
                timer.stop()
        self.neighbors.clear()
        for entry in list(self.entries.values()):
            entry.stop_all_timers()
        self.entries.clear()
        for event in self._join_override_events.values():
            if event.pending:
                event.cancel()
        self._join_override_events.clear()
        self._last_assert_sent.clear()
        self.node_groups.clear()
        self.store.reset()

    # ------------------------------------------------------------------
    # neighbor discovery
    # ------------------------------------------------------------------
    def _send_hello(self, iface: Interface) -> None:
        src = self.node.address_on(iface.link) if iface.link else None
        if src is None:
            return
        packet = Ipv6Packet(
            src, ALL_PIM_ROUTERS, PimHello(self.config.hello_holdtime), hop_limit=1
        )
        self.node.send_on(iface, packet)

    def _on_hello(self, packet: Ipv6Packet, hello: PimHello, iface: Interface) -> None:
        table = self.neighbors.setdefault(iface.uid, {})
        timer = table.get(packet.src)
        if timer is None:
            timer = Timer(
                self.node.sim,
                lambda i=iface, a=packet.src: self._neighbor_expired(i, a),
                name=f"{self.node.name}.pim.nbr.{packet.src}",
            )
            table[packet.src] = timer
            self.node.trace(
                "pim", event="neighbor-up", iface=iface.name, neighbor=str(packet.src)
            )
            self._on_new_neighbor(iface)
        timer.start(hello.holdtime)

    def _on_new_neighbor(self, iface: Interface) -> None:
        """A newly discovered neighbor makes ``iface`` a candidate oif
        again.  Any entry pruned toward upstream has regained downstream
        interest and must graft — without this, a router that pruned
        while its neighbor table was empty (e.g. just after a restart
        cleared it) starves the branch for the remainder of the
        upstream's prune-hold time."""
        for entry in list(self.entries.values()):
            if iface is entry.upstream_iface:
                continue
            if entry.pruned_upstream and self._has_interest(entry):
                self._graft_upstream(entry)

    def _neighbor_expired(self, iface: Interface, address: Address) -> None:
        table = self.neighbors.get(iface.uid, {})
        table.pop(address, None)
        self.node.trace(
            "pim", event="neighbor-expired", iface=iface.name, neighbor=str(address)
        )

    def has_pim_neighbors(self, iface: Interface) -> bool:
        return bool(self.neighbors.get(iface.uid))

    # ------------------------------------------------------------------
    # RPF / forwarding set computation
    # ------------------------------------------------------------------
    def _rpf(self, source: Address) -> Tuple[Optional[Interface], Optional[Address], int]:
        entry = self.node.routing.lookup(source)
        if entry is None or entry.iface.link is None:
            return None, None, 0
        return entry.iface, entry.next_hop, entry.metric

    def _has_local_members(self, iface: Interface, group: Address) -> bool:
        return self.mld is not None and self.mld.has_members(iface, group)

    def outgoing_ifaces(self, entry: SgEntry) -> List[Interface]:
        """The entry's current outgoing interface list (computed live)."""
        result: List[Interface] = []
        for iface in self.node.interfaces:
            if not iface.attached or iface is entry.upstream_iface:
                continue
            ds = entry.downstream.get(iface.uid)
            if ds is not None and ds.assert_loser:
                continue
            if self._has_local_members(iface, entry.group):
                result.append(iface)
                continue
            if self.has_pim_neighbors(iface) and not (ds is not None and ds.pruned):
                result.append(iface)
        return result

    def _has_interest(self, entry: SgEntry) -> bool:
        return entry.group in self.node_groups or bool(self.outgoing_ifaces(entry))

    # ------------------------------------------------------------------
    # entry management
    # ------------------------------------------------------------------
    def get_entry(self, source: Address, group: Address) -> Optional[SgEntry]:
        return self.entries.get(self.store.key(source, group))

    def _create_entry(self, source: Address, group: Address) -> Optional[SgEntry]:
        rpf_iface, next_hop, metric = self._rpf(source)
        if rpf_iface is None:
            self.node.trace(
                "pim", event="no-rpf", source=str(source), group=str(group)
            )
            return None
        entry = self.store.new_entry(
            source=source,
            group=group,
            upstream_iface=rpf_iface,
            upstream_neighbor=next_hop,
            metric_to_source=metric,
        )
        entry.entry_timer = Timer(
            self.node.sim,
            lambda e=entry: self._expire_entry(e),
            name=f"{self.node.name}.pim.sg.{source}.{group}",
        )
        entry.entry_timer.start(self.config.data_timeout)
        self.entries[entry.key] = entry
        self.node.trace(
            "pim.state",
            event="entry-created",
            source=str(source),
            group=str(group),
            upstream=rpf_iface.name,
        )
        if self.config.state_refresh_enabled and next_hop is None:
            # First-hop router (RFC 3973 §4.5.1): originate State
            # Refresh down the broadcast tree every refresh interval.
            self.node.sim.schedule(
                self.config.state_refresh_interval,
                self._originate_state_refresh,
                entry,
                label=f"{self.node.name}.pim.sr",
            )
        return entry

    def _expire_entry(self, entry: SgEntry) -> None:
        entry.stop_all_timers()
        self.entries.pop(entry.key, None)
        self._join_override_events.pop(entry.key, None)
        self.node.trace(
            "pim.state",
            event="entry-expired",
            source=str(entry.source),
            group=str(entry.group),
        )

    def entries_for_group(self, group: Address) -> List[SgEntry]:
        group = Address(group)
        return [e for e in self.entries.values() if e.group == group]

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def on_multicast_data(self, packet: Ipv6Packet, iface: Interface) -> None:
        source, group = packet.src, packet.dst
        entry = self.entries.get(self.store.key(source, group))
        if entry is None:
            entry = self._create_entry(source, group)
            if entry is None:
                return
        if iface is entry.upstream_iface:
            if entry.entry_timer is not None:
                entry.entry_timer.restart(self.config.data_timeout)
            outs = self.outgoing_ifaces(entry)
            if outs and packet.hop_limit > 1:
                forwarded = packet.with_decremented_hop_limit()
                for oif in outs:
                    self.node.send_on(oif, forwarded)
                entry.packets_forwarded += 1
                self.node.load["packets_forwarded"] += len(outs)
                self.node.trace(
                    "mcast.forward",
                    source=str(source),
                    group=str(group),
                    links=[o.link.name for o in outs if o.link],
                    uid=packet.uid,
                )
            elif not outs:
                entry.packets_discarded += 1
            if group in self.node_groups:
                for hook in self._local_hooks:
                    hook(packet, iface)
            if not outs and not self._has_interest(entry):
                self._send_prune_upstream(entry)
            elif entry.pruned_upstream:
                # Upstream is forwarding to us although we believe the
                # branch is pruned — either it restarted and forgot the
                # prune, or our Graft (or its Ack) was lost.  Data on
                # the RPF interface is as good as a Graft-Ack: clear
                # the stale prune state instead of retrying into the
                # backoff cap.
                entry.pruned_upstream = False
                entry.graft_retries = 0
                if entry.graft_retry_timer is not None:
                    entry.graft_retry_timer.stop()
        else:
            # Datagram on a non-RPF interface.  If we are (also) a
            # forwarder onto that link, this is the parallel-forwarder /
            # stale-source situation: run the assert process (§3.1).
            if iface in self.outgoing_ifaces(entry):
                self._maybe_send_assert(entry, iface)
            else:
                entry.packets_discarded += 1

    # ------------------------------------------------------------------
    # prune / join
    # ------------------------------------------------------------------
    def _send_prune_upstream(self, entry: SgEntry) -> None:
        target = entry.upstream_target()
        if target is None or entry.upstream_iface is None:
            return  # first-hop router: nothing upstream to prune
        now = self.node.sim.now
        if now - entry.last_prune_sent < self.config.prune_retry_interval:
            return
        entry.last_prune_sent = now
        entry.pruned_upstream = True
        src = self.node.address_on(entry.upstream_iface.link)
        if src is None:
            return
        message = PimPrune(
            source=entry.source,
            group=entry.group,
            upstream_neighbor=target,
            holdtime=self.config.prune_hold_time,
        )
        self.node.send_on(
            entry.upstream_iface, Ipv6Packet(src, ALL_PIM_ROUTERS, message, hop_limit=1)
        )
        self.node.trace(
            "pim",
            event="prune-sent",
            source=str(entry.source),
            group=str(entry.group),
            target=str(target),
        )

    def _on_prune(self, packet: Ipv6Packet, prune: PimPrune, iface: Interface) -> None:
        entry = self.entries.get(self.store.key(prune.source, prune.group))
        if entry is None:
            return
        my_addr = self.node.address_on(iface.link) if iface.link else None
        if prune.upstream_neighbor == my_addr:
            if iface is entry.upstream_iface:
                return
            if self._has_local_members(iface, entry.group):
                return  # local members keep the interface forwarding
            ds = entry.downstream_state(iface)
            if ds.pruned or ds.prune_pending:
                return
            ds.prune_pending_timer = Timer(
                self.node.sim,
                lambda e=entry, d=ds, h=prune.holdtime: self._prune_iface(e, d, h),
                name=f"{self.node.name}.pim.prunepend.{iface.name}",
            )
            ds.prune_pending_timer.start(self.config.prune_delay)
            self.node.trace(
                "pim",
                event="prune-pending",
                iface=iface.name,
                source=str(entry.source),
                group=str(entry.group),
            )
        elif iface is entry.upstream_iface:
            if self._has_interest(entry) and not entry.pruned_upstream:
                # A peer on our incoming link pruned traffic we still
                # need: schedule a Join override within T_PruneDel.
                self._schedule_join_override(entry)
            elif prune.upstream_neighbor == entry.upstream_target():
                # A peer already pruned toward our forwarder: suppress
                # our own duplicate Prune for another retry interval.
                entry.pruned_upstream = True
                entry.last_prune_sent = self.node.sim.now

    def _prune_iface(self, entry: SgEntry, ds: DownstreamState, holdtime: float) -> None:
        ds.prune_pending_timer = None
        ds.pruned = True
        ds.prune_hold_timer = Timer(
            self.node.sim,
            lambda e=entry, d=ds: self._prune_hold_expired(e, d),
            name=f"{self.node.name}.pim.prunehold.{ds.iface.name}",
        )
        ds.prune_hold_timer.start(min(holdtime, self.config.prune_hold_time))
        self.node.trace(
            "pim.state",
            event="oif-pruned",
            iface=ds.iface.name,
            source=str(entry.source),
            group=str(entry.group),
        )

    def _prune_hold_expired(self, entry: SgEntry, ds: DownstreamState) -> None:
        ds.clear_prune()
        self.node.trace(
            "pim.state",
            event="oif-prune-expired",
            iface=ds.iface.name,
            source=str(entry.source),
            group=str(entry.group),
        )

    def _schedule_join_override(self, entry: SgEntry) -> None:
        pending = self._join_override_events.get(entry.key)
        if pending is not None and pending.pending:
            return
        delay = self._rng.uniform(0.0, self.config.prune_delay * 0.8)
        self._join_override_events[entry.key] = self.node.sim.schedule(
            delay,
            self._send_join_override,
            entry,
            label=f"{self.node.name}.pim.joinoverride",
        )

    def _send_join_override(self, entry: SgEntry) -> None:
        if entry.key not in self.entries or not self._has_interest(entry):
            return
        target = entry.upstream_target()
        if target is None or entry.upstream_iface is None:
            return
        src = self.node.address_on(entry.upstream_iface.link)
        if src is None:
            return
        message = PimJoin(
            source=entry.source, group=entry.group, upstream_neighbor=target
        )
        self.node.send_on(
            entry.upstream_iface, Ipv6Packet(src, ALL_PIM_ROUTERS, message, hop_limit=1)
        )
        self.node.trace(
            "pim",
            event="join-sent",
            source=str(entry.source),
            group=str(entry.group),
            target=str(target),
        )

    def _on_join(self, packet: Ipv6Packet, join: PimJoin, iface: Interface) -> None:
        entry = self.entries.get(self.store.key(join.source, join.group))
        if entry is None:
            return
        my_addr = self.node.address_on(iface.link) if iface.link else None
        if join.upstream_neighbor != my_addr:
            if iface is entry.upstream_iface and entry.pruned_upstream:
                # Another router keeps the incoming LAN alive: re-sending
                # our Prune would only be overridden again — back off.
                entry.last_prune_sent = self.node.sim.now
            return
        ds = entry.downstream.get(iface.uid)
        if ds is not None and ds.prune_pending:
            ds.prune_pending_timer.stop()
            ds.prune_pending_timer = None
            self.node.trace(
                "pim",
                event="join-override-received",
                iface=iface.name,
                source=str(entry.source),
                group=str(entry.group),
            )

    # ------------------------------------------------------------------
    # graft
    # ------------------------------------------------------------------
    def _graft_upstream(self, entry: SgEntry, *, from_timer: bool = False) -> None:
        if not entry.pruned_upstream:
            return
        target = entry.upstream_target()
        if target is None or entry.upstream_iface is None:
            entry.pruned_upstream = False
            return
        src = self.node.address_on(entry.upstream_iface.link)
        if src is None:
            return
        message = PimGraft(source=entry.source, group=entry.group)
        packet = Ipv6Packet(src, target, message, hop_limit=1)
        resolved = entry.upstream_iface.link.resolve(target)
        self.node.send_on(entry.upstream_iface, packet, l2_dst=resolved)
        self.node.trace(
            "pim",
            event="graft-sent",
            source=str(entry.source),
            group=str(entry.group),
            target=str(target),
        )
        if entry.graft_retry_timer is None:
            entry.graft_retry_timer = Timer(
                self.node.sim,
                lambda e=entry: self._graft_upstream(e, from_timer=True),
                name=f"{self.node.name}.pim.graftretry",
            )
        # Capped-exponential backoff: the first retry keeps the base
        # interval (factor**0), each unacked retry doubles it up to the
        # cap, and a Graft-Ack resets the count.  Only timer-fired
        # retries escalate — a burst of event-triggered Grafts (e.g.
        # several neighbor-up events after a restart) says nothing
        # about upstream reachability and must not inflate the delay.
        if from_timer:
            entry.graft_retries += 1
        retry_delay = min(
            self.config.graft_retry_interval
            * self.config.graft_backoff_factor ** entry.graft_retries,
            self.config.graft_retry_max_interval,
        )
        entry.graft_retry_timer.start(retry_delay)

    def _on_graft(self, packet: Ipv6Packet, graft: PimGraft, iface: Interface) -> None:
        entry = self.entries.get(self.store.key(graft.source, graft.group))
        if entry is None:
            entry = self._create_entry(graft.source, graft.group)
            if entry is None:
                return
        ds = entry.downstream_state(iface)
        ds.clear_prune()
        self.node.trace(
            "pim.state",
            event="oif-grafted",
            iface=iface.name,
            source=str(entry.source),
            group=str(entry.group),
        )
        my_addr = self.node.address_on(iface.link) if iface.link else None
        if my_addr is not None:
            ack = PimGraftAck(source=entry.source, group=entry.group)
            resolved = iface.link.resolve(packet.src) if iface.link else None
            self.node.send_on(
                iface, Ipv6Packet(my_addr, packet.src, ack, hop_limit=1), l2_dst=resolved
            )
        if entry.pruned_upstream:
            self._graft_upstream(entry)

    def _on_graft_ack(
        self, packet: Ipv6Packet, ack: PimGraftAck, iface: Interface
    ) -> None:
        entry = self.entries.get(self.store.key(ack.source, ack.group))
        if entry is None:
            return
        entry.pruned_upstream = False
        entry.last_prune_sent = float("-inf")
        entry.graft_retries = 0
        if entry.graft_retry_timer is not None:
            entry.graft_retry_timer.stop()
        self.node.trace(
            "pim",
            event="graft-acked",
            source=str(entry.source),
            group=str(entry.group),
        )

    # ------------------------------------------------------------------
    # assert
    # ------------------------------------------------------------------
    def _maybe_send_assert(self, entry: SgEntry, iface: Interface) -> None:
        key = (entry.key, iface.uid)
        now = self.node.sim.now
        if now - self._last_assert_sent.get(key, float("-inf")) < 0.05:
            return
        self._last_assert_sent[key] = now
        self._send_assert(entry, iface)

    def _send_assert(self, entry: SgEntry, iface: Interface) -> None:
        src = self.node.address_on(iface.link) if iface.link else None
        if src is None:
            return
        message = PimAssert(
            source=entry.source, group=entry.group, metric=entry.metric_to_source
        )
        self.node.send_on(iface, Ipv6Packet(src, ALL_PIM_ROUTERS, message, hop_limit=1))
        self.node.trace(
            "pim",
            event="assert-sent",
            iface=iface.name,
            source=str(entry.source),
            group=str(entry.group),
            metric=entry.metric_to_source,
        )

    @staticmethod
    def _assert_beats(challenger: Tuple[int, Address], incumbent: Tuple[int, Address]) -> bool:
        """True when ``challenger`` (metric, address) wins the election:
        lower metric, ties to the numerically higher address."""
        c_metric, c_addr = challenger
        i_metric, i_addr = incumbent
        if c_metric != i_metric:
            return c_metric < i_metric
        return c_addr > i_addr

    def _on_assert(self, packet: Ipv6Packet, a: PimAssert, iface: Interface) -> None:
        entry = self.entries.get(self.store.key(a.source, a.group))
        if entry is None:
            return
        theirs = (a.metric, packet.src)
        if iface is entry.upstream_iface:
            # Remember the elected forwarder on our incoming link: it is
            # the router our Prunes/Grafts must target (§3.1).
            current = entry.upstream_assert_winner
            if current is None or self._assert_beats(
                theirs, (entry.upstream_assert_winner_metric, current)
            ):
                winner_changed = entry.upstream_assert_winner != packet.src
                entry.upstream_assert_winner = packet.src
                entry.upstream_assert_winner_metric = a.metric
                if winner_changed:
                    # A Prune addressed to the old forwarder is void; let
                    # the next unwanted datagram retarget the winner.
                    entry.last_prune_sent = float("-inf")
                self.node.trace(
                    "pim",
                    event="assert-winner-stored",
                    iface=iface.name,
                    winner=str(packet.src),
                    source=str(entry.source),
                    group=str(entry.group),
                )
            return
        my_addr = self.node.address_on(iface.link) if iface.link else None
        if my_addr is None:
            return
        mine = (entry.metric_to_source, my_addr)
        ds = entry.downstream_state(iface)
        if self._assert_beats(theirs, mine):
            ds.assert_loser = True
            ds.assert_winner = packet.src
            ds.assert_winner_metric = a.metric
            if ds.assert_timer is None:
                ds.assert_timer = Timer(
                    self.node.sim,
                    lambda e=entry, d=ds: self._assert_expired(e, d),
                    name=f"{self.node.name}.pim.assert.{iface.name}",
                )
            ds.assert_timer.start(self.config.assert_time)
            self.node.trace(
                "pim",
                event="assert-lost",
                iface=iface.name,
                winner=str(packet.src),
                source=str(entry.source),
                group=str(entry.group),
            )
        else:
            self._maybe_send_assert(entry, iface)

    def _assert_expired(self, entry: SgEntry, ds: DownstreamState) -> None:
        ds.clear_assert()
        self.node.trace(
            "pim",
            event="assert-expired",
            iface=ds.iface.name,
            source=str(entry.source),
            group=str(entry.group),
        )

    # ------------------------------------------------------------------
    # state refresh (RFC 3973 extension)
    # ------------------------------------------------------------------
    def _originate_state_refresh(self, entry: SgEntry) -> None:
        if entry.key not in self.entries:
            return  # entry expired; origination stops with it
        my_addr = (
            self.node.address_on(entry.upstream_iface.link)
            if entry.upstream_iface is not None and entry.upstream_iface.link
            else None
        )
        message = PimStateRefresh(
            source=entry.source,
            group=entry.group,
            originator=my_addr,
            metric=entry.metric_to_source,
            interval=self.config.state_refresh_interval,
        )
        self._propagate_state_refresh(entry, message)
        self.node.sim.schedule(
            self.config.state_refresh_interval,
            self._originate_state_refresh,
            entry,
            label=f"{self.node.name}.pim.sr",
        )

    def _propagate_state_refresh(self, entry: SgEntry, message: PimStateRefresh) -> None:
        """Send State Refresh on every downstream interface with PIM
        neighbors (pruned branches included — that is the point) and
        refresh local prune-hold state so forwarding does not resume."""
        hold = self.config.prune_hold_time
        for iface in self.node.interfaces:
            if not iface.attached or iface is entry.upstream_iface:
                continue
            ds = entry.downstream.get(iface.uid)
            if ds is not None and ds.pruned and ds.prune_hold_timer is not None:
                ds.prune_hold_timer.restart(hold)
            if not self.has_pim_neighbors(iface):
                continue
            src = self.node.address_on(iface.link)
            if src is None:
                continue
            self.node.send_on(
                iface, Ipv6Packet(src, ALL_PIM_ROUTERS, message, hop_limit=1)
            )
        self.node.trace(
            "pim",
            event="state-refresh-sent",
            source=str(entry.source),
            group=str(entry.group),
        )

    def _on_state_refresh(
        self, packet: Ipv6Packet, sr: PimStateRefresh, iface: Interface
    ) -> None:
        entry = self.entries.get(self.store.key(sr.source, sr.group))
        if entry is None:
            entry = self._create_entry(sr.source, sr.group)
            if entry is None:
                return
        if iface is not entry.upstream_iface:
            return  # RPF check, as for data
        # the refresh keeps (S,G) state alive even for a silent source
        if entry.entry_timer is not None:
            entry.entry_timer.restart(self.config.data_timeout)
        # refresh our own negative cache: no need to re-prune upstream
        if entry.pruned_upstream:
            entry.last_prune_sent = self.node.sim.now
        if sr.ttl <= 1:
            return
        forwarded = PimStateRefresh(
            source=sr.source,
            group=sr.group,
            originator=sr.originator,
            metric=sr.metric,
            interval=sr.interval,
            ttl=sr.ttl - 1,
        )
        self._propagate_state_refresh(entry, forwarded)

    # ------------------------------------------------------------------
    # MLD integration
    # ------------------------------------------------------------------
    def on_membership_change(
        self, iface: Interface, group: Address, present: bool
    ) -> None:
        for entry in self.entries_for_group(group):
            if present:
                ds = entry.downstream_state(iface)
                ds.clear_prune()
                if iface is not entry.upstream_iface:
                    self.node.trace(
                        "pim.state",
                        event="oif-added",
                        iface=iface.name,
                        source=str(entry.source),
                        group=str(group),
                    )
                if entry.pruned_upstream:
                    self._graft_upstream(entry)
            else:
                self.node.trace(
                    "pim.state",
                    event="oif-removed",
                    iface=iface.name,
                    source=str(entry.source),
                    group=str(group),
                )
                if not self._has_interest(entry):
                    self._send_prune_upstream(entry)

    # ------------------------------------------------------------------
    # node-level group interest (home agents)
    # ------------------------------------------------------------------
    def join_node_group(self, group: Address) -> None:
        group = Address(group)
        if group in self.node_groups:
            return
        self.node_groups.add(group)
        self.node.trace("pim.state", event="node-join", group=str(group))
        for entry in self.entries_for_group(group):
            if entry.pruned_upstream:
                self._graft_upstream(entry)

    def leave_node_group(self, group: Address) -> None:
        group = Address(group)
        if group not in self.node_groups:
            return
        self.node_groups.discard(group)
        self.node.trace("pim.state", event="node-leave", group=str(group))
        for entry in self.entries_for_group(group):
            if not self._has_interest(entry):
                self._send_prune_upstream(entry)

    # ------------------------------------------------------------------
    # introspection (for tests/experiments)
    # ------------------------------------------------------------------
    def state_counts(self) -> Dict[str, int]:
        """Live protocol-state entry counts for the memory-proxy gauges
        (``repro_state_entries{kind}``; see ``Network.collect_state``)."""
        return {
            "pim_sg": len(self.entries),
            "pim_downstream": sum(len(e.downstream) for e in self.entries.values()),
            "pim_neighbor": sum(len(t) for t in self.neighbors.values()),
        }

    def forwarding_links(self, source: Address, group: Address) -> List[str]:
        """Names of links this router currently forwards (S,G) onto."""
        entry = self.entries.get(self.store.key(source, group))
        if entry is None:
            return []
        return sorted(
            oif.link.name for oif in self.outgoing_ifaces(entry) if oif.link is not None
        )


class MulticastRouter(Node):
    """A PIM-DM + MLD multicast router (Routers A–E of the paper)."""

    is_router = True

    def __init__(
        self,
        *args,
        pim_config: Optional[PimDmConfig] = None,
        mld_config: Optional[MldConfig] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.mld_router = MldRouter(self, mld_config)
        self.pim = PimDmEngine(self, pim_config, self.mld_router)
        self.mld_router.on_membership_change(self.pim.on_membership_change)

    def start(self) -> None:
        """Boot MLD querier duty and PIM Hello advertisement."""
        self.mld_router.start()
        self.pim.start()

    # Fault injection ----------------------------------------------------
    def crash(self) -> None:
        """Crash = drop all packets + cancel all protocol timers and
        discard all MLD/PIM state (repro.faults NodeCrash)."""
        super().crash()
        self.mld_router.shutdown()
        self.pim.shutdown()

    def restart(self) -> None:
        """Cold restart: protocol engines boot afresh; neighbors, trees,
        and memberships are relearned."""
        super().restart()
        self.start()

    def handle_multicast(self, packet: Ipv6Packet, iface: Interface) -> None:
        self.dispatch_message(packet, iface)
        if packet.dst.is_link_scope_multicast:
            return
        if packet.innermost_message().protocol == "app":
            self.pim.on_multicast_data(packet, iface)

    # Convenience wrappers ------------------------------------------------
    def join_local_group(self, group: Address) -> None:
        """Subscribe this router itself to ``group`` (node-level join)."""
        self.pim.join_node_group(group)

    def leave_local_group(self, group: Address) -> None:
        self.pim.leave_node_group(group)
