"""Protocol Independent Multicast — Dense Mode (draft-ietf-pim-v2-dm-03)."""

from .config import PimDmConfig
from .messages import (
    PimAssert,
    PimGraft,
    PimGraftAck,
    PimHello,
    PimJoin,
    PimMessage,
    PimPrune,
    PimStateRefresh,
)
from .router import MulticastRouter, PimDmEngine
from .state import (
    STATE_BACKENDS,
    DownstreamState,
    OifSet,
    SgEntry,
    SgInterner,
    StateStore,
    sg_key,
)

__all__ = [
    "DownstreamState",
    "OifSet",
    "STATE_BACKENDS",
    "SgInterner",
    "StateStore",
    "MulticastRouter",
    "PimAssert",
    "PimDmConfig",
    "PimDmEngine",
    "PimGraft",
    "PimGraftAck",
    "PimHello",
    "PimJoin",
    "PimMessage",
    "PimPrune",
    "PimStateRefresh",
    "SgEntry",
    "sg_key",
]
