"""PIM-DM (S,G) forwarding state.

Each router keeps one :class:`SgEntry` per (Source, Group) pair it has
seen traffic (or control messages) for — the "(S, G) entry" of paper
§3.1 — holding:

* the **incoming (upstream) interface** — the RPF interface toward S,
* the **upstream neighbor** — target of Prunes/Grafts (None when the
  source's link is directly attached, i.e. this is a first-hop router),
* per-downstream-interface state: prune-pending (the T_PruneDel
  window), pruned (with hold timer), assert-loser (with assert timer),
* the entry **data timeout** (210 s default) after which state for a
  silent source is deleted — the reason a moved sender's old tree
  lingers (paper §4.2.2-A),
* upstream bookkeeping: whether we pruned upstream, graft-ack pending.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..net.addressing import Address
from ..net.interface import Interface
from ..sim import Timer

__all__ = ["DownstreamState", "SgEntry", "sg_key"]


def sg_key(source: Address, group: Address) -> tuple:
    return (Address(source).as_int(), Address(group).as_int())


@dataclass
class DownstreamState:
    """Per-(S,G)-per-downstream-interface state."""

    iface: Interface
    #: Prune received, waiting T_PruneDel for a possible Join override.
    prune_pending_timer: Optional[Timer] = None
    #: Interface pruned; forwarding resumes when the hold timer fires.
    pruned: bool = False
    prune_hold_timer: Optional[Timer] = None
    #: This router lost an assert election on the interface.
    assert_loser: bool = False
    assert_timer: Optional[Timer] = None
    assert_winner: Optional[Address] = None
    assert_winner_metric: Optional[int] = None

    @property
    def prune_pending(self) -> bool:
        return (
            self.prune_pending_timer is not None and self.prune_pending_timer.running
        )

    def clear_prune(self) -> None:
        if self.prune_pending_timer is not None:
            self.prune_pending_timer.stop()
            self.prune_pending_timer = None
        if self.prune_hold_timer is not None:
            self.prune_hold_timer.stop()
            self.prune_hold_timer = None
        self.pruned = False

    def clear_assert(self) -> None:
        if self.assert_timer is not None:
            self.assert_timer.stop()
            self.assert_timer = None
        self.assert_loser = False
        self.assert_winner = None
        self.assert_winner_metric = None


@dataclass
class SgEntry:
    """One (Source, Group) multicast forwarding entry."""

    source: Address
    group: Address
    upstream_iface: Optional[Interface]
    #: FIB next hop toward the source (None at a first-hop router).
    upstream_neighbor: Optional[Address]
    #: Assert winner on the upstream link overrides the FIB next hop as
    #: the target of Grafts/Prunes (paper §3.1: "downstream routers ...
    #: store the elected forwarder for later PIM-DM protocol actions").
    upstream_assert_winner: Optional[Address] = None
    upstream_assert_winner_metric: Optional[int] = None
    metric_to_source: int = 0
    entry_timer: Optional[Timer] = None
    downstream: Dict[int, DownstreamState] = field(default_factory=dict)
    #: True after we sent a Prune upstream and before grafting back.
    pruned_upstream: bool = False
    last_prune_sent: float = float("-inf")
    graft_retry_timer: Optional[Timer] = None
    #: Statistics for the experiments.
    packets_forwarded: int = 0
    packets_discarded: int = 0

    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple:
        return sg_key(self.source, self.group)

    def downstream_state(self, iface: Interface) -> DownstreamState:
        state = self.downstream.get(iface.uid)
        if state is None:
            state = DownstreamState(iface=iface)
            self.downstream[iface.uid] = state
        return state

    def upstream_target(self) -> Optional[Address]:
        """Whom to address Prunes/Grafts to (assert winner beats FIB)."""
        return (
            self.upstream_assert_winner
            if self.upstream_assert_winner is not None
            else self.upstream_neighbor
        )

    def stop_all_timers(self) -> None:
        if self.entry_timer is not None:
            self.entry_timer.stop()
        if self.graft_retry_timer is not None:
            self.graft_retry_timer.stop()
        for state in self.downstream.values():
            state.clear_prune()
            state.clear_assert()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        up = self.upstream_iface.name if self.upstream_iface else "?"
        return f"<SgEntry ({self.source},{self.group}) up={up}>"
