"""PIM-DM (S,G) forwarding state.

Each router keeps one :class:`SgEntry` per (Source, Group) pair it has
seen traffic (or control messages) for — the "(S, G) entry" of paper
§3.1 — holding:

* the **incoming (upstream) interface** — the RPF interface toward S,
* the **upstream neighbor** — target of Prunes/Grafts (None when the
  source's link is directly attached, i.e. this is a first-hop router),
* per-downstream-interface state: prune-pending (the T_PruneDel
  window), pruned (with hold timer), assert-loser (with assert timer),
* the entry **data timeout** (210 s default) after which state for a
  silent source is deleted — the reason a moved sender's old tree
  lingers (paper §4.2.2-A),
* upstream bookkeeping: whether we pruned upstream, graft-ack pending.

Two interchangeable state *representations* back the same API
(``PimDmConfig.state_backend``):

* ``"dict"`` — the seed representation: entries keyed by the
  128-bit-address pair :func:`sg_key`, per-interface state in a
  ``dict`` of :class:`DownstreamState` dataclasses with plain boolean
  flags.
* ``"compact"`` (default) — entries keyed by a small interned integer
  (:class:`SgInterner`), per-interface state in an array indexed by
  the per-node interface uid, pruned / assert-loser flags pooled into
  two :class:`OifSet` bitmasks per entry, and slotted state objects.

Both must produce byte-identical traces — the differential golden
tests pin that — so behaviour (creation order, timer logic, iteration
where it matters) is shared; only the storage shape differs.  The
analytic per-object byte model used by the scaling study lives in
:mod:`repro.net.stats` (``STATE_BYTE_COSTS``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..net.addressing import Address
from ..net.interface import Interface
from ..sim import Timer

__all__ = [
    "CompactDownstreamState",
    "CompactDownstreamTable",
    "DictDownstreamTable",
    "DownstreamState",
    "OifSet",
    "STATE_BACKENDS",
    "SgEntry",
    "SgInterner",
    "StateStore",
    "sg_key",
]

#: Selectable values for ``PimDmConfig.state_backend``.
STATE_BACKENDS = ("dict", "compact")


def sg_key(source: Address, group: Address) -> tuple:
    return (Address(source).as_int(), Address(group).as_int())


# ----------------------------------------------------------------------
# compact building blocks
# ----------------------------------------------------------------------
class OifSet:
    """A set of small interface uids stored as one int bitmask.

    The per-node interface uid allocator hands out 1, 2, 3, ... so the
    mask stays a machine word for any realistic router degree.  This is
    the "array/bitset-backed oif set" of ROADMAP item 1: membership,
    add, and discard are single bit operations and the whole set costs
    one integer instead of a hash table.
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0) -> None:
        if bits < 0:
            raise ValueError("OifSet bits must be non-negative")
        self._bits = bits

    def add(self, uid: int) -> None:
        self._bits |= 1 << uid

    def discard(self, uid: int) -> None:
        self._bits &= ~(1 << uid)

    def clear(self) -> None:
        self._bits = 0

    def as_int(self) -> int:
        return self._bits

    def __contains__(self, uid: int) -> bool:
        return bool((self._bits >> uid) & 1)

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        uid = 0
        while bits:
            if bits & 1:
                yield uid
            bits >>= 1
            uid += 1

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OifSet):
            return self._bits == other._bits
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OifSet({sorted(self)})"


class SgInterner:
    """Bidirectional Address ↔ small-int table shared by one engine.

    Sources and groups are interned on first sight (ids are dense and
    deterministic given the event order), and an (S,G) pair maps to one
    small integer used as the ``entries`` dict key — replacing the
    seed's tuple of two 128-bit address ints.
    """

    __slots__ = ("_address_ids", "_addresses", "_sg_ids")

    def __init__(self) -> None:
        self._address_ids: Dict[int, int] = {}
        self._addresses: List[Address] = []
        self._sg_ids: Dict[Tuple[int, int], int] = {}

    def intern_address(self, address: Address) -> int:
        address = Address(address)
        raw = address.as_int()
        ident = self._address_ids.get(raw)
        if ident is None:
            ident = len(self._addresses)
            self._address_ids[raw] = ident
            self._addresses.append(address)
        return ident

    def address(self, ident: int) -> Address:
        return self._addresses[ident]

    def intern_sg(self, source: Address, group: Address) -> int:
        pair = (self.intern_address(source), self.intern_address(group))
        ident = self._sg_ids.get(pair)
        if ident is None:
            ident = len(self._sg_ids)
            self._sg_ids[pair] = ident
        return ident

    def __len__(self) -> int:
        return len(self._addresses)


# ----------------------------------------------------------------------
# downstream per-interface state
# ----------------------------------------------------------------------
@dataclass
class DownstreamState:
    """Per-(S,G)-per-downstream-interface state (dict backend)."""

    iface: Interface
    #: Prune received, waiting T_PruneDel for a possible Join override.
    prune_pending_timer: Optional[Timer] = None
    #: Interface pruned; forwarding resumes when the hold timer fires.
    pruned: bool = False
    prune_hold_timer: Optional[Timer] = None
    #: This router lost an assert election on the interface.
    assert_loser: bool = False
    assert_timer: Optional[Timer] = None
    assert_winner: Optional[Address] = None
    assert_winner_metric: Optional[int] = None

    @property
    def prune_pending(self) -> bool:
        return (
            self.prune_pending_timer is not None and self.prune_pending_timer.running
        )

    def clear_prune(self) -> None:
        if self.prune_pending_timer is not None:
            self.prune_pending_timer.stop()
            self.prune_pending_timer = None
        if self.prune_hold_timer is not None:
            self.prune_hold_timer.stop()
            self.prune_hold_timer = None
        self.pruned = False

    def clear_assert(self) -> None:
        if self.assert_timer is not None:
            self.assert_timer.stop()
            self.assert_timer = None
        self.assert_loser = False
        self.assert_winner = None
        self.assert_winner_metric = None


class CompactDownstreamState:
    """Downstream state with flags pooled into the table's bitmasks.

    Same duck-typed surface as :class:`DownstreamState` (the engine
    never branches on the backend); ``pruned`` / ``assert_loser`` read
    and write the owning :class:`CompactDownstreamTable`'s
    :class:`OifSet` masks instead of per-object booleans, and the
    object itself is slotted.
    """

    __slots__ = (
        "iface",
        "prune_pending_timer",
        "prune_hold_timer",
        "assert_timer",
        "assert_winner",
        "assert_winner_metric",
        "_table",
    )

    def __init__(self, iface: Interface, table: "CompactDownstreamTable") -> None:
        self.iface = iface
        self.prune_pending_timer: Optional[Timer] = None
        self.prune_hold_timer: Optional[Timer] = None
        self.assert_timer: Optional[Timer] = None
        self.assert_winner: Optional[Address] = None
        self.assert_winner_metric: Optional[int] = None
        self._table = table

    @property
    def pruned(self) -> bool:
        return self.iface.uid in self._table.pruned_oifs

    @pruned.setter
    def pruned(self, value: bool) -> None:
        if value:
            self._table.pruned_oifs.add(self.iface.uid)
        else:
            self._table.pruned_oifs.discard(self.iface.uid)

    @property
    def assert_loser(self) -> bool:
        return self.iface.uid in self._table.assert_loser_oifs

    @assert_loser.setter
    def assert_loser(self, value: bool) -> None:
        if value:
            self._table.assert_loser_oifs.add(self.iface.uid)
        else:
            self._table.assert_loser_oifs.discard(self.iface.uid)

    @property
    def prune_pending(self) -> bool:
        return (
            self.prune_pending_timer is not None and self.prune_pending_timer.running
        )

    def clear_prune(self) -> None:
        if self.prune_pending_timer is not None:
            self.prune_pending_timer.stop()
            self.prune_pending_timer = None
        if self.prune_hold_timer is not None:
            self.prune_hold_timer.stop()
            self.prune_hold_timer = None
        self.pruned = False

    def clear_assert(self) -> None:
        if self.assert_timer is not None:
            self.assert_timer.stop()
            self.assert_timer = None
        self.assert_loser = False
        self.assert_winner = None
        self.assert_winner_metric = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompactDownstreamState {self.iface.name}"
            f" pruned={self.pruned} assert_loser={self.assert_loser}>"
        )


class DictDownstreamTable(dict):
    """Seed representation: a plain ``{iface uid: DownstreamState}``.

    Subclasses ``dict`` so ``get`` / ``values`` / iteration keep the
    exact seed semantics; only on-demand creation is added.
    """

    __slots__ = ()

    def state_for(self, iface: Interface) -> DownstreamState:
        state = self.get(iface.uid)
        if state is None:
            state = DownstreamState(iface=iface)
            self[iface.uid] = state
        return state


class CompactDownstreamTable:
    """Array-backed downstream table indexed by per-node iface uid.

    Lookups are list indexing (uids are dense small ints), and the
    per-interface pruned / assert-loser flags live in two shared
    :class:`OifSet` masks, so per-state objects shrink to timers and
    assert bookkeeping.
    """

    __slots__ = ("_states", "pruned_oifs", "assert_loser_oifs")

    def __init__(self) -> None:
        self._states: List[Optional[CompactDownstreamState]] = []
        self.pruned_oifs = OifSet()
        self.assert_loser_oifs = OifSet()

    def get(self, uid: int) -> Optional[CompactDownstreamState]:
        if 0 <= uid < len(self._states):
            return self._states[uid]
        return None

    def state_for(self, iface: Interface) -> CompactDownstreamState:
        uid = iface.uid
        if uid >= len(self._states):
            self._states.extend([None] * (uid + 1 - len(self._states)))
        state = self._states[uid]
        if state is None:
            state = CompactDownstreamState(iface, self)
            self._states[uid] = state
        return state

    def values(self) -> List[CompactDownstreamState]:
        return [s for s in self._states if s is not None]

    def __len__(self) -> int:
        return sum(1 for s in self._states if s is not None)

    def __bool__(self) -> bool:
        return any(s is not None for s in self._states)

    def __iter__(self) -> Iterator[int]:
        return iter(s.iface.uid for s in self._states if s is not None)


# ----------------------------------------------------------------------
# (S,G) entry
# ----------------------------------------------------------------------
@dataclass
class SgEntry:
    """One (Source, Group) multicast forwarding entry."""

    source: Address
    group: Address
    upstream_iface: Optional[Interface]
    #: FIB next hop toward the source (None at a first-hop router).
    upstream_neighbor: Optional[Address]
    #: Assert winner on the upstream link overrides the FIB next hop as
    #: the target of Grafts/Prunes (paper §3.1: "downstream routers ...
    #: store the elected forwarder for later PIM-DM protocol actions").
    upstream_assert_winner: Optional[Address] = None
    upstream_assert_winner_metric: Optional[int] = None
    metric_to_source: int = 0
    entry_timer: Optional[Timer] = None
    downstream: "DictDownstreamTable | CompactDownstreamTable" = field(
        default_factory=DictDownstreamTable
    )
    #: True after we sent a Prune upstream and before grafting back.
    pruned_upstream: bool = False
    last_prune_sent: float = float("-inf")
    graft_retry_timer: Optional[Timer] = None
    #: Grafts sent since the last Graft-Ack: drives the
    #: capped-exponential retry backoff (graceful degradation under
    #: sustained upstream loss).  Reset on ack.
    graft_retries: int = 0
    #: Statistics for the experiments.
    packets_forwarded: int = 0
    packets_discarded: int = 0
    #: The ``entries`` dict key: the interned small int under the
    #: compact backend, None (→ computed :func:`sg_key`) under dict.
    interned_key: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def key(self):
        if self.interned_key is not None:
            return self.interned_key
        return sg_key(self.source, self.group)

    def downstream_state(self, iface: Interface):
        table = self.downstream
        state_for = getattr(table, "state_for", None)
        if state_for is not None:
            return state_for(iface)
        # plain-dict table passed by hand (legacy tests): seed inline path
        state = table.get(iface.uid)
        if state is None:
            state = DownstreamState(iface=iface)
            table[iface.uid] = state
        return state

    def upstream_target(self) -> Optional[Address]:
        """Whom to address Prunes/Grafts to (assert winner beats FIB)."""
        return (
            self.upstream_assert_winner
            if self.upstream_assert_winner is not None
            else self.upstream_neighbor
        )

    def stop_all_timers(self) -> None:
        if self.entry_timer is not None:
            self.entry_timer.stop()
        if self.graft_retry_timer is not None:
            self.graft_retry_timer.stop()
        for state in self.downstream.values():
            state.clear_prune()
            state.clear_assert()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        up = self.upstream_iface.name if self.upstream_iface else "?"
        return f"<SgEntry ({self.source},{self.group}) up={up}>"


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class StateStore:
    """Keying + entry construction for one engine's chosen backend.

    The engine asks the store for dict keys and fresh entries; every
    other code path handles :class:`SgEntry` through its shared API, so
    switching representations cannot change behaviour.
    """

    __slots__ = ("backend", "interner")

    def __init__(self, backend: str = "compact") -> None:
        if backend not in STATE_BACKENDS:
            raise ValueError(
                f"unknown state backend {backend!r}; expected one of {STATE_BACKENDS}"
            )
        self.backend = backend
        self.interner: Optional[SgInterner] = (
            SgInterner() if backend == "compact" else None
        )

    def key(self, source: Address, group: Address):
        if self.interner is not None:
            return self.interner.intern_sg(source, group)
        return sg_key(source, group)

    def new_entry(
        self,
        source: Address,
        group: Address,
        upstream_iface: Optional[Interface],
        upstream_neighbor: Optional[Address],
        metric_to_source: int,
    ) -> SgEntry:
        source = Address(source)
        group = Address(group)
        if self.interner is not None:
            return SgEntry(
                source=source,
                group=group,
                upstream_iface=upstream_iface,
                upstream_neighbor=upstream_neighbor,
                metric_to_source=metric_to_source,
                downstream=CompactDownstreamTable(),
                interned_key=self.interner.intern_sg(source, group),
            )
        return SgEntry(
            source=source,
            group=group,
            upstream_iface=upstream_iface,
            upstream_neighbor=upstream_neighbor,
            metric_to_source=metric_to_source,
        )

    def reset(self) -> None:
        """Crash support: discard interned ids with the rest of state."""
        if self.interner is not None:
            self.interner = SgInterner()
