"""PIM version 2 message types used by Dense Mode.

Sizes approximate the PIMv2 wire encodings (4-byte PIM header plus
encoded unicast/group/source addresses, 18/20 bytes each for IPv6):

* Hello: header + holdtime option                        ≈ 30 bytes
* Join/Prune: header + upstream neighbor + 1 group
  + 1 joined/pruned source                               ≈ 62 bytes
* Graft / Graft-Ack: same format as Join/Prune           ≈ 62 bytes
* Assert: header + group + source + metric words         ≈ 48 bytes
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.addressing import Address
from ..net.messages import Message

__all__ = [
    "PimMessage",
    "PimHello",
    "PimJoin",
    "PimPrune",
    "PimGraft",
    "PimGraftAck",
    "PimAssert",
    "PimStateRefresh",
]


class PimMessage(Message):
    """Common base for PIM control messages."""

    protocol = "pim"


@dataclass(frozen=True)
class PimHello(PimMessage):
    """PIM Hello: neighbor discovery/keepalive on each link."""

    holdtime: float = 105.0

    @property
    def size_bytes(self) -> int:
        return 30

    def describe(self) -> str:
        return "PIM-Hello"


@dataclass(frozen=True)
class _SgMessage(PimMessage):
    source: Address
    group: Address

    @property
    def size_bytes(self) -> int:
        return 62


@dataclass(frozen=True)
class PimJoin(_SgMessage):
    """Join — in DM used only to override a Prune heard on a LAN whose
    traffic this router still needs (paper §3.1)."""

    upstream_neighbor: Optional[Address] = None

    def describe(self) -> str:
        return f"PIM-Join[{self.source}->{self.group}]"


@dataclass(frozen=True)
class PimPrune(_SgMessage):
    """Prune — stop forwarding (S,G) onto the link after T_PruneDel."""

    upstream_neighbor: Optional[Address] = None
    holdtime: float = 210.0

    def describe(self) -> str:
        return f"PIM-Prune[{self.source}->{self.group}]"


@dataclass(frozen=True)
class PimGraft(_SgMessage):
    """Graft — reinstate forwarding for a previously pruned branch
    (unicast to the upstream neighbor; paper §3.1)."""

    def describe(self) -> str:
        return f"PIM-Graft[{self.source}->{self.group}]"


@dataclass(frozen=True)
class PimGraftAck(_SgMessage):
    """Graft-Ack — acknowledges a Graft hop-by-hop."""

    def describe(self) -> str:
        return f"PIM-GraftAck[{self.source}->{self.group}]"


@dataclass(frozen=True)
class PimStateRefresh(_SgMessage):
    """State Refresh (RFC 3973 §4.5.1): originated by first-hop routers
    and flooded down the broadcast tree, refreshing downstream prune
    state so pruned branches stay pruned without periodic data floods.

    ``originator`` is the first-hop router; ``metric`` its route metric
    toward the source; ``ttl`` bounds the propagation depth.
    """

    originator: Optional[Address] = None
    metric: int = 0
    interval: float = 60.0
    ttl: int = 16

    @property
    def size_bytes(self) -> int:
        return 64

    def describe(self) -> str:
        return f"PIM-StateRefresh[{self.source}->{self.group}]"


@dataclass(frozen=True)
class PimAssert(_SgMessage):
    """Assert — single-forwarder election on a multi-access link.

    ``metric`` is the sender's unicast routing metric toward the source;
    lower metric wins, ties break toward the numerically *higher*
    sender address (PIMv2 §3.5).
    """

    metric: int = 0

    @property
    def size_bytes(self) -> int:
        return 48

    def describe(self) -> str:
        return f"PIM-Assert[{self.source}->{self.group} m={self.metric}]"
