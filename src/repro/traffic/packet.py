"""Per-packet traffic model (the historical, exact mode).

A thin adapter over :class:`~repro.traffic.sources.CbrSource` /
:class:`~repro.traffic.sources.OnOffSource`: every datagram is a real
simulator event through ``Link.transmit``, so ``attach``/``sync`` are
no-ops and the sources constructed here are byte-identical to the
pre-refactor behaviour (golden traces unchanged).
"""

from __future__ import annotations

from typing import Optional

from .base import TrafficModel, register_traffic_model
from .sources import CbrSource, OnOffSource

__all__ = ["PacketModel"]


@register_traffic_model("packet")
class PacketModel(TrafficModel):
    name = "packet"

    def __init__(self, **_ignored) -> None:
        self.net = None
        self.sources = []

    def attach(self, net) -> None:
        self.net = net

    def add_cbr(
        self,
        node,
        group,
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        flow: Optional[str] = None,
    ) -> CbrSource:
        src = CbrSource(node, group, packet_interval, payload_bytes, flow)
        self.sources.append(src)
        return src

    def add_onoff(
        self,
        node,
        group,
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        mean_on: float = 10.0,
        mean_off: float = 10.0,
        flow: Optional[str] = None,
    ) -> OnOffSource:
        src = OnOffSource(
            node, group, packet_interval, payload_bytes, mean_on, mean_off, flow
        )
        self.sources.append(src)
        return src
