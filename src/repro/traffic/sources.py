"""Multicast traffic generators.

The paper's bandwidth analysis scales with "the bit rate of the sender"
(§4.3.1); :class:`CbrSource` provides a constant-bit-rate multicast
flow, :class:`OnOffSource` a bursty one.  Both work with plain hosts
and mobile nodes (a mobile node routes the datagram through whichever
sending mode — local or home-agent tunnel — is active, and datagrams
generated while between links are counted as handoff losses).

Flow names are auto-assigned from a per-process counter that
:class:`~repro.net.topology.Network` resets on construction (mirroring
``reset_packet_uids``), so flow names never depend on how many
scenarios ran earlier in the same process.
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from ..mipv6.mobile_node import MobileNode
from ..net.addressing import Address
from ..net.messages import ApplicationData
from ..net.node import Host
from ..sim import Event

__all__ = ["CbrSource", "OnOffSource", "reset_flow_counter"]

_flow_counter = itertools.count(1)


def reset_flow_counter() -> None:
    """Restart auto-assigned flow names at ``-flow1``.

    Called by ``Network.__init__`` so flow naming is deterministic per
    scenario regardless of process history.
    """
    global _flow_counter
    _flow_counter = itertools.count(1)


class CbrSource:
    """Constant-bit-rate multicast source.

    >>> # src = CbrSource(host, group, packet_interval=0.1)  # 10 pkt/s
    """

    def __init__(
        self,
        node: Union[Host, MobileNode],
        group: Address,
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        flow: Optional[str] = None,
    ) -> None:
        if packet_interval <= 0:
            raise ValueError("packet_interval must be positive")
        if payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        self.node = node
        self.group = Address(group)
        self.packet_interval = packet_interval
        self.payload_bytes = payload_bytes
        self.flow = flow or f"{node.name}-flow{next(_flow_counter)}"
        self.sent = 0
        self._running = False
        self._event: Optional[Event] = None

    @property
    def bit_rate(self) -> float:
        """Application-layer bit rate in bit/s."""
        return self.payload_bytes * 8 / self.packet_interval

    @property
    def mean_bit_rate(self) -> float:
        """Long-run average bit rate in bit/s (equals :attr:`bit_rate`
        for an always-on CBR source)."""
        return self.bit_rate

    def start(self, at: Optional[float] = None) -> None:
        """Begin transmission now (or at an absolute time)."""
        if at is None or at <= self.node.sim.now:
            self._begin()
        else:
            self.node.sim.schedule_at(at, self._begin, label=f"{self.flow}.start")

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _begin(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick()

    def _tick(self) -> None:
        if not self._running:
            return
        self._send_one()
        self._event = self.node.sim.schedule(
            self.packet_interval, self._tick, label=f"{self.flow}.tick"
        )

    def _send_one(self) -> None:
        message = ApplicationData(
            seqno=self.sent,
            payload_bytes=self.payload_bytes,
            flow=self.flow,
            sent_at=self.node.sim.now,
        )
        self.sent += 1
        if isinstance(self.node, MobileNode):
            self.node.send_app_multicast(self.group, message)
        else:
            self.node.send_multicast(self.group, message)


class OnOffSource(CbrSource):
    """CBR source with exponentially distributed ON/OFF phases."""

    def __init__(
        self,
        node: Union[Host, MobileNode],
        group: Address,
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        mean_on: float = 10.0,
        mean_off: float = 10.0,
        flow: Optional[str] = None,
    ) -> None:
        super().__init__(node, group, packet_interval, payload_bytes, flow)
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("mean_on/mean_off must be positive")
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._rng = node.rng.stream(f"onoff.{self.flow}")
        self._on_phase = True

    @property
    def duty_cycle(self) -> float:
        """Long-run fraction of time spent in the ON phase."""
        return self.mean_on / (self.mean_on + self.mean_off)

    @property
    def mean_bit_rate(self) -> float:
        """Long-run average bit rate in bit/s: the peak CBR rate scaled
        by the ON/OFF duty cycle."""
        return self.bit_rate * self.duty_cycle

    def _begin(self) -> None:
        if self._running:
            return
        self._running = True
        self._on_phase = True
        self._schedule_phase_end()
        self._tick()

    def _schedule_phase_end(self) -> None:
        mean = self.mean_on if self._on_phase else self.mean_off
        self.node.sim.schedule(
            self._rng.expovariate(1.0 / mean),
            self._toggle_phase,
            label=f"{self.flow}.phase",
        )

    def _toggle_phase(self) -> None:
        if not self._running:
            return
        self._on_phase = not self._on_phase
        self._schedule_phase_end()

    def _tick(self) -> None:
        if not self._running:
            return
        if self._on_phase:
            self._send_one()
        self._event = self.node.sim.schedule(
            self.packet_interval, self._tick, label=f"{self.flow}.tick"
        )
