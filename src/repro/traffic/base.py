"""Traffic-model interface.

A *traffic model* decides how application data flows become bytes on
links.  Two implementations exist:

``packet`` (:class:`~repro.traffic.packet.PacketModel`)
    The historical mode: every datagram is a discrete simulator event
    travelling through ``Link.transmit``.  Exact, but a 10⁴-receiver
    cell costs ~10⁷ events per simulated minute.

``fluid`` (:class:`~repro.traffic.fluid.FluidModel`)
    Each (S,G) flow is a piecewise-constant rate.  Per-link byte
    counts, tunnel overhead, waste and delivery are integrated
    analytically between protocol events; only sparse *probe* packets
    are simulated to keep PIM-DM's data-driven control plane alive.

Both emit the same :class:`~repro.net.stats.NetworkStats` §4.3 metrics
so scenarios, campaigns and analysis code are model-agnostic.  See
``docs/TRAFFIC.md`` for the tolerance contract between the two modes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mipv6.mobile_node import MobileNode
    from ..net.addressing import Address
    from ..net.node import Host
    from ..net.topology import Network
    from .sources import CbrSource

TRAFFIC_MODELS = ("packet", "fluid")


class TrafficModel(ABC):
    """How application flows turn into per-link byte accounting."""

    #: registry name ("packet" / "fluid")
    name: str = "?"

    @abstractmethod
    def attach(self, net: "Network") -> None:
        """Bind the model to a network before any flow is created."""

    @abstractmethod
    def add_cbr(
        self,
        node: "Union[Host, MobileNode]",
        group: "Address",
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        flow: Optional[str] = None,
    ):
        """Create a constant-bit-rate flow; returns a source with the
        ``CbrSource`` surface (``start``/``stop``/``bit_rate``/``flow``)."""

    @abstractmethod
    def add_onoff(
        self,
        node: "Union[Host, MobileNode]",
        group: "Address",
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        mean_on: float = 10.0,
        mean_off: float = 10.0,
        flow: Optional[str] = None,
    ):
        """Create an ON/OFF flow; returns an ``OnOffSource``-like source."""

    def sync(self) -> None:
        """Bring byte accounting up to ``sim.now``.

        Call before reading :class:`~repro.net.stats.NetworkStats` or
        node load counters.  A no-op for the packet model, which
        accounts on every transmission anyway.
        """

    def finish(self) -> None:
        """Final sync at end of scenario (stops nothing by itself)."""
        self.sync()

    def describe(self) -> Dict[str, object]:
        """Small JSON-able summary for experiment result rows."""
        return {"traffic_model": self.name}


_FACTORIES: Dict[str, Callable[..., TrafficModel]] = {}


def register_traffic_model(name: str):
    def deco(factory: Callable[..., TrafficModel]):
        _FACTORIES[name] = factory
        return factory

    return deco


def make_traffic_model(name: str = "packet", **kwargs) -> TrafficModel:
    """Instantiate a traffic model by registry name.

    ``kwargs`` are model-specific (e.g. ``probe_interval`` for the
    fluid model) and silently ignored by models that don't take them.
    """
    # Import for the registration side effect.
    from . import fluid as _fluid  # noqa: F401
    from . import packet as _packet  # noqa: F401

    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic model {name!r}; expected one of {TRAFFIC_MODELS}"
        ) from None
    return factory(**kwargs)
