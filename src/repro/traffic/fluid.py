"""Flow-level (fluid) traffic model.

Represents each (S,G) flow as a piecewise-constant rate and integrates
per-link byte counts **analytically** between protocol events instead
of simulating every datagram.  A 10⁴-receiver EXP-S1 cell needs ~10⁷
packet events per simulated minute in packet mode; fluid mode replaces
them with one O(tree) rate recomputation per protocol-event timestamp,
which is what makes 10⁶-receiver cells tractable (ROADMAP item 2).

How it works
------------

* **Probes.**  PIM-DM is data-driven: (S,G) state is created by data
  arrival, prunes/asserts are triggered by data on the wrong interface,
  and entries expire without data.  So each fluid flow still transmits
  *real* datagrams — sparse probes, one every ``probe_interval``
  (default ``100 x packet_interval``, well under the 210 s data
  timeout) — through the completely unmodified packet path.  Probes
  keep the control plane, spans, invariants and receiver apps alive.
  Their bytes are diverted to the ``fluid_probe`` stats category
  (:data:`repro.net.stats.FLUID_PROBE_CATEGORY`) so data categories
  stay analytic-exact.

* **Rate table.**  Between protocol events the flow's full rate
  ``R = (payload + 40) / packet_interval`` bytes/s is charged to every
  link of the current distribution tree: the tree is walked from the
  emission link following exactly the packet-mode forwarding rules
  (RPF check against ``entry.upstream_iface``, ``outgoing_ifaces``,
  home-agent tunnel relay per binding-cache subscriber, Mobile IPv6
  send modes).  Loss models become rate multipliers via ``mean_loss``
  (Gilbert–Elliott: stationary expected throughput).

* **Integration.**  A trace listener watches the protocol-event
  categories (pim/pim.state/mld/mipv6/mobility/fault).  On the first
  event of a new timestamp the elapsed interval is integrated with the
  *old* table (no protocol event happened strictly inside it, so the
  rates were constant); a zero-delay recomputation is scheduled so the
  new table reflects every same-timestamp state change.  Direct link
  mutations (``set_down`` without a fault plan) are caught by
  ``Link.add_on_change``.  Synthetic boundary events are emitted under
  the ``fluid`` trace category whenever a link's rate changes, so
  offline analysis can still see tree boundaries.

See ``docs/TRAFFIC.md`` for the packet-vs-fluid tolerance contract.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List, Optional, Tuple

from ..mipv6.config import DeliveryMode
from ..mipv6.mobile_node import MobileNode
from ..net.addressing import Address
from ..net.messages import ApplicationData
from ..net.packet import IPV6_HEADER_BYTES
from .base import TrafficModel, register_traffic_model
from .sources import CbrSource, OnOffSource

__all__ = ["FluidModel", "FluidSource", "FluidOnOffSource", "DEFAULT_PROBE_FACTOR"]

#: probe cadence relative to the flow's packet interval
DEFAULT_PROBE_FACTOR = 100.0

#: trace events in the subscribed categories that recur per-packet or
#: periodically without changing any forwarding state — ignoring them
#: keeps recomputation off the probe/report fast paths
_QUIET_EVENTS = frozenset(
    {
        # periodic control chatter
        "state-refresh-sent",
        "query-sent",
        # per-report / per-host MLD noise (membership changes surface as
        # members-detected / members-gone on the router side)
        "report-sent",
        "done-sent",
        "join",
        "leave",
        "suppressed",
        # per-datagram Mobile IPv6 events (fire per probe in fluid mode)
        "decapsulate",
        "tunnel-mcast-received",
        "tunnel-mcast-to-mn",
        "reverse-tunnel-send",
        "route-optimized-send",
        "send-lost-detached",
        "erroneous-source-send",
        # retransmission timers (the state change traces separately)
        "bu-retransmit",
        "binding-request-sent",
        "binding-request-received",
    }
)

_LISTEN_CATEGORIES = frozenset(
    {"pim", "pim.state", "mld", "mipv6", "mobility", "fault"}
)

#: router-side MLD membership changes: a (re)joined listener is waiting
#: for data, so the model fires an out-of-cycle probe instead of letting
#: the join delay snap to the probe cadence (see ``_request_resync``)
_MEMBERSHIP_EVENTS = frozenset({"members-detected", "static-join"})

_MAX_HOPS = 64


class FluidSource(CbrSource):
    """CBR flow under the fluid model: analytic rate + sparse probes.

    Mirrors the :class:`~repro.traffic.sources.CbrSource` surface
    (``start``/``stop``/``bit_rate``/``flow``/``sent``) so scenario
    code is model-agnostic; ``sent`` counts *probes*.
    """

    def __init__(
        self,
        model: "FluidModel",
        node,
        group,
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        flow: Optional[str] = None,
        probe_interval: Optional[float] = None,
    ) -> None:
        super().__init__(node, group, packet_interval, payload_bytes, flow)
        self.model = model
        if probe_interval is None:
            probe_interval = packet_interval * DEFAULT_PROBE_FACTOR
        if probe_interval < packet_interval:
            raise ValueError("probe_interval must be >= packet_interval")
        self.probe_interval = probe_interval

    @property
    def emitting(self) -> bool:
        """Is the flow contributing rate right now?"""
        return self._running

    def _begin(self) -> None:
        if self._running:
            return
        self._running = True
        self.model.on_flow_change(self)
        self._tick()

    def stop(self) -> None:
        was_running = self._running
        super().stop()
        if was_running:
            self.model.on_flow_change(self)

    def _tick(self) -> None:
        if not self._running:
            return
        self._send_one()
        self._event = self.node.sim.schedule(
            self.probe_interval, self._tick, label=f"{self.flow}.probe"
        )

    def _send_one(self) -> None:
        message = ApplicationData(
            seqno=self.sent,
            payload_bytes=self.payload_bytes,
            flow=self.flow,
            sent_at=self.node.sim.now,
            probe=True,
        )
        self.sent += 1
        if isinstance(self.node, MobileNode):
            self.node.send_app_multicast(self.group, message)
        else:
            self.node.send_multicast(self.group, message)


class FluidOnOffSource(FluidSource):
    """ON/OFF flow under the fluid model.

    Phase boundaries are rate boundaries: the model re-integrates on
    every toggle.  Probes are emitted only during ON phases.  Uses the
    same per-flow RNG stream name as the packet-mode
    :class:`~repro.traffic.sources.OnOffSource`.
    """

    def __init__(
        self,
        model,
        node,
        group,
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        mean_on: float = 10.0,
        mean_off: float = 10.0,
        flow: Optional[str] = None,
        probe_interval: Optional[float] = None,
    ) -> None:
        super().__init__(
            model, node, group, packet_interval, payload_bytes, flow, probe_interval
        )
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("mean_on/mean_off must be positive")
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._rng = node.rng.stream(f"onoff.{self.flow}")
        self._on_phase = True

    @property
    def duty_cycle(self) -> float:
        return self.mean_on / (self.mean_on + self.mean_off)

    @property
    def mean_bit_rate(self) -> float:
        return self.bit_rate * self.duty_cycle

    @property
    def emitting(self) -> bool:
        return self._running and self._on_phase

    def _begin(self) -> None:
        if self._running:
            return
        self._running = True
        self._on_phase = True
        self._schedule_phase_end()
        self.model.on_flow_change(self)
        self._tick()

    def _schedule_phase_end(self) -> None:
        mean = self.mean_on if self._on_phase else self.mean_off
        self.node.sim.schedule(
            self._rng.expovariate(1.0 / mean),
            self._toggle_phase,
            label=f"{self.flow}.phase",
        )

    def _toggle_phase(self) -> None:
        if not self._running:
            return
        self._on_phase = not self._on_phase
        self._schedule_phase_end()
        self.model.on_flow_change(self)

    def _tick(self) -> None:
        if not self._running:
            return
        if self._on_phase:
            self._send_one()
        self._event = self.node.sim.schedule(
            self.probe_interval, self._tick, label=f"{self.flow}.probe"
        )


@register_traffic_model("fluid")
class FluidModel(TrafficModel):
    name = "fluid"

    def __init__(self, probe_interval: Optional[float] = None) -> None:
        #: default probe interval for new flows (None: 100 x packet_interval)
        self.probe_interval = probe_interval
        self.net = None
        self.flows: List[FluidSource] = []
        self._last_sync = 0.0
        self._recompute_pending = False
        #: link name -> category -> (bytes/s, packets/s)
        self._link_rates: Dict[str, Dict[str, Tuple[float, float]]] = {}
        #: counter top-up rates: (kind, obj, key) where kind is "load"
        #: (node.load[key]) or "attr" (setattr on obj)
        self._counter_rates: List[Tuple[str, object, str, float]] = []
        #: member-host delivery rates (bytes/s of inner packet)
        self._delivery_rates: Dict[str, float] = {}
        #: analytic loss rates by reason (bytes/s)
        self._loss_rates: Dict[str, float] = {}
        # accumulated analytic totals
        self.delivered_bytes: Dict[str, float] = defaultdict(float)
        self.lost_bytes: Dict[str, float] = defaultdict(float)
        self.analytic_bytes = 0.0
        self.analytic_packets = 0.0
        self.recomputes = 0
        self.integrations = 0
        # out-of-cycle probe dedup: flows already resynced at _resync_at
        self._resync_at = -1.0
        self._resync_flows: set = set()

    # ------------------------------------------------------------------
    # TrafficModel interface
    # ------------------------------------------------------------------
    def attach(self, net) -> None:
        self.net = net
        self._last_sync = net.sim.now
        net.tracer.add_listener(self._on_trace, categories=_LISTEN_CATEGORIES)
        for link in net.links.values():
            link.add_on_change(self._on_link_change)

    def add_cbr(
        self,
        node,
        group,
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        flow: Optional[str] = None,
    ) -> FluidSource:
        src = FluidSource(
            self, node, group, packet_interval, payload_bytes, flow,
            probe_interval=self.probe_interval,
        )
        self.flows.append(src)
        return src

    def add_onoff(
        self,
        node,
        group,
        packet_interval: float = 0.1,
        payload_bytes: int = 1000,
        mean_on: float = 10.0,
        mean_off: float = 10.0,
        flow: Optional[str] = None,
    ) -> FluidOnOffSource:
        src = FluidOnOffSource(
            self, node, group, packet_interval, payload_bytes,
            mean_on, mean_off, flow, probe_interval=self.probe_interval,
        )
        self.flows.append(src)
        return src

    def sync(self) -> None:
        """Integrate accumulated rate-time up to ``sim.now``."""
        if self.net is None:
            return
        now = self.net.sim.now
        if now > self._last_sync:
            self._integrate(now)

    def probes_sent(self) -> int:
        return sum(src.sent for src in self.flows)

    def describe(self) -> Dict[str, object]:
        return {
            "traffic_model": self.name,
            "flows": len(self.flows),
            "probes_sent": self.probes_sent(),
            "recomputes": self.recomputes,
            "analytic_bytes": self.analytic_bytes,
            "analytic_packets": self.analytic_packets,
            "delivered_bytes": sum(self.delivered_bytes.values()),
            "lost_bytes": dict(self.lost_bytes),
        }

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def on_flow_change(self, _src) -> None:
        self._touch()

    def _on_trace(self, event) -> None:
        kind = event.detail.get("event")
        if kind in _QUIET_EVENTS:
            return
        if kind == "node-restart" and event.category == "fault":
            self._resync_after_restart()
        elif event.category == "mld" and kind in _MEMBERSHIP_EVENTS:
            # A listener (re)appeared on some router: in packet mode the
            # next datagram arrives within one packet_interval and drives
            # the graft machinery forward; fire an out-of-cycle probe so
            # fluid mode does the same instead of waiting out the probe
            # cadence (the §4.3 join-delay quantization bug).
            self._request_resync()
        self._touch()

    def _resync_after_restart(self) -> None:
        """Re-prime data-driven state after a cold router restart.

        A restarted router has no (S,G) entries, and
        :meth:`_router_receive` refuses to carry fluid rate through a
        router until a real packet rebuilds the entry.  Left alone,
        recovery would wait for the next scheduled probe — up to
        ``probe_interval`` (100× the packet interval by default),
        where the packet model recovers within one ``packet_interval``.
        Firing one immediate out-of-cycle probe per emitting flow
        resynchronizes the two models at the restart boundary without
        touching the regular probe cadence."""
        self._request_resync()

    def _request_resync(self) -> None:
        """Schedule one immediate out-of-cycle probe per emitting flow.

        Deduplicated per (flow, timestamp): membership changes at scale
        fire ``members-detected`` once per joining link, and the
        delivery-rate transition in :meth:`_recompute` may land at the
        same instant — one probe per flow per boundary is enough to
        resynchronize with packet mode."""
        now = self.net.sim.now
        if self._resync_at != now:
            self._resync_at = now
            self._resync_flows.clear()
        for src in self.flows:
            if src.emitting and id(src) not in self._resync_flows:
                self._resync_flows.add(id(src))
                self.net.sim.schedule(
                    0.0, self._resync_probe, src, label=f"{src.flow}.resync"
                )

    def _resync_probe(self, src: FluidSource) -> None:
        # Re-check at dispatch: a same-timestamp handler may have
        # stopped the flow between scheduling and firing.
        if src.emitting:
            src._send_one()

    def _on_link_change(self, _link) -> None:
        if self.net is not None:
            self._touch()

    def _touch(self) -> None:
        """A protocol boundary at ``sim.now``: close the constant-rate
        interval that ends here and schedule one end-of-timestamp
        recomputation."""
        now = self.net.sim.now
        if now > self._last_sync:
            self._integrate(now)
        if not self._recompute_pending:
            self._recompute_pending = True
            self.net.sim.schedule(0.0, self._recompute_event, label="fluid.recompute")

    def _recompute_event(self) -> None:
        self._recompute_pending = False
        # The zero-delay event runs after every same-timestamp protocol
        # handler already queued, so the table reflects all of them.
        self.sync()
        self._recompute()

    # ------------------------------------------------------------------
    # integration
    # ------------------------------------------------------------------
    def _integrate(self, until: float) -> None:
        dt = until - self._last_sync
        self._last_sync = until
        if dt <= 0.0:
            return
        self.integrations += 1
        stats = self.net.stats
        for link_name, cats in self._link_rates.items():
            for category, (brate, prate) in cats.items():
                stats.account_fluid(link_name, category, brate * dt, prate * dt)
                self.analytic_bytes += brate * dt
                self.analytic_packets += prate * dt
        for kind, obj, key, rate in self._counter_rates:
            if kind == "load":
                obj.load[key] = obj.load.get(key, 0) + rate * dt
            else:
                setattr(obj, key, getattr(obj, key, 0) + rate * dt)
        for host_name, rate in self._delivery_rates.items():
            self.delivered_bytes[host_name] += rate * dt
        for reason, rate in self._loss_rates.items():
            self.lost_bytes[reason] += rate * dt

    # ------------------------------------------------------------------
    # rate-table recomputation
    # ------------------------------------------------------------------
    def _recompute(self) -> None:
        old_rates = self._link_rates
        old_deliveries = self._delivery_rates
        plan = _RatePlan()
        for src in self.flows:
            if src.emitting:
                self._plan_flow(src, plan)
        self._link_rates = plan.links
        self._counter_rates = plan.counters()
        self._delivery_rates = dict(plan.deliveries)
        self._loss_rates = dict(plan.losses)
        self.recomputes += 1
        self._emit_boundaries(old_rates, self._link_rates)
        # A receiver's delivery rate went 0 -> positive: the tree just
        # became ready for it (graft completed / oif added).  This is
        # the instant the next packet-mode datagram would arrive, so
        # fire an out-of-cycle probe to give the receiver app its first
        # real delivery now — span/app-derived join delays otherwise
        # quantize to the probe cadence.
        if any(
            rate > 0.0 and old_deliveries.get(host, 0.0) <= 0.0
            for host, rate in self._delivery_rates.items()
        ):
            self._request_resync()

    def _emit_boundaries(self, old, new) -> None:
        tracer = self.net.tracer
        if not tracer.wants("fluid"):
            return
        for link_name in old.keys() | new.keys():
            before = sum(b for b, _ in old.get(link_name, {}).values())
            after = sum(b for b, _ in new.get(link_name, {}).values())
            if abs(after - before) > 1e-9:
                tracer.record(
                    "fluid",
                    link_name,
                    event="rate-change",
                    rate=round(after, 6),
                    prev=round(before, 6),
                )

    # -- per-flow planning ---------------------------------------------
    def _plan_flow(self, src: FluidSource, plan: "_RatePlan") -> None:
        node = src.node
        pkt_rate = 1.0 / src.packet_interval
        inner_bytes = src.payload_bytes + IPV6_HEADER_BYTES
        brate = inner_bytes * pkt_rate
        # probes are real packets that already hit node counters, so the
        # analytic top-up of integer counters uses the residual rate
        lrate = max(pkt_rate - 1.0 / src.probe_interval, 0.0)

        if not isinstance(node, MobileNode):
            iface = next((i for i in node.interfaces if i.attached), None)
            if iface is None:
                plan.losses["handoff"] += brate
                return
            self._plan_tree(
                node.primary_address(), src.group, iface.link, node,
                brate, pkt_rate, lrate, plan,
            )
            return

        if not node.attached:
            plan.losses["handoff"] += brate
            plan.add_counter("attr", node, "handoff_losses", lrate)
            return
        link = node.iface.link
        if node.at_home:
            self._plan_tree(
                node.home_address, src.group, link, node,
                brate, pkt_rate, lrate, plan,
            )
        elif node.care_of_address is None:
            # Stale (erroneous) source: RPF checks stop it naturally.
            self._plan_tree(
                node._active_source, src.group, link, node,
                brate, pkt_rate, lrate, plan,
            )
        elif node.send_mode is DeliveryMode.LOCAL:
            self._plan_tree(
                node.care_of_address, src.group, link, node,
                brate, pkt_rate, lrate, plan,
            )
        else:
            self._plan_reverse_tunnel(src, node, brate, pkt_rate, lrate, plan)

    def _plan_reverse_tunnel(
        self, src, node, brate, prate, lrate, plan
    ) -> None:
        """Figure 4 sending: MN --unicast tunnel--> HA --> home tree."""
        plan.add_counter("load", node, "encapsulations", lrate)
        endpoint, factor = self._plan_unicast_path(
            node, node.home_agent_address, brate, prate, lrate, plan, tunneled=True
        )
        if endpoint is None or factor <= 0.0:
            return
        # HomeAgent._on_reverse_tunnel: decapsulate, re-emit the inner
        # datagram on the home link, and run it through its own PIM
        # engine as if received on the home interface.
        plan.add_counter("attr", endpoint, "reverse_tunneled", lrate * factor)
        home_iface = getattr(endpoint, "home_iface_for", lambda _a: None)(
            node.home_address
        )
        if home_iface is None or home_iface.link is None:
            return
        b, p, l = brate * factor, prate * factor, lrate * factor
        queue = deque()
        self._router_receive(
            endpoint, home_iface, node.home_address, src.group,
            b, p, l, _MAX_HOPS, queue, plan, count_processed=False,
        )
        queue.append((home_iface.link, endpoint, node.home_address, src.group,
                      b, p, l, _MAX_HOPS))
        self._drain_tree(queue, plan)

    def _plan_tree(
        self, source, group, first_link, sender_node, brate, prate, lrate, plan
    ) -> None:
        queue = deque()
        queue.append(
            (first_link, sender_node, Address(source), Address(group),
             brate, prate, lrate, _MAX_HOPS)
        )
        self._drain_tree(queue, plan)

    def _drain_tree(self, queue, plan) -> None:
        while queue:
            link, sender, source, group, b, p, l, hops = queue.popleft()
            if link is None or hops <= 0:
                continue
            if not link.up:
                plan.losses["link-down"] += b
                continue
            plan.charge(link.name, "mcast_data", b, p)
            keep = 1.0 - link.loss_rate
            if keep < 1.0:
                plan.losses["link-loss"] += b * (1.0 - keep)
            rb, rp, rl = b * keep, p * keep, l * keep
            for iface in link.interfaces:
                node = iface.node
                if node is sender or getattr(node, "crashed", False):
                    continue
                plan.add_counter("load", node, "packets_processed", rl)
                if node.is_router:
                    self._router_receive(
                        node, iface, source, group, rb, rp, rl, hops - 1,
                        queue, plan,
                        count_processed=True,
                    )
                elif group in getattr(node, "joined_groups", ()):
                    plan.deliveries[node.name] += rb

    def _router_receive(
        self, router, iface, source, group, b, p, l, hops,
        queue, plan, count_processed,
    ) -> None:
        """Apply the packet-mode forwarding rules of
        ``PimDmEngine.on_multicast_data`` analytically."""
        pim = getattr(router, "pim", None)
        if pim is None:
            return
        entry = pim.entries.get(pim.store.key(source, group))
        if entry is None:
            # No (S,G) state: the next real probe creates it (and the
            # entry-created event triggers a recomputation), exactly
            # like the first datagram does in packet mode.
            return
        if iface is not entry.upstream_iface:
            # Non-RPF arrival: discarded (assert resolution is driven by
            # the real probes).
            return
        outs = pim.outgoing_ifaces(entry)
        if outs and hops > 0:
            plan.add_counter("load", router, "packets_forwarded", l * len(outs))
            for oif in outs:
                if oif.link is not None:
                    queue.append(
                        (oif.link, router, source, group, b, p, l, hops)
                    )
        if group in pim.node_groups:
            self._plan_ha_relay(router, group, b, p, l, plan)

    def _plan_ha_relay(self, router, group, b, p, l, plan) -> None:
        """HomeAgent._relay_group_traffic: tunnel a copy to every
        binding-cache subscriber of the group (Figure 2 delivery)."""
        cache = getattr(router, "binding_cache", None)
        if cache is None:
            return
        for entry in cache.subscribers_of(group):
            plan.add_counter("load", router, "encapsulations", l)
            plan.add_counter("attr", router, "tunneled_to_mobiles", l)
            endpoint, factor = self._plan_unicast_path(
                router, entry.care_of_address, b, p, l, plan, tunneled=True
            )
            if endpoint is not None and factor > 0.0:
                plan.add_counter("load", endpoint, "decapsulations", l * factor)
                plan.deliveries[endpoint.name] += b * factor

    def _plan_unicast_path(
        self, from_node, dst, b, p, l, plan, tunneled=False
    ):
        """Walk the unicast route from ``from_node`` to ``dst`` exactly
        as ``route_and_send``/``forward_unicast`` would, charging every
        traversed link.  Returns ``(endpoint_node, delivery_factor)``
        where the factor is the product of per-link keep-probabilities
        (None endpoint: the path dead-ends — routed nowhere, link down,
        or neighbor-discovery failure — and the loss is recorded)."""
        dst = Address(dst)
        node = from_node
        factor = 1.0
        for _hop in range(_MAX_HOPS):
            if getattr(node, "crashed", False):
                plan.losses["node-crashed"] += b * factor
                return None, 0.0
            link = None
            target = None
            for iface in node.interfaces:
                if iface.link is not None and iface.link.prefix.contains(dst):
                    link = iface.link
                    target = link.resolve(dst)
                    break
            if link is None:
                entry = node.routing.lookup(dst)
                if entry is not None and entry.iface.link is not None:
                    next_hop = entry.next_hop if entry.next_hop is not None else dst
                    link = entry.iface.link
                    target = link.resolve(next_hop)
                elif not node.is_router:
                    link, target = self._default_gateway(node)
            if link is None:
                plan.losses["no-route"] += b * factor
                return None, 0.0
            if not link.up:
                plan.losses["link-down"] += b * factor
                return None, 0.0
            if target is None:
                plan.losses["nd-failure"] += b * factor
                return None, 0.0
            plan.charge(link.name, "mcast_data", b * factor, p * factor)
            if tunneled:
                plan.charge(
                    link.name, "tunnel_overhead",
                    IPV6_HEADER_BYTES * p * factor, 0.0,
                )
            factor *= 1.0 - link.loss_rate
            nxt = target.node
            if getattr(nxt, "crashed", False):
                return None, 0.0
            plan.add_counter("load", nxt, "packets_processed", l * factor)
            if nxt.owns_address(dst) or nxt.intercepts(dst):
                return nxt, factor
            if not nxt.is_router:
                return None, 0.0
            plan.add_counter("load", nxt, "packets_forwarded", l * factor)
            node = nxt
        return None, 0.0

    @staticmethod
    def _default_gateway(node):
        """Mirror ``Node._send_via_default_gateway``: the
        lowest-addressed router interface on an attached link."""
        for iface in node.interfaces:
            if iface.link is None:
                continue
            routers = [
                (other, addr)
                for other in iface.link.interfaces
                if other.node.is_router and other is not iface
                for addr in other.addresses
                if not addr.is_link_local and not addr.is_multicast
            ]
            if routers:
                gateway = min(routers, key=lambda pair: pair[1])
                return iface.link, gateway[0]
        return None, None


class _RatePlan:
    """Accumulator for one rate-table recomputation."""

    __slots__ = ("links", "deliveries", "losses", "_counters")

    def __init__(self) -> None:
        self.links: Dict[str, Dict[str, Tuple[float, float]]] = {}
        self.deliveries: Dict[str, float] = defaultdict(float)
        self.losses: Dict[str, float] = defaultdict(float)
        self._counters: Dict[Tuple[int, str, str], List] = {}

    def charge(self, link_name, category, brate, prate) -> None:
        cats = self.links.get(link_name)
        if cats is None:
            cats = self.links[link_name] = {}
        prev = cats.get(category)
        if prev is None:
            cats[category] = (brate, prate)
        else:
            cats[category] = (prev[0] + brate, prev[1] + prate)

    def add_counter(self, kind, obj, key, rate) -> None:
        if rate <= 0.0:
            return
        slot = self._counters.get((id(obj), kind, key))
        if slot is None:
            self._counters[(id(obj), kind, key)] = [kind, obj, key, rate]
        else:
            slot[3] += rate

    def counters(self) -> List[Tuple[str, object, str, float]]:
        return [tuple(v) for v in self._counters.values()]
