"""Traffic models: per-packet and flow-level (fluid) engines.

* :mod:`repro.traffic.sources` — the CBR / ON-OFF generators.
* :mod:`repro.traffic.base` — the :class:`TrafficModel` interface and
  the ``make_traffic_model`` registry.
* :mod:`repro.traffic.packet` — exact per-packet mode (default).
* :mod:`repro.traffic.fluid` — analytic flow-level mode for
  million-receiver scenarios (see ``docs/TRAFFIC.md``).
"""

from .base import TRAFFIC_MODELS, TrafficModel, make_traffic_model
from .fluid import FluidModel, FluidOnOffSource, FluidSource
from .packet import PacketModel
from .sources import CbrSource, OnOffSource, reset_flow_counter

__all__ = [
    "CbrSource",
    "FluidModel",
    "FluidOnOffSource",
    "FluidSource",
    "OnOffSource",
    "PacketModel",
    "TRAFFIC_MODELS",
    "TrafficModel",
    "make_traffic_model",
    "reset_flow_counter",
]
