"""Disk cache for completed campaign cells.

A cell's cache key is a SHA-256 over the *canonical* JSON of

* the task name,
* the fully resolved parameters (seed included, keys sorted — so the
  in-memory insertion order of a params dict can never change the key),
* the cache schema version (:data:`CACHE_SCHEMA_VERSION`),
* the code version — a digest of every ``repro`` source file, so any
  code change invalidates every cached result automatically.

Layout: ``<root>/<key[:2]>/<key>.json``, one canonical-JSON document
per completed cell::

    {"version": 1, "key": ..., "task": ..., "params": {...},
     "result": ..., "elapsed": ...}

Entries are written atomically (temp file + rename) so a crashed or
killed worker can never leave a half-written payload behind, and are
re-read byte-for-byte: a warm hit returns exactly the payload the cold
run produced.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from .grid import canonical_params

__all__ = ["CACHE_SCHEMA_VERSION", "ResultCache", "cache_key", "code_version"]

#: Bump when the cache entry layout (or the meaning of stored results)
#: changes; every key derived under the old schema becomes stale.
CACHE_SCHEMA_VERSION = 1

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Digest of the ``repro`` package source tree (memoized per process).

    Hashing relative path + content of every ``*.py`` file means a
    cached result can never survive a code change that might have
    produced it — the conservative reading of "keyed by config + code
    version".
    """
    global _code_version_cache
    if _code_version_cache is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(path.relative_to(root).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version_cache = h.hexdigest()
    return _code_version_cache


def cache_key(
    task: str,
    params: Mapping[str, Any],
    schema_version: int = CACHE_SCHEMA_VERSION,
    code: Optional[str] = None,
) -> str:
    """Stable key for one resolved cell."""
    material = json.dumps(
        {
            "task": task,
            "params": json.loads(canonical_params(params)),
            "schema": schema_version,
            "code": code if code is not None else code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of completed cell payloads."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(f"cache dir is not a directory: {self.root}")
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None on a miss.

        A corrupt entry (interrupted disk, manual edit) counts as a
        miss: the cell simply re-runs and overwrites it.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(raw)
        except ValueError:
            return None
        if payload.get("version") != CACHE_SCHEMA_VERSION or payload.get("key") != key:
            return None
        return payload

    def put(
        self,
        key: str,
        task: str,
        params: Mapping[str, Any],
        result: Any,
        elapsed: float,
    ) -> Dict[str, Any]:
        """Persist one completed cell; returns the stored payload."""
        payload = {
            "version": CACHE_SCHEMA_VERSION,
            "key": key,
            "task": task,
            "params": json.loads(canonical_params(params)),
            "result": result,
            "elapsed": elapsed,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(encoded)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return payload

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache root={self.root} entries={len(self)}>"
