"""Parallel scenario campaigns with on-disk result caching.

The batch execution layer over the Figure 1 experiments: declare a
grid of scenario variations, shard it across worker processes with
deterministic per-cell seeds, and cache completed cells so re-runs
only execute what changed::

    from repro.campaign import CampaignGrid, CampaignRunner

    grid = CampaignGrid(
        "comparison.receiver",
        axes={"approach": ["local", "bidir"], "seed": [0, 1]},
    )
    runner = CampaignRunner(jobs=4, cache_dir=".repro-cache")
    campaign = runner.run(grid.cells())
    rows = campaign.results()          # in grid order, JSON-able

``repro.core``'s sweeps (:func:`repro.core.run_full_comparison`,
``run_ha_load_vs_*``, :func:`repro.core.run_timer_sweep`) execute
through this engine, and ``python -m repro sweep`` exposes it on the
command line.  See ``docs/CAMPAIGNS.md``.
"""

from .cache import CACHE_SCHEMA_VERSION, ResultCache, cache_key, code_version
from .grid import CampaignCell, CampaignGrid, canonical_params
from .runner import (
    CampaignError,
    CampaignResult,
    CampaignRunner,
    CellOutcome,
    CheckpointJournal,
    resolve_cell,
)
from .tasks import get_task, register_task, task_names

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignCell",
    "CampaignError",
    "CampaignGrid",
    "CampaignResult",
    "CampaignRunner",
    "CellOutcome",
    "CheckpointJournal",
    "ResultCache",
    "cache_key",
    "canonical_params",
    "code_version",
    "get_task",
    "register_task",
    "resolve_cell",
    "task_names",
]
