"""The campaign task registry.

A *task* is a module-level function mapping JSON-able keyword
parameters to a JSON-able result dict.  Tasks are registered under a
dotted name so a :class:`~repro.campaign.grid.CampaignCell` can be
pickled to a worker process (or hashed into a cache key) as plain
data — the worker looks the callable up by name on its side.

Registered tasks:

=====================  ==============================================
``comparison.receiver``  one §4.3 receiver-mobility row
``comparison.sender``    one §4.3 sender-mobility row
``timers.point``         one §4.4 (T_Query, seed) measurement
``scaling.mobiles``      HA load for one mobile-host count
``scaling.groups``       HA load for one group count
``scaling.rate``         HA load for one source rate
``scale.cell``           one EXP-S1 generated-topology scaling cell
``fluid.cell``           one EXP-S2 packet-vs-fluid traffic cell
``faults.receiver``      one resilience row under wireless loss
``faults.ha_crash``      one resilience row under a home-agent crash
``chaos.cell``           one EXP-R3 nemesis/convergence chaos cell
``spans.receiver``       one phase-attributed handover breakdown row
``selftest.echo``        cheap deterministic no-sim task (tests)
``selftest.sleep``       sleeps; exercises the hung-cell watchdog
``selftest.flaky``       fails N times then succeeds (retry tests)
``selftest.kill``        SIGKILLs its worker once (chaos tests)
=====================  ==============================================

``repro.core`` is imported lazily inside the task bodies:
``repro.core``'s sweep modules themselves import this package to run
through the engine, and a module-level back-import would be circular.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..sim import RngRegistry

__all__ = ["get_task", "register_task", "task_names"]

TaskFn = Callable[..., Dict[str, Any]]

_REGISTRY: Dict[str, TaskFn] = {}


def register_task(name: str) -> Callable[[TaskFn], TaskFn]:
    """Decorator: register ``fn`` under the dotted task ``name``."""

    def deco(fn: TaskFn) -> TaskFn:
        if name in _REGISTRY:
            raise ValueError(f"task {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return deco


def get_task(name: str) -> TaskFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign task {name!r}; known: {', '.join(task_names())}"
        ) from None


def task_names() -> List[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# parameter (de)hydration helpers
# ----------------------------------------------------------------------

def _approach(key: str):
    from ..core.strategies import ALL_APPROACHES

    for approach in ALL_APPROACHES:
        if approach.key == key:
            return approach
    raise KeyError(f"unknown approach {key!r}")


def _mld(config: Optional[Dict[str, Any]]):
    if config is None:
        return None
    from ..mld import MldConfig

    return MldConfig(**config)


# ----------------------------------------------------------------------
# §4.3 comparison cells
# ----------------------------------------------------------------------

@register_task("comparison.receiver")
def comparison_receiver(
    approach: str,
    seed: int = 0,
    move_link: str = "L6",
    move_at: float = 40.0,
    unsolicited: bool = True,
    settle: float = 30.0,
    measure_leave: bool = True,
    mld: Optional[Dict[str, Any]] = None,
    packet_interval: float = 0.05,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    from ..core.comparison import receiver_mobility_run

    return receiver_mobility_run(
        _approach(approach),
        seed=seed,
        move_link=move_link,
        move_at=move_at,
        unsolicited=unsolicited,
        settle=settle,
        measure_leave=measure_leave,
        mld=_mld(mld),
        packet_interval=packet_interval,
        traffic_model=traffic_model,
        probe_interval=probe_interval,
    )


@register_task("comparison.sender")
def comparison_sender(
    approach: str,
    seed: int = 0,
    move_link: str = "L6",
    move_at: float = 40.0,
    run_until: float = 100.0,
    mld: Optional[Dict[str, Any]] = None,
    packet_interval: float = 0.05,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    from ..core.comparison import sender_mobility_run

    return sender_mobility_run(
        _approach(approach),
        seed=seed,
        move_link=move_link,
        move_at=move_at,
        run_until=run_until,
        mld=_mld(mld),
        packet_interval=packet_interval,
        traffic_model=traffic_model,
        probe_interval=probe_interval,
    )


# ----------------------------------------------------------------------
# §4.4 timer sweep cells
# ----------------------------------------------------------------------

@register_task("timers.point")
def timers_point(
    query_interval: float,
    seed: int = 0,
    move_link: str = "L6",
    packet_interval: float = 0.1,
    base_mld: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    from ..core.timer_optimization import timer_point_run

    return timer_point_run(
        query_interval,
        seed=seed,
        move_link=move_link,
        packet_interval=packet_interval,
        base_mld=_mld(base_mld),
    )


# ----------------------------------------------------------------------
# §4.3.2 HA-load scaling cells
# ----------------------------------------------------------------------

@register_task("scaling.mobiles")
def scaling_mobiles(
    mobiles: int,
    seed: int = 0,
    measure_window: float = 30.0,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    from ..core.scaling import ha_load_mobiles_cell

    return ha_load_mobiles_cell(
        mobiles,
        seed=seed,
        measure_window=measure_window,
        traffic_model=traffic_model,
        probe_interval=probe_interval,
    )


@register_task("scaling.groups")
def scaling_groups(
    groups: int,
    seed: int = 0,
    measure_window: float = 30.0,
    packet_interval: float = 0.1,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    from ..core.scaling import ha_load_groups_cell

    return ha_load_groups_cell(
        groups,
        seed=seed,
        measure_window=measure_window,
        packet_interval=packet_interval,
        traffic_model=traffic_model,
        probe_interval=probe_interval,
    )


@register_task("scaling.rate")
def scaling_rate(
    packet_interval: float,
    seed: int = 0,
    measure_window: float = 30.0,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    from ..core.scaling import ha_load_rate_cell

    return ha_load_rate_cell(
        packet_interval,
        seed=seed,
        measure_window=measure_window,
        traffic_model=traffic_model,
        probe_interval=probe_interval,
    )


# ----------------------------------------------------------------------
# EXP-S1 topology-scaling cells
# ----------------------------------------------------------------------

@register_task("scale.cell")
def scale_cell_task(
    model: str = "hier",
    model_params: Optional[Dict[str, Any]] = None,
    receivers: int = 100,
    groups: int = 1,
    mobility: float = 0.0,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    duration: float = 30.0,
    packet_interval: float = 1.0,
    check_invariants: Optional[bool] = None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
    shards: int = 1,
    shard_executor: str = "process",
) -> Dict[str, Any]:
    from ..core.scalestudy import scale_cell

    return scale_cell(
        model=model,
        model_params=model_params,
        receivers=receivers,
        groups=groups,
        mobility=mobility,
        backend=backend,
        seed=seed,
        warmup=warmup,
        duration=duration,
        packet_interval=packet_interval,
        check_invariants=check_invariants,
        traffic_model=traffic_model,
        probe_interval=probe_interval,
        shards=shards,
        shard_executor=shard_executor,
    )


# ----------------------------------------------------------------------
# EXP-S2 fluid-traffic cells
# ----------------------------------------------------------------------

@register_task("fluid.cell")
def fluid_cell_task(
    model: str = "hier",
    model_params: Optional[Dict[str, Any]] = None,
    receivers: int = 1000,
    receiver_weight: int = 1,
    traffic_model: str = "fluid",
    groups: int = 1,
    mobility: float = 0.0,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    duration: float = 30.0,
    packet_interval: float = 0.05,
    payload_bytes: int = 1000,
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    from ..core.fluidstudy import DEFAULT_PROBE_INTERVAL, fluid_cell

    return fluid_cell(
        model=model,
        model_params=model_params,
        receivers=receivers,
        receiver_weight=receiver_weight,
        traffic_model=traffic_model,
        groups=groups,
        mobility=mobility,
        backend=backend,
        seed=seed,
        warmup=warmup,
        duration=duration,
        packet_interval=packet_interval,
        payload_bytes=payload_bytes,
        probe_interval=(
            DEFAULT_PROBE_INTERVAL if probe_interval is None else probe_interval
        ),
    )


# ----------------------------------------------------------------------
# repro.faults resilience cells
# ----------------------------------------------------------------------

@register_task("faults.receiver")
def faults_receiver(
    approach: str,
    seed: int = 0,
    loss_rate: float = 0.02,
    model: str = "gilbert",
    move_link: str = "L6",
    move_at: float = 40.0,
    fault_at: float = 32.0,
    handoff_blackout: float = 2.0,
    run_until: float = 90.0,
    packet_interval: float = 0.05,
) -> Dict[str, Any]:
    from ..faults.experiments import loss_receiver_run

    return loss_receiver_run(
        _approach(approach),
        seed=seed,
        loss_rate=loss_rate,
        model=model,
        move_link=move_link,
        move_at=move_at,
        fault_at=fault_at,
        handoff_blackout=handoff_blackout,
        run_until=run_until,
        packet_interval=packet_interval,
    )


@register_task("faults.ha_crash")
def faults_ha_crash(
    approach: str,
    seed: int = 0,
    move_link: str = "L6",
    move_at: float = 40.0,
    crash_at: float = 45.0,
    crash_duration: float = 15.0,
    run_until: float = 110.0,
    packet_interval: float = 0.05,
) -> Dict[str, Any]:
    from ..faults.experiments import ha_crash_run

    return ha_crash_run(
        _approach(approach),
        seed=seed,
        move_link=move_link,
        move_at=move_at,
        crash_at=crash_at,
        crash_duration=crash_duration,
        run_until=run_until,
        packet_interval=packet_interval,
    )


# ----------------------------------------------------------------------
# EXP-R3 chaos/convergence cells
# ----------------------------------------------------------------------

@register_task("chaos.cell")
def chaos_cell_task(
    topo: Optional[Dict[str, Any]] = None,
    archetype: str = "flaps",
    intensity: float = 0.5,
    receivers: int = 12,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    chaos_duration: float = 10.0,
    settle: float = 20.0,
    packet_interval: float = 0.2,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
    check_invariants: Optional[bool] = None,
) -> Dict[str, Any]:
    from ..chaos.study import chaos_cell

    return chaos_cell(
        topo=topo,
        archetype=archetype,
        intensity=intensity,
        receivers=receivers,
        backend=backend,
        seed=seed,
        warmup=warmup,
        chaos_duration=chaos_duration,
        settle=settle,
        packet_interval=packet_interval,
        traffic_model=traffic_model,
        probe_interval=probe_interval,
        check_invariants=check_invariants,
    )


# ----------------------------------------------------------------------
# repro.obs.spans phase-attribution cells
# ----------------------------------------------------------------------

@register_task("spans.receiver")
def spans_receiver(
    approach: str,
    seed: int = 0,
    loss_rate: float = 0.0,
    model: str = "gilbert",
    move_link: str = "L6",
    move_at: float = 40.0,
    fault_at: float = 32.0,
    handoff_blackout: float = 2.0,
    run_until: float = 90.0,
    packet_interval: float = 0.05,
) -> Dict[str, Any]:
    from ..analysis.phases import span_receiver_run

    return span_receiver_run(
        _approach(approach),
        seed=seed,
        loss_rate=loss_rate,
        model=model,
        move_link=move_link,
        move_at=move_at,
        fault_at=fault_at,
        handoff_blackout=handoff_blackout,
        run_until=run_until,
        packet_interval=packet_interval,
    )


# ----------------------------------------------------------------------
# engine self-test cell (no simulation; used by the property tests)
# ----------------------------------------------------------------------

@register_task("selftest.echo")
def selftest_echo(seed: int = 0, **params: Any) -> Dict[str, Any]:
    """Deterministic, sub-millisecond task exercising the seed plumbing."""
    rng = RngRegistry(seed)
    return {
        "seed": seed,
        "params": dict(sorted(params.items())),
        "draw": rng.uniform("selftest", 0.0, 1.0),
        "pick": rng.choice("selftest-pick", ["a", "b", "c", "d"]),
    }


# ----------------------------------------------------------------------
# supervisor self-test cells (see tests/campaign/test_supervisor.py and
# docs/ROBUSTNESS.md) — misbehaving on purpose
# ----------------------------------------------------------------------

def _attempt_count(state_dir: str, tag: str) -> int:
    """Count this call as one attempt at ``tag``; return the attempt no.

    The marker directory carries cross-process state: each attempt —
    even one that dies mid-cell — leaves one file behind, so retried
    cells can tell which attempt they are.
    """
    import os as _os
    import uuid

    _os.makedirs(state_dir, exist_ok=True)
    marker = _os.path.join(state_dir, f"{tag}.{uuid.uuid4().hex}")
    with open(marker, "w"):
        pass
    return sum(1 for n in _os.listdir(state_dir) if n.startswith(f"{tag}."))


@register_task("selftest.fail")
def selftest_fail(seed: int = 0, message: str = "boom") -> Dict[str, Any]:
    """Always raises — a permanently poisoned cell."""
    raise RuntimeError(message)


@register_task("selftest.sleep")
def selftest_sleep(seed: int = 0, duration: float = 60.0) -> Dict[str, Any]:
    """Sleeps ``duration`` seconds — a hung cell for the watchdog."""
    import time as _time

    _time.sleep(duration)
    return {"seed": seed, "slept": duration}


@register_task("selftest.flaky")
def selftest_flaky(
    state_dir: str, seed: int = 0, fail_times: int = 1, tag: str = "flaky"
) -> Dict[str, Any]:
    """Raises on the first ``fail_times`` attempts, then succeeds."""
    attempt = _attempt_count(state_dir, tag)
    if attempt <= fail_times:
        raise RuntimeError(f"flaky failure {attempt}/{fail_times}")
    return {"seed": seed, "tag": tag, "ok": True}


@register_task("selftest.kill")
def selftest_kill(state_dir: str, seed: int = 0, tag: str = "kill") -> Dict[str, Any]:
    """SIGKILLs its own worker process on the first attempt.

    Simulates an OOM kill / segfault mid-cell: no exception, no
    cleanup, the pool just breaks.  Later attempts succeed.
    """
    import os as _os
    import signal

    attempt = _attempt_count(state_dir, tag)
    if attempt <= 1:
        _os.kill(_os.getpid(), signal.SIGKILL)
    return {"seed": seed, "tag": tag, "survived": True}
