"""The campaign engine: shard cells across processes, cache results.

:class:`CampaignRunner` takes a list of
:class:`~repro.campaign.grid.CampaignCell` (usually from a
:class:`~repro.campaign.grid.CampaignGrid`), resolves a deterministic
seed for every cell, answers what it can from the on-disk
:class:`~repro.campaign.cache.ResultCache`, and executes the rest —
in-process for ``jobs=1``, across a ``ProcessPoolExecutor`` otherwise.

Determinism contract (tested in ``tests/campaign/``):

* every cell's seed is either its explicit ``params["seed"]`` or
  :func:`repro.sim.rng.derive_seed` of the campaign master seed and
  the cell's canonical identity — never a function of scheduling,
* results are canonicalized through a JSON round-trip before they are
  aggregated, so an in-process run, a pickled pool run, and a cache
  hit all yield byte-identical payloads,
* outcomes are returned in cell order regardless of completion order.

Progress is published to a :class:`repro.obs.MetricsRegistry` (cells
executed/cached per task, per-cell wall-clock histogram) and to an
optional ``progress(done, total, outcome)`` callback per finished
shard.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..sim.rng import derive_seed
from .cache import ResultCache, cache_key
from .grid import CampaignCell, canonical_params
from .tasks import get_task

__all__ = ["CampaignResult", "CampaignRunner", "CellOutcome", "resolve_cell"]


def _canonical_result(result: Any) -> Any:
    """JSON round-trip: the single representation every path returns."""
    return json.loads(json.dumps(result, sort_keys=True))


def _execute_cell(task: str, params: Dict[str, Any]) -> Tuple[Any, float]:
    """Worker entry point (module-level so it pickles)."""
    fn = get_task(task)
    started = time.perf_counter()
    result = fn(**params)
    elapsed = time.perf_counter() - started
    return _canonical_result(result), elapsed


def resolve_cell(cell: CampaignCell, master_seed: int) -> CampaignCell:
    """Pin the cell's seed: explicit wins, otherwise derived.

    The derived seed hashes the master seed together with the cell's
    task and canonical parameters, so it is stable across runs, key
    order, and shard placement.
    """
    if cell.params.get("seed") is not None:
        return cell
    rest = {k: v for k, v in cell.params.items() if k != "seed"}
    seed = derive_seed(master_seed, f"{cell.task}:{canonical_params(rest)}")
    return cell.with_params(seed=seed)


@dataclass(frozen=True)
class CellOutcome:
    """One finished cell: where its result came from and what it cost."""

    cell: CampaignCell
    key: str
    result: Any
    cached: bool
    elapsed: float


@dataclass
class CampaignResult:
    """All outcomes of one :meth:`CampaignRunner.run`, in cell order."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_clock: float = 0.0
    jobs: int = 1

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    def results(self) -> List[Any]:
        return [o.result for o in self.outcomes]

    def summary(self) -> Dict[str, Any]:
        return {
            "cells": len(self.outcomes),
            "executed": self.executed,
            "cached": self.cached,
            "jobs": self.jobs,
            "wall_clock": self.wall_clock,
        }


class CampaignRunner:
    """Execute campaign cells with sharding, seeding, and caching."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        master_seed: int = 0,
        registry: Optional[Any] = None,
        progress: Optional[Callable[[int, int, CellOutcome], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.master_seed = master_seed
        self.registry = registry
        self.progress = progress
        #: Every completed campaign, newest last (CLI reporting reads this).
        self.history: List[CampaignResult] = []

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------
    def _record(self, outcome: CellOutcome) -> None:
        if self.registry is None:
            return
        self.registry.counter(
            "repro_campaign_cells_total",
            help="Campaign cells finished, by task and result source.",
            label_names=("task", "status"),
        ).labels(
            task=outcome.cell.task,
            status="cached" if outcome.cached else "executed",
        ).inc()
        if not outcome.cached:
            self.registry.histogram(
                "repro_campaign_cell_seconds",
                help="Wall-clock seconds per executed campaign cell.",
                label_names=("task",),
            ).labels(task=outcome.cell.task).observe(outcome.elapsed)

    def _finish(self, result: CampaignResult) -> CampaignResult:
        if self.registry is not None:
            self.registry.gauge(
                "repro_campaign_wall_seconds",
                help="Wall-clock seconds of the last campaign run.",
            ).set(result.wall_clock)
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, cells: Iterable[CampaignCell]) -> CampaignResult:
        started = time.perf_counter()
        resolved = [resolve_cell(cell, self.master_seed) for cell in cells]
        keys = [cache_key(cell.task, cell.params) for cell in resolved]
        total = len(resolved)
        outcomes: List[Optional[CellOutcome]] = [None] * total
        done = 0

        def complete(index: int, outcome: CellOutcome) -> None:
            nonlocal done
            outcomes[index] = outcome
            done += 1
            self._record(outcome)
            if self.progress is not None:
                self.progress(done, total, outcome)

        pending: List[int] = []
        for i, (cell, key) in enumerate(zip(resolved, keys)):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                complete(
                    i,
                    CellOutcome(
                        cell=cell,
                        key=key,
                        result=hit["result"],
                        cached=True,
                        elapsed=hit.get("elapsed", 0.0),
                    ),
                )
            else:
                pending.append(i)

        if pending and self.jobs == 1:
            for i in pending:
                cell = resolved[i]
                result, elapsed = _execute_cell(cell.task, dict(cell.params))
                complete(i, self._store(cell, keys[i], result, elapsed))
        elif pending:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_cell, resolved[i].task, dict(resolved[i].params)): i
                    for i in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        i = futures[future]
                        result, elapsed = future.result()
                        complete(i, self._store(resolved[i], keys[i], result, elapsed))

        final = [o for o in outcomes if o is not None]
        assert len(final) == total
        return self._finish(
            CampaignResult(
                outcomes=final,
                wall_clock=time.perf_counter() - started,
                jobs=self.jobs,
            )
        )

    def _store(
        self, cell: CampaignCell, key: str, result: Any, elapsed: float
    ) -> CellOutcome:
        if self.cache is not None:
            self.cache.put(key, cell.task, cell.params, result, elapsed)
        return CellOutcome(
            cell=cell, key=key, result=result, cached=False, elapsed=elapsed
        )

    @property
    def last_result(self) -> Optional[CampaignResult]:
        return self.history[-1] if self.history else None

    def stats(self) -> Dict[str, Any]:
        """Aggregate summary across every campaign this runner ran."""
        return {
            "campaigns": len(self.history),
            "cells": sum(len(r) for r in self.history),
            "executed": sum(r.executed for r in self.history),
            "cached": sum(r.cached for r in self.history),
            "jobs": self.jobs,
            "wall_clock": sum(r.wall_clock for r in self.history),
        }
