"""The campaign engine: shard cells across processes, cache results,
and supervise the workers.

:class:`CampaignRunner` takes a list of
:class:`~repro.campaign.grid.CampaignCell` (usually from a
:class:`~repro.campaign.grid.CampaignGrid`), resolves a deterministic
seed for every cell, answers what it can from the on-disk
:class:`~repro.campaign.cache.ResultCache`, and executes the rest —
in-process for ``jobs=1``, across a supervised
``ProcessPoolExecutor`` otherwise.

Determinism contract (tested in ``tests/campaign/``):

* every cell's seed is either its explicit ``params["seed"]`` or
  :func:`repro.sim.rng.derive_seed` of the campaign master seed and
  the cell's canonical identity — never a function of scheduling,
* results are canonicalized through a JSON round-trip before they are
  aggregated, so an in-process run, a pickled pool run, a cache hit,
  and a checkpoint replay all yield byte-identical payloads,
* outcomes are returned in cell order regardless of completion order,
* retry backoff is jittered from :func:`derive_seed` of the master
  seed, cell key, and attempt number — it shapes wall-clock only,
  never payloads, so ``jobs=1`` and ``jobs=N`` stay byte-identical.

Supervision contract (tested in ``tests/campaign/test_supervisor.py``,
see docs/ROBUSTNESS.md):

* a raising cell records a failed :class:`CellOutcome` carrying the
  worker-side traceback instead of aborting the campaign,
* a cell exceeding ``timeout`` seconds of wall-clock is killed (the
  pool is terminated and restarted; in-flight innocents are resubmitted
  without burning an attempt),
* a worker death (``BrokenProcessPool`` — OOM kill, segfault, SIGKILL)
  restarts the pool and retries the affected cells,
* each cell gets ``1 + retries`` attempts with capped exponential
  backoff between them; a cell that exhausts its attempts is
  quarantined as a failed outcome and the campaign carries on,
* failed outcomes are never written to the result cache,
* with ``checkpoint=`` every executed outcome is appended to a JSONL
  journal; ``resume=True`` replays completed successes from the
  journal so an interrupted campaign continues where it stopped.

Progress is published to a :class:`repro.obs.MetricsRegistry` (cells
executed/cached/failed per task, retries, pool restarts, per-cell
wall-clock histogram) and to an optional
``progress(done, total, outcome)`` callback per finished shard.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..sim.rng import derive_seed
from .cache import ResultCache, cache_key
from .grid import CampaignCell, canonical_params
from .tasks import get_task

__all__ = [
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "CellOutcome",
    "CheckpointJournal",
    "resolve_cell",
]


def _canonical_result(result: Any) -> Any:
    """JSON round-trip: the single representation every path returns."""
    return json.loads(json.dumps(result, sort_keys=True))


def _execute_cell(
    task: str, params: Dict[str, Any]
) -> Tuple[Any, float, Optional[str]]:
    """Worker entry point (module-level so it pickles).

    Never raises: a failing task body returns ``(None, elapsed,
    traceback_text)`` so one bad cell cannot abort the campaign (the
    supervisor decides whether to retry or quarantine it).
    """
    started = time.perf_counter()
    try:
        result = get_task(task)(**params)
        return _canonical_result(result), time.perf_counter() - started, None
    except BaseException as exc:  # noqa: BLE001 - must survive anything
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return None, time.perf_counter() - started, traceback.format_exc()


def resolve_cell(cell: CampaignCell, master_seed: int) -> CampaignCell:
    """Pin the cell's seed: explicit wins, otherwise derived.

    The derived seed hashes the master seed together with the cell's
    task and canonical parameters, so it is stable across runs, key
    order, and shard placement.
    """
    if cell.params.get("seed") is not None:
        return cell
    rest = {k: v for k, v in cell.params.items() if k != "seed"}
    seed = derive_seed(master_seed, f"{cell.task}:{canonical_params(rest)}")
    return cell.with_params(seed=seed)


@dataclass(frozen=True)
class CellOutcome:
    """One finished cell: where its result came from and what it cost."""

    cell: CampaignCell
    key: str
    result: Any
    cached: bool
    elapsed: float
    #: worker-side traceback text when the cell failed permanently
    error: Optional[str] = None
    #: how many times the cell was attempted (1 = first try succeeded)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def status(self) -> str:
        if self.error is not None:
            return "failed"
        return "cached" if self.cached else "executed"


class CampaignError(RuntimeError):
    """A campaign finished with permanently failed cells."""

    def __init__(self, failures: List[CellOutcome]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} campaign cell(s) failed:"]
        for o in self.failures[:5]:
            last = (o.error or "").strip().splitlines()
            lines.append(
                f"  {o.cell.task} {canonical_params(o.cell.params)} "
                f"(attempts={o.attempts}): {last[-1] if last else '?'}"
            )
        if len(self.failures) > 5:
            lines.append(f"  ... and {len(self.failures) - 5} more")
        super().__init__("\n".join(lines))


@dataclass
class CampaignResult:
    """All outcomes of one :meth:`CampaignRunner.run`, in cell order."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_clock: float = 0.0
    jobs: int = 1
    #: pool restarts forced by timeouts or worker deaths during the run
    pool_restarts: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached and o.ok)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def retries(self) -> int:
        return sum(o.attempts - 1 for o in self.outcomes)

    def results(self) -> List[Any]:
        return [o.result for o in self.outcomes]

    def failures(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def errors(self) -> List[Dict[str, Any]]:
        """The error manifest: one JSON-able record per failed cell."""
        return [
            {
                "task": o.cell.task,
                "params": dict(o.cell.params),
                "key": o.key,
                "attempts": o.attempts,
                "error": o.error,
            }
            for o in self.failures()
        ]

    def require_success(self) -> "CampaignResult":
        """Raise :class:`CampaignError` if any cell failed permanently."""
        failures = self.failures()
        if failures:
            raise CampaignError(failures)
        return self

    def summary(self) -> Dict[str, Any]:
        return {
            "cells": len(self.outcomes),
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "retries": self.retries,
            "jobs": self.jobs,
            "wall_clock": self.wall_clock,
        }


class CheckpointJournal:
    """Append-only JSONL journal of executed cell outcomes.

    Line 1 is a header binding the journal to the campaign master seed
    (resuming under a different seed would silently mix incompatible
    results, so it is an error).  Every other line is one executed
    cell, keyed by its cache key.  A torn final line — the process died
    mid-write — is tolerated and ignored on load.
    """

    VERSION = 1

    def __init__(self, path: os.PathLike, master_seed: int) -> None:
        self.path = str(path)
        self.master_seed = master_seed
        self._fh = None

    # -- writing -------------------------------------------------------
    def _open(self):
        if self._fh is None:
            fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._write(
                    {
                        "type": "header",
                        "version": self.VERSION,
                        "master_seed": self.master_seed,
                    }
                )
        return self._fh

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def append(self, outcome: CellOutcome) -> None:
        self._open()
        self._write(
            {
                "type": "cell",
                "key": outcome.key,
                "task": outcome.cell.task,
                "params": dict(outcome.cell.params),
                "result": outcome.result,
                "elapsed": outcome.elapsed,
                "attempts": outcome.attempts,
                "error": outcome.error,
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- loading -------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Completed-cell records by cache key; ``{}`` if no journal yet."""
        if not os.path.exists(self.path):
            return {}
        records: Dict[str, Dict[str, Any]] = {}
        with open(self.path, "r", encoding="utf-8") as fh:
            for n, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail write: everything before it is good
                if n == 0:
                    if (
                        record.get("type") != "header"
                        or record.get("version") != self.VERSION
                    ):
                        raise ValueError(
                            f"{self.path}: not a campaign checkpoint journal"
                        )
                    if record.get("master_seed") != self.master_seed:
                        raise ValueError(
                            f"{self.path}: journal was written with master "
                            f"seed {record.get('master_seed')}, cannot resume "
                            f"with {self.master_seed}"
                        )
                    continue
                if record.get("type") == "cell" and record.get("key"):
                    records[record["key"]] = record
        return records


class _Attempt:
    """Supervisor bookkeeping for one in-flight cell attempt."""

    __slots__ = ("index", "attempt", "started")

    def __init__(self, index: int, attempt: int) -> None:
        self.index = index
        self.attempt = attempt
        self.started: Optional[float] = None  # first observed running()


class CampaignRunner:
    """Execute campaign cells with sharding, seeding, caching, and
    supervision (retry, timeout, checkpoint/resume)."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        master_seed: int = 0,
        registry: Optional[Any] = None,
        progress: Optional[Callable[[int, int, CellOutcome], None]] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        poll: float = 0.2,
        checkpoint: Optional[os.PathLike] = None,
        resume: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.master_seed = master_seed
        self.registry = registry
        self.progress = progress
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.poll = poll
        self.checkpoint = (
            CheckpointJournal(checkpoint, master_seed)
            if checkpoint is not None
            else None
        )
        self.resume = resume
        #: Every completed campaign, newest last (CLI reporting reads this).
        self.history: List[CampaignResult] = []

    # ------------------------------------------------------------------
    # deterministic backoff
    # ------------------------------------------------------------------
    def backoff(self, key: str, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter.

        The jitter stream is derived from the master seed, the cell's
        cache key, and the attempt number — independent of scheduling,
        so reruns pause identically.  Affects wall-clock only.
        """
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))
        jitter = derive_seed(self.master_seed, f"backoff:{key}:{attempt}")
        return base * (0.5 + 0.5 * ((jitter % 1024) / 1024.0))

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------
    def _record(self, outcome: CellOutcome) -> None:
        if self.registry is None:
            return
        self.registry.counter(
            "repro_campaign_cells_total",
            help="Campaign cells finished, by task and result source.",
            label_names=("task", "status"),
        ).labels(task=outcome.cell.task, status=outcome.status).inc()
        if outcome.attempts > 1:
            self.registry.counter(
                "repro_campaign_retries_total",
                help="Cell attempts beyond the first, by task.",
                label_names=("task",),
            ).labels(task=outcome.cell.task).inc(outcome.attempts - 1)
        if outcome.error is not None:
            self.registry.counter(
                "repro_campaign_quarantined_total",
                help="Cells that exhausted their attempts and were "
                "quarantined as failures.",
                label_names=("task",),
            ).labels(task=outcome.cell.task).inc()
        elif not outcome.cached:
            self.registry.histogram(
                "repro_campaign_cell_seconds",
                help="Wall-clock seconds per executed campaign cell.",
                label_names=("task",),
            ).labels(task=outcome.cell.task).observe(outcome.elapsed)

    def _record_restart(self, reason: str) -> None:
        if self.registry is None:
            return
        self.registry.counter(
            "repro_campaign_pool_restarts_total",
            help="Worker-pool restarts forced by timeouts or worker deaths.",
            label_names=("reason",),
        ).labels(reason=reason).inc()

    def _finish(self, result: CampaignResult) -> CampaignResult:
        if self.registry is not None:
            self.registry.gauge(
                "repro_campaign_wall_seconds",
                help="Wall-clock seconds of the last campaign run.",
            ).set(result.wall_clock)
        if self.checkpoint is not None:
            self.checkpoint.close()
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, cells: Iterable[CampaignCell]) -> CampaignResult:
        started = time.perf_counter()
        resolved = [resolve_cell(cell, self.master_seed) for cell in cells]
        keys = [cache_key(cell.task, cell.params) for cell in resolved]
        total = len(resolved)
        outcomes: List[Optional[CellOutcome]] = [None] * total
        done = 0
        restarts = 0

        journal = {}
        if self.checkpoint is not None and self.resume:
            journal = self.checkpoint.load()

        def complete(index: int, outcome: CellOutcome) -> None:
            nonlocal done
            outcomes[index] = outcome
            done += 1
            if self.checkpoint is not None and not outcome.cached:
                self.checkpoint.append(outcome)
            self._record(outcome)
            if self.progress is not None:
                self.progress(done, total, outcome)

        pending: List[int] = []
        for i, (cell, key) in enumerate(zip(resolved, keys)):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                complete(
                    i,
                    CellOutcome(
                        cell=cell,
                        key=key,
                        result=hit["result"],
                        cached=True,
                        elapsed=hit.get("elapsed", 0.0),
                    ),
                )
                continue
            replay = journal.get(key)
            if replay is not None and replay.get("error") is None:
                # Completed before the interruption: replay, don't re-run.
                complete(
                    i,
                    CellOutcome(
                        cell=cell,
                        key=key,
                        result=replay["result"],
                        cached=True,
                        elapsed=replay.get("elapsed", 0.0),
                        attempts=replay.get("attempts", 1),
                    ),
                )
                continue
            pending.append(i)

        if pending and self.jobs == 1:
            for i in pending:
                complete(i, self._run_inline(resolved[i], keys[i]))
        elif pending:
            restarts = self._run_pool(resolved, keys, pending, complete)

        final = [o for o in outcomes if o is not None]
        assert len(final) == total
        return self._finish(
            CampaignResult(
                outcomes=final,
                wall_clock=time.perf_counter() - started,
                jobs=self.jobs,
                pool_restarts=restarts,
            )
        )

    # -- jobs=1: supervised inline execution ---------------------------
    def _run_inline(self, cell: CampaignCell, key: str) -> CellOutcome:
        attempts = 1 + self.retries
        for attempt in range(1, attempts + 1):
            result, elapsed, error = _execute_cell(cell.task, dict(cell.params))
            if error is None:
                return self._store(cell, key, result, elapsed, attempts=attempt)
            if attempt < attempts:
                time.sleep(self.backoff(key, attempt))
        return CellOutcome(
            cell=cell, key=key, result=None, cached=False,
            elapsed=elapsed, error=error, attempts=attempts,
        )

    # -- jobs>1: supervised process pool -------------------------------
    def _run_pool(
        self,
        resolved: List[CampaignCell],
        keys: List[str],
        pending: List[int],
        complete: Callable[[int, CellOutcome], None],
    ) -> int:
        workers = min(self.jobs, len(pending))
        max_attempts = 1 + self.retries
        now = time.perf_counter()
        #: (index, attempt, not-before) — cells awaiting (re)submission
        queue: List[Tuple[int, int, float]] = [(i, 1, now) for i in pending]
        active: Dict[Any, _Attempt] = {}
        restarts = 0
        pool = ProcessPoolExecutor(max_workers=workers)

        def fail_or_requeue(state: _Attempt, error: str, burn: bool = True) -> None:
            """One attempt ended badly: retry with backoff or quarantine."""
            index, attempt = state.index, state.attempt
            if not burn:
                queue.append((index, attempt, time.perf_counter()))
                return
            if attempt < max_attempts:
                delay = self.backoff(keys[index], attempt)
                queue.append((index, attempt + 1, time.perf_counter() + delay))
            else:
                complete(
                    index,
                    CellOutcome(
                        cell=resolved[index], key=keys[index], result=None,
                        cached=False, elapsed=0.0, error=error,
                        attempts=max_attempts,
                    ),
                )

        def restart_pool(reason: str) -> None:
            nonlocal pool, restarts
            restarts += 1
            self._record_restart(reason)
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except OSError:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            pool = ProcessPoolExecutor(max_workers=workers)

        try:
            while queue or active:
                now = time.perf_counter()
                # submit everything whose backoff delay has elapsed
                ready = [q for q in queue if q[2] <= now]
                if ready and len(active) < workers:
                    for index, attempt, _ in ready[: workers - len(active)]:
                        queue.remove((index, attempt, _))
                        future = pool.submit(
                            _execute_cell, resolved[index].task,
                            dict(resolved[index].params),
                        )
                        active[future] = _Attempt(index, attempt)
                if not active:
                    # nothing in flight: sleep until the nearest backoff ends
                    time.sleep(
                        max(0.0, min(q[2] for q in queue) - time.perf_counter())
                    )
                    continue

                finished, _ = wait(
                    set(active), timeout=self.poll, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in finished:
                    state = active.pop(future)
                    try:
                        result, elapsed, error = future.result()
                    except BrokenProcessPool:
                        broken = True
                        fail_or_requeue(
                            state,
                            "worker process died (BrokenProcessPool): killed "
                            "by the OS or crashed mid-cell",
                        )
                        continue
                    if error is None:
                        complete(
                            state.index,
                            self._store(
                                resolved[state.index], keys[state.index],
                                result, elapsed, attempts=state.attempt,
                            ),
                        )
                    else:
                        fail_or_requeue(state, error)
                if broken:
                    # every other in-flight future is doomed with the pool
                    for future, state in list(active.items()):
                        burn = future.done() and future.exception() is not None
                        fail_or_requeue(
                            state,
                            "worker process died (BrokenProcessPool)",
                            burn=burn,
                        )
                    active.clear()
                    restart_pool("worker-death")
                    continue

                # watchdog: hung cells past the wall-clock budget
                if self.timeout is None:
                    continue
                now = time.perf_counter()
                expired = []
                for future, state in active.items():
                    if state.started is None and future.running():
                        state.started = now
                    if (
                        state.started is not None
                        and now - state.started > self.timeout
                    ):
                        expired.append((future, state))
                if expired:
                    # the pool must die to reclaim the stuck workers;
                    # innocents are resubmitted without burning an attempt
                    for future, state in expired:
                        active.pop(future)
                        fail_or_requeue(
                            state,
                            f"cell exceeded timeout={self.timeout}s "
                            f"(attempt {state.attempt})",
                        )
                    for future, state in list(active.items()):
                        fail_or_requeue(state, "", burn=False)
                    active.clear()
                    restart_pool("timeout")
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return restarts

    def _store(
        self,
        cell: CampaignCell,
        key: str,
        result: Any,
        elapsed: float,
        attempts: int = 1,
    ) -> CellOutcome:
        if self.cache is not None:
            self.cache.put(key, cell.task, cell.params, result, elapsed)
        return CellOutcome(
            cell=cell, key=key, result=result, cached=False, elapsed=elapsed,
            attempts=attempts,
        )

    @property
    def last_result(self) -> Optional[CampaignResult]:
        return self.history[-1] if self.history else None

    def stats(self) -> Dict[str, Any]:
        """Aggregate summary across every campaign this runner ran."""
        return {
            "campaigns": len(self.history),
            "cells": sum(len(r) for r in self.history),
            "executed": sum(r.executed for r in self.history),
            "cached": sum(r.cached for r in self.history),
            "failed": sum(r.failed for r in self.history),
            "retries": sum(r.retries for r in self.history),
            "pool_restarts": sum(r.pool_restarts for r in self.history),
            "jobs": self.jobs,
            "wall_clock": sum(r.wall_clock for r in self.history),
        }
