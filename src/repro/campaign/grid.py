"""Declarative scenario grids.

A campaign is a list of *cells*; each cell names a registered task
(:mod:`repro.campaign.tasks`) and carries a flat, JSON-able parameter
mapping.  :class:`CampaignGrid` expands the Cartesian product of a set
of axes over a base parameter dict — the declarative way to say
"4 delivery approaches × 3 seeds × 2 source rates"::

    grid = CampaignGrid(
        "comparison.receiver",
        axes={"approach": ["local", "bidir"], "seed": [0, 1, 2]},
        base={"move_link": "L6"},
    )
    cells = grid.cells()          # 6 cells, deterministic order

Cells are value objects: two cells with the same task and parameters
are equal, hash equal, and (by construction) map to the same cache key.
Parameter values must be JSON scalars, lists, or string-keyed dicts so
every cell can be shipped to a worker process, hashed stably, and
cached on disk.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

__all__ = ["CampaignCell", "CampaignGrid", "canonical_params"]


def _check_jsonable(value: Any, path: str) -> None:
    if value is None or isinstance(value, (str, int, float, bool)):
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_jsonable(item, f"{path}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"{path}: dict keys must be strings, got {key!r}")
            _check_jsonable(item, f"{path}.{key}")
        return
    raise TypeError(
        f"{path}: campaign parameters must be JSON-able, got {type(value).__name__}"
    )


def canonical_params(params: Mapping[str, Any]) -> str:
    """Canonical JSON for a parameter mapping: sorted keys, no spaces.

    This string — not the in-memory dict — is what cache keys and
    derived per-cell seeds are computed from, so insertion order of the
    mapping never matters.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignCell:
    """One unit of work: a registered task plus its parameters."""

    task: str
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Optional display label; defaults to ``task`` + canonical params.
    label: str = ""

    def __post_init__(self) -> None:
        _check_jsonable(dict(self.params), self.task)
        # Freeze the mapping so cells are safe to share and hash.
        object.__setattr__(self, "params", dict(self.params))
        if not self.label:
            object.__setattr__(self, "label", self.describe())

    def describe(self) -> str:
        return f"{self.task}{canonical_params(self.params)}"

    def with_params(self, **overrides: Any) -> "CampaignCell":
        merged = {**self.params, **overrides}
        return CampaignCell(task=self.task, params=merged, label=self.label)

    def __hash__(self) -> int:
        return hash((self.task, canonical_params(self.params)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CampaignCell):
            return NotImplemented
        return self.task == other.task and canonical_params(
            self.params
        ) == canonical_params(other.params)


class CampaignGrid:
    """Cartesian product of parameter axes over a base mapping."""

    def __init__(
        self,
        task: str,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        base: Optional[Mapping[str, Any]] = None,
        name: str = "",
    ) -> None:
        self.task = task
        self.axes: Dict[str, List[Any]] = {
            key: list(values) for key, values in (axes or {}).items()
        }
        for key, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {key!r} has no values")
        self.base: Dict[str, Any] = dict(base or {})
        overlap = set(self.axes) & set(self.base)
        if overlap:
            raise ValueError(f"axes shadow base parameters: {sorted(overlap)}")
        self.name = name or task

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[CampaignCell]:
        return iter(self.cells())

    def cells(self) -> List[CampaignCell]:
        """All cells, in deterministic row-major (axis-insertion) order."""
        names = list(self.axes)
        out: List[CampaignCell] = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            params = dict(self.base)
            params.update(zip(names, combo))
            out.append(CampaignCell(task=self.task, params=params))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = "×".join(str(len(v)) for v in self.axes.values()) or "1"
        return f"<CampaignGrid {self.name} task={self.task} cells={dims}>"
