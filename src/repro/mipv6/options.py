"""Mobile IPv6 destination options and sub-options — wire formats.

The Mobile IPv6 draft defines four IPv6 destination options (paper §2,
footnote 3): **Binding Update**, **Binding Acknowledgement**, **Binding
Request**, and **Home Address**.  Binding Updates may carry
*sub-options*; the draft defines the Unique Identifier and Alternate
Care-of Address sub-options, and the paper proposes a third one — the
**Multicast Group List Sub-Option** (Figure 5) — that lets a mobile
host hand its multicast group memberships to its home agent inside a
Binding Update with the Home Registration (H) bit set (§4.3.2).

All options/sub-options here serialize to and parse from bytes exactly;
the Figure 5 rule "Sub-Option Len fields must be set to 16·N, where N
is the number of multicast group addresses" is enforced on both paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..net.addressing import Address
from ..net.packet import DestinationOption

__all__ = [
    "SubOption",
    "UniqueIdentifierSubOption",
    "AlternateCareOfAddressSubOption",
    "MulticastGroupListSubOption",
    "BindingUpdateOption",
    "BindingAckOption",
    "BindingRequestOption",
    "HomeAddressOption",
    "parse_sub_options",
    "BU_FLAG_ACK",
    "BU_FLAG_HOME",
]

# Option type codes (draft-ietf-mobileip-ipv6-10 §5).
OPT_BINDING_UPDATE = 0xC6
OPT_BINDING_ACK = 0x07
OPT_BINDING_REQUEST = 0x08
OPT_HOME_ADDRESS = 0xC9

# Sub-option type codes: 1 and 2 per the draft, 3 is the paper's proposal.
SUBOPT_UNIQUE_IDENTIFIER = 1
SUBOPT_ALTERNATE_COA = 2
SUBOPT_MULTICAST_GROUP_LIST = 3

# Binding Update flag bits.
BU_FLAG_ACK = 0x80  # A: acknowledgement requested
BU_FLAG_HOME = 0x40  # H: home registration


class SubOption:
    """Base class for Binding Update sub-options (Type, Len, Data)."""

    sub_option_type: int = 0

    def data_bytes(self) -> bytes:
        raise NotImplementedError

    @property
    def size_bytes(self) -> int:
        return 2 + len(self.data_bytes())

    def serialize(self) -> bytes:
        data = self.data_bytes()
        if len(data) > 255:
            raise ValueError("sub-option data exceeds 255 bytes")
        return bytes([self.sub_option_type, len(data)]) + data


@dataclass(frozen=True)
class UniqueIdentifierSubOption(SubOption):
    """Unique Identifier Sub-Option (draft §5.5.1): a 16-bit id."""

    identifier: int = 0
    sub_option_type = SUBOPT_UNIQUE_IDENTIFIER

    def data_bytes(self) -> bytes:
        return self.identifier.to_bytes(2, "big")

    @classmethod
    def parse(cls, data: bytes) -> "UniqueIdentifierSubOption":
        if len(data) != 2:
            raise ValueError(f"unique identifier needs 2 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))


@dataclass(frozen=True)
class AlternateCareOfAddressSubOption(SubOption):
    """Alternate Care-of Address Sub-Option (draft §5.5.2)."""

    care_of_address: Address = field(default_factory=lambda: Address("::"))
    sub_option_type = SUBOPT_ALTERNATE_COA

    def data_bytes(self) -> bytes:
        return self.care_of_address.packed()

    @classmethod
    def parse(cls, data: bytes) -> "AlternateCareOfAddressSubOption":
        return cls(Address.from_packed(data))


class MulticastGroupListSubOption(SubOption):
    """The paper's proposed Multicast Group List Sub-Option (Figure 5).

    Carries the list of multicast groups the mobile host requests its
    home agent to join on its behalf.  Valid only in a Binding Update
    with Home Registration (H) set.  ``Sub-Option Len = 16·N``.

    >>> opt = MulticastGroupListSubOption([Address("ff1e::1")])
    >>> raw = opt.serialize()
    >>> raw[1]          # Sub-Option Len = 16 * 1
    16
    >>> MulticastGroupListSubOption.parse(raw[2:]).groups
    [Address('ff1e::1')]
    """

    sub_option_type = SUBOPT_MULTICAST_GROUP_LIST

    def __init__(self, groups: List[Address]) -> None:
        checked: List[Address] = []
        for group in groups:
            group = Address(group)
            if not group.is_multicast:
                raise ValueError(f"{group} is not a multicast group address")
            checked.append(group)
        self.groups = checked

    def data_bytes(self) -> bytes:
        return b"".join(g.packed() for g in self.groups)

    @classmethod
    def parse(cls, data: bytes) -> "MulticastGroupListSubOption":
        if len(data) % 16 != 0:
            raise ValueError(
                f"Multicast Group List length must be 16*N, got {len(data)}"
            )
        return cls(
            [Address.from_packed(data[i : i + 16]) for i in range(0, len(data), 16)]
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MulticastGroupListSubOption)
            and self.groups == other.groups
        )

    def __repr__(self) -> str:
        return f"MulticastGroupListSubOption({self.groups!r})"


_SUBOPT_PARSERS = {
    SUBOPT_UNIQUE_IDENTIFIER: UniqueIdentifierSubOption.parse,
    SUBOPT_ALTERNATE_COA: AlternateCareOfAddressSubOption.parse,
    SUBOPT_MULTICAST_GROUP_LIST: MulticastGroupListSubOption.parse,
}


def parse_sub_options(raw: bytes) -> List[SubOption]:
    """Parse a concatenation of sub-options (TLV walk)."""
    result: List[SubOption] = []
    pos = 0
    while pos < len(raw):
        if pos + 2 > len(raw):
            raise ValueError("truncated sub-option header")
        sub_type, sub_len = raw[pos], raw[pos + 1]
        body = raw[pos + 2 : pos + 2 + sub_len]
        if len(body) != sub_len:
            raise ValueError("truncated sub-option body")
        parser = _SUBOPT_PARSERS.get(sub_type)
        if parser is None:
            raise ValueError(f"unknown sub-option type {sub_type}")
        result.append(parser(body))
        pos += 2 + sub_len
    return result


# ----------------------------------------------------------------------
# destination options
# ----------------------------------------------------------------------
class BindingUpdateOption(DestinationOption):
    """Binding Update destination option (draft §5.1).

    Layout used here: Type(1) Len(1) Flags(1) Reserved(1) Sequence(2)
    Lifetime(4) Sub-Options(...).  The paper's *extended* Binding Update
    is this option carrying a :class:`MulticastGroupListSubOption`.
    """

    option_type = OPT_BINDING_UPDATE

    def __init__(
        self,
        home_address: Address,
        care_of_address: Address,
        lifetime: float,
        sequence: int = 0,
        ack_requested: bool = True,
        home_registration: bool = True,
        sub_options: Tuple[SubOption, ...] = (),
    ) -> None:
        self.home_address = Address(home_address)
        self.care_of_address = Address(care_of_address)
        self.lifetime = float(lifetime)
        self.sequence = sequence
        self.ack_requested = ack_requested
        self.home_registration = home_registration
        self.sub_options = tuple(sub_options)

    # -- wire format ----------------------------------------------------
    @property
    def flags(self) -> int:
        value = 0
        if self.ack_requested:
            value |= BU_FLAG_ACK
        if self.home_registration:
            value |= BU_FLAG_HOME
        return value

    def _body(self) -> bytes:
        subs = b"".join(s.serialize() for s in self.sub_options)
        return (
            bytes([self.flags, 0])
            + (self.sequence & 0xFFFF).to_bytes(2, "big")
            + int(self.lifetime).to_bytes(4, "big")
            + subs
        )

    def serialize(self) -> bytes:
        body = self._body()
        return bytes([self.option_type, len(body)]) + body

    @classmethod
    def parse(
        cls, raw: bytes, home_address: Address, care_of_address: Address
    ) -> "BindingUpdateOption":
        """Parse from the option body; addressing context comes from the
        carrying packet (Home Address option + source address)."""
        if len(raw) < 8:
            raise ValueError("Binding Update too short")
        flags = raw[0]
        sequence = int.from_bytes(raw[2:4], "big")
        lifetime = float(int.from_bytes(raw[4:8], "big"))
        subs = parse_sub_options(raw[8:])
        return cls(
            home_address=home_address,
            care_of_address=care_of_address,
            lifetime=lifetime,
            sequence=sequence,
            ack_requested=bool(flags & BU_FLAG_ACK),
            home_registration=bool(flags & BU_FLAG_HOME),
            sub_options=tuple(subs),
        )

    @property
    def size_bytes(self) -> int:
        return 2 + len(self._body())

    def multicast_groups(self) -> List[Address]:
        """Groups requested via a Multicast Group List Sub-Option."""
        for sub in self.sub_options:
            if isinstance(sub, MulticastGroupListSubOption):
                return list(sub.groups)
        return []

    def describe(self) -> str:
        groups = self.multicast_groups()
        extra = f" +groups={len(groups)}" if groups else ""
        return f"BU[{self.home_address}@{self.care_of_address}{extra}]"


class BindingAckOption(DestinationOption):
    """Binding Acknowledgement destination option (draft §5.2)."""

    option_type = OPT_BINDING_ACK

    def __init__(
        self,
        status: int = 0,
        sequence: int = 0,
        lifetime: float = 0.0,
        refresh: float = 0.0,
    ) -> None:
        self.status = status
        self.sequence = sequence
        self.lifetime = float(lifetime)
        self.refresh = float(refresh)

    @property
    def accepted(self) -> bool:
        return self.status < 128

    def serialize(self) -> bytes:
        body = (
            bytes([self.status, 0])
            + (self.sequence & 0xFFFF).to_bytes(2, "big")
            + int(self.lifetime).to_bytes(4, "big")
            + int(self.refresh).to_bytes(4, "big")
        )
        return bytes([self.option_type, len(body)]) + body

    @classmethod
    def parse(cls, raw: bytes) -> "BindingAckOption":
        if len(raw) < 12:
            raise ValueError("Binding Acknowledgement too short")
        return cls(
            status=raw[0],
            sequence=int.from_bytes(raw[2:4], "big"),
            lifetime=float(int.from_bytes(raw[4:8], "big")),
            refresh=float(int.from_bytes(raw[8:12], "big")),
        )

    @property
    def size_bytes(self) -> int:
        return 14

    def describe(self) -> str:
        return f"BA[status={self.status} seq={self.sequence}]"


class BindingRequestOption(DestinationOption):
    """Binding Request destination option (draft §5.3) — no payload."""

    option_type = OPT_BINDING_REQUEST

    @property
    def size_bytes(self) -> int:
        return 2

    def serialize(self) -> bytes:
        return bytes([self.option_type, 0])

    def describe(self) -> str:
        return "BindingRequest"


class HomeAddressOption(DestinationOption):
    """Home Address destination option (draft §5.4, paper §2): carried in
    every packet a mobile node sends from a care-of address."""

    option_type = OPT_HOME_ADDRESS

    def __init__(self, home_address: Address) -> None:
        self.home_address = Address(home_address)

    def serialize(self) -> bytes:
        return bytes([self.option_type, 16]) + self.home_address.packed()

    @classmethod
    def parse(cls, raw: bytes) -> "HomeAddressOption":
        return cls(Address.from_packed(raw))

    @property
    def size_bytes(self) -> int:
        return 18

    def describe(self) -> str:
        return f"HomeAddr[{self.home_address}]"
