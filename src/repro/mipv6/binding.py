"""Binding cache (home-agent side) and binding update list (mobile side).

The home agent "stores the information about the current care-of
address of the mobile host in its binding cache and acts as a proxy for
the mobile host" (paper §2).  The paper's extension (§4.3.2) adds the
mobile host's multicast group list to the cache entry, so the home
agent can subscribe on the host's behalf and tunnel matching group
traffic.

Entries expire after the binding lifetime (default 256 s); expiry also
tears down the group subscriptions held on behalf of the host — the
failure mode the paper points out when extended Binding Updates stop
arriving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..net.addressing import Address
from ..sim import Simulator, Timer

__all__ = ["BindingCacheEntry", "BindingCache"]


@dataclass
class BindingCacheEntry:
    """One home-agent binding: home address -> care-of address (+groups)."""

    home_address: Address
    care_of_address: Address
    lifetime: float
    sequence: int = 0
    #: Multicast groups subscribed on behalf of this mobile node.
    groups: Set[Address] = field(default_factory=set)
    timer: Optional[Timer] = None
    registered_at: float = 0.0


class BindingCache:
    """The home agent's binding cache with lifetime management."""

    def __init__(
        self,
        sim: Simulator,
        on_expired: Optional[Callable[[BindingCacheEntry], None]] = None,
    ) -> None:
        self.sim = sim
        self._entries: Dict[Address, BindingCacheEntry] = {}
        self._on_expired = on_expired

    # ------------------------------------------------------------------
    def update(
        self,
        home_address: Address,
        care_of_address: Address,
        lifetime: float,
        sequence: int = 0,
        groups: Optional[List[Address]] = None,
    ) -> BindingCacheEntry:
        """Create or refresh a binding (Binding Update processing)."""
        home_address = Address(home_address)
        entry = self._entries.get(home_address)
        if entry is None:
            entry = BindingCacheEntry(
                home_address=home_address,
                care_of_address=Address(care_of_address),
                lifetime=lifetime,
                sequence=sequence,
                registered_at=self.sim.now,
            )
            entry.timer = Timer(
                self.sim,
                lambda e=entry: self._expire(e),
                name=f"binding.{home_address}",
            )
            self._entries[home_address] = entry
        else:
            if sequence < entry.sequence:
                return entry  # stale update
            entry.care_of_address = Address(care_of_address)
            entry.lifetime = lifetime
            entry.sequence = sequence
        if groups is not None:
            entry.groups = {Address(g) for g in groups}
        entry.timer.start(lifetime)
        return entry

    def remove(self, home_address: Address) -> Optional[BindingCacheEntry]:
        """Explicit deregistration (Binding Update with lifetime 0)."""
        entry = self._entries.pop(Address(home_address), None)
        if entry is not None and entry.timer is not None:
            entry.timer.stop()
        return entry

    def _expire(self, entry: BindingCacheEntry) -> None:
        self._entries.pop(entry.home_address, None)
        if self._on_expired is not None:
            self._on_expired(entry)

    # ------------------------------------------------------------------
    def get(self, home_address: Address) -> Optional[BindingCacheEntry]:
        return self._entries.get(Address(home_address))

    def __contains__(self, home_address: Address) -> bool:
        return Address(home_address) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[BindingCacheEntry]:
        return list(self._entries.values())

    def subscribers_of(self, group: Address) -> List[BindingCacheEntry]:
        """Bindings whose mobile node subscribed to ``group``."""
        group = Address(group)
        return [e for e in self._entries.values() if group in e.groups]

    def all_groups(self) -> Set[Address]:
        """Union of all groups subscribed on behalf of mobile nodes."""
        groups: Set[Address] = set()
        for entry in self._entries.values():
            groups |= entry.groups
        return groups
