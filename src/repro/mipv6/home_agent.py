"""Home agent: binding management, proxy intercept, and multicast relay.

The paper's network (Figure 1) has "five routers [that] act as PIM-DM
routers and home agents", so :class:`HomeAgent` extends
:class:`~repro.pimdm.router.MulticastRouter` with the Mobile IPv6
home-agent function:

* **Binding Updates** — maintain the binding cache, register the mobile
  node's home address as a proxy entry on the home link (so unicast
  traffic to the home address is intercepted and tunneled to the
  care-of address), and answer with Binding Acknowledgements,
* **extended Binding Updates** (paper §4.3.2, Figure 5) — the
  Multicast Group List Sub-Option makes the home agent join the listed
  groups *on behalf of* the mobile node and tunnel every matching
  multicast datagram to the care-of address,
* **reverse tunnel** (paper §4.2.2-B, Figure 4) — decapsulate
  multicast datagrams tunneled up from a mobile sender and forward them
  onto the home link / into the PIM-DM distribution tree, so the
  original source-rooted tree keeps serving all members.

System-load counters (`load["encapsulations"]`, binding-cache size,
per-group subscriber counts) feed the §4.3 comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net.addressing import Address
from ..net.interface import Interface
from ..net.messages import ControlPayload
from ..net.packet import Ipv6Packet
from ..pimdm.router import MulticastRouter
from .binding import BindingCache, BindingCacheEntry
from .config import MobileIpv6Config
from .options import (
    BindingAckOption,
    BindingRequestOption,
    BindingUpdateOption,
    MulticastGroupListSubOption,
)

__all__ = ["HomeAgent"]


class HomeAgent(MulticastRouter):
    """A PIM-DM router that is also a Mobile IPv6 home agent."""

    def __init__(
        self, *args, mipv6_config: Optional[MobileIpv6Config] = None, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.mipv6_config = mipv6_config or MobileIpv6Config()
        self.binding_cache = BindingCache(self.sim, on_expired=self._binding_expired)
        #: group -> number of bindings holding it (drives node-level joins)
        self._group_refcount: Dict[Address, int] = {}
        self.register_option_handler(BindingUpdateOption, self._on_binding_update)
        self.register_tunnel_handler(self._on_reverse_tunnel)
        self.pim.on_local_delivery(self._relay_group_traffic)
        #: experiment counters
        self.tunneled_to_mobiles = 0
        self.reverse_tunneled = 0
        #: pending pre-expiry Binding Request probes, one per binding
        self._binding_request_events: Dict[Address, object] = {}

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash loses the binding cache (it is soft state rebuilt from
        Binding Updates).  PIM/MLD are silenced first so the teardown
        emits no Prunes or Done messages — a crashed router says
        nothing; recovery is driven by the mobile nodes' refreshes and
        retransmissions."""
        super().crash()  # silences PIM before bindings are torn down
        for entry in list(self.binding_cache.entries()):
            self.binding_cache.remove(entry.home_address)
            home_iface = self.home_iface_for(entry.home_address)
            if home_iface is not None and home_iface.link is not None:
                if home_iface.link.resolve(entry.home_address) is home_iface:
                    home_iface.link.unregister_address(entry.home_address)
        self._group_refcount.clear()
        for event in self._binding_request_events.values():
            if event.pending:
                event.cancel()
        self._binding_request_events.clear()

    # ------------------------------------------------------------------
    # home-link discovery
    # ------------------------------------------------------------------
    def home_iface_for(self, home_address: Address) -> Optional[Interface]:
        """The attached interface whose link prefix covers ``home_address``."""
        for iface in self.interfaces:
            if iface.link is not None and iface.link.prefix.contains(home_address):
                return iface
        return None

    def serves_home_address(self, home_address: Address) -> bool:
        return self.home_iface_for(home_address) is not None

    # ------------------------------------------------------------------
    # Binding Update processing
    # ------------------------------------------------------------------
    def _on_binding_update(
        self, packet: Ipv6Packet, bu: BindingUpdateOption, iface: Interface
    ) -> None:
        if not bu.home_registration:
            return
        home_iface = self.home_iface_for(bu.home_address)
        if home_iface is None:
            self._send_binding_ack(bu, status=132)  # not home agent for this MN
            self.trace("mipv6", event="bu-rejected", home=str(bu.home_address))
            return
        if bu.lifetime <= 0:
            entry = self.binding_cache.remove(bu.home_address)
            if entry is not None:
                self._teardown_binding(entry)
            self._send_binding_ack(bu, status=0, to_home_link=True)
            self.trace("mipv6", event="binding-deregistered", home=str(bu.home_address))
            return

        has_group_list = any(
            isinstance(sub, MulticastGroupListSubOption) for sub in bu.sub_options
        )
        previous = self.binding_cache.get(bu.home_address)
        old_groups = set(previous.groups) if previous is not None else set()
        entry = self.binding_cache.update(
            home_address=bu.home_address,
            care_of_address=bu.care_of_address,
            lifetime=min(bu.lifetime, self.mipv6_config.binding_lifetime),
            sequence=bu.sequence,
            groups=bu.multicast_groups() if has_group_list else None,
        )
        if previous is None:
            # Defend the home address on the home link (proxy intercept).
            home_iface.link.register_address(home_iface, bu.home_address)
            self.trace(
                "mipv6",
                event="binding-registered",
                home=str(bu.home_address),
                coa=str(bu.care_of_address),
            )
        else:
            self.trace(
                "mipv6",
                event="binding-refreshed",
                home=str(bu.home_address),
                coa=str(bu.care_of_address),
            )
        if has_group_list:
            self._sync_groups(old_groups, entry.groups)
        if bu.ack_requested:
            self._send_binding_ack(bu, status=0)
        self._schedule_binding_request(entry)

    def _send_binding_ack(
        self, bu: BindingUpdateOption, status: int, to_home_link: bool = False
    ) -> None:
        dst = bu.home_address if to_home_link else bu.care_of_address
        granted = min(bu.lifetime, self.mipv6_config.binding_lifetime)
        ack = BindingAckOption(
            status=status,
            sequence=bu.sequence,
            lifetime=granted,
            # The advertised refresh interval must come up well inside the
            # granted lifetime, or the binding dies between refreshes.
            refresh=min(self.mipv6_config.binding_refresh_interval, granted / 2),
        )
        packet = Ipv6Packet(
            self.primary_address(),
            dst,
            ControlPayload("mipv6", 0, "BA-carrier"),
            dest_options=(ack,),
        )
        self.route_and_send(packet)
        self.trace("mipv6", event="ba-sent", to=str(dst), status=status)

    def _schedule_binding_request(self, entry) -> None:
        """Probe the mobile with a Binding Request at 90% of the granted
        lifetime (draft §5.3): if its refreshes stopped arriving, this
        is the last chance to keep the binding (and the on-behalf group
        memberships) alive."""
        pending = self._binding_request_events.get(entry.home_address)
        if pending is not None and pending.pending:
            pending.cancel()
        self._binding_request_events[entry.home_address] = self.sim.schedule(
            entry.lifetime * 0.9,
            self._send_binding_request,
            entry.home_address,
            label=f"{self.name}.binding-request",
        )

    def _send_binding_request(self, home_address: Address) -> None:
        entry = self.binding_cache.get(home_address)
        if entry is None:
            return
        packet = Ipv6Packet(
            self.primary_address(),
            entry.care_of_address,
            ControlPayload("mipv6", 0, "BR-carrier"),
            dest_options=(BindingRequestOption(),),
        )
        self.route_and_send(packet)
        self.trace("mipv6", event="binding-request-sent", home=str(home_address))

    def _binding_expired(self, entry: BindingCacheEntry) -> None:
        self.trace("mipv6", event="binding-expired", home=str(entry.home_address))
        self._teardown_binding(entry)

    def _teardown_binding(self, entry: BindingCacheEntry) -> None:
        home_iface = self.home_iface_for(entry.home_address)
        if home_iface is not None and home_iface.link is not None:
            # Only drop the proxy entry if it still points at us (the MN
            # re-registers its own address when it returns home).
            if home_iface.link.resolve(entry.home_address) is home_iface:
                home_iface.link.unregister_address(entry.home_address)
        self._sync_groups(set(entry.groups), set())

    # ------------------------------------------------------------------
    # on-behalf group membership (paper §4.3.2)
    # ------------------------------------------------------------------
    def _sync_groups(self, old: set, new: set) -> None:
        for group in sorted(new - old):
            count = self._group_refcount.get(group, 0)
            self._group_refcount[group] = count + 1
            if count == 0:
                self.join_local_group(group)
                self.trace("mipv6", event="on-behalf-join", group=str(group))
        for group in sorted(old - new):
            count = self._group_refcount.get(group, 0)
            if count <= 1:
                self._group_refcount.pop(group, None)
                self.leave_local_group(group)
                self.trace("mipv6", event="on-behalf-leave", group=str(group))
            else:
                self._group_refcount[group] = count - 1

    def groups_on_behalf(self) -> List[Address]:
        return sorted(self._group_refcount)

    # ------------------------------------------------------------------
    # downstream relay: group traffic -> tunnels to subscribed mobiles
    # ------------------------------------------------------------------
    def _relay_group_traffic(self, packet: Ipv6Packet, iface: Interface) -> None:
        for entry in self.binding_cache.subscribers_of(packet.dst):
            outer = packet.encapsulate(self.primary_address(), entry.care_of_address)
            self.load["encapsulations"] += 1
            self.tunneled_to_mobiles += 1
            self.trace(
                "mipv6",
                event="tunnel-mcast-to-mn",
                home=str(entry.home_address),
                coa=str(entry.care_of_address),
                group=str(packet.dst),
            )
            self.route_and_send(outer)

    # ------------------------------------------------------------------
    # unicast proxy intercept
    # ------------------------------------------------------------------
    def intercepts(self, dst: Address) -> bool:
        return dst in self.binding_cache

    def intercept_deliver(self, packet: Ipv6Packet, iface: Interface) -> None:
        entry = self.binding_cache.get(packet.dst)
        if entry is None:
            return
        outer = packet.encapsulate(self.primary_address(), entry.care_of_address)
        self.load["encapsulations"] += 1
        self.trace(
            "mipv6",
            event="tunnel-unicast-to-mn",
            home=str(entry.home_address),
            coa=str(entry.care_of_address),
        )
        self.route_and_send(outer)

    # ------------------------------------------------------------------
    # reverse tunnel: mobile sender -> home link (paper Figure 4)
    # ------------------------------------------------------------------
    def _on_reverse_tunnel(self, packet: Ipv6Packet, iface: Interface) -> bool:
        inner = packet.decapsulate()
        if not inner.dst.is_multicast:
            return False  # plain unicast tunnel: default handling
        home_iface = self.home_iface_for(inner.src)
        if home_iface is None or home_iface.link is None:
            self.trace("mipv6", event="reverse-tunnel-rejected", src=str(inner.src))
            return True
        self.reverse_tunneled += 1
        self.trace(
            "mipv6",
            event="reverse-tunnel-forward",
            src=str(inner.src),
            group=str(inner.dst),
            home_link=home_iface.link.name,
        )
        # Deliver to members on the home link itself ...
        self.send_on(home_iface, inner)
        # ... and inject into our own PIM-DM forwarding as if it had
        # arrived on the home interface (RPF-correct: the inner source
        # address belongs to the home link's prefix).
        self.pim.on_multicast_data(inner, home_iface)
        return True
