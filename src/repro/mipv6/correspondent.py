"""Correspondent-node route optimization (Mobile IPv6 draft §8).

The paper's §2 review covers both halves of Mobile IPv6 unicast:

* a mobile host away from home sends *directly* from its care-of
  address, attaching a **Home Address destination option** so the
  correspondent recognizes the flow by home address, and
* a correspondent that processes Binding Updates can send *directly to
  the care-of address* instead of letting the home agent triangle-route
  — route optimization.

Multicast delivery (the paper's topic) never uses this path, but a
complete Mobile IPv6 host implements it, and the reproduction's unicast
workloads exercise it: :class:`CorrespondentMixin` adds a binding cache
and Home-Address-option processing to any host; mobile nodes send it
Binding Updates when they receive traffic from it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net.addressing import Address
from ..net.interface import Interface
from ..net.messages import Message
from ..net.node import Host
from ..net.packet import Ipv6Packet
from ..sim import Timer
from .options import BindingUpdateOption, HomeAddressOption

__all__ = ["CorrespondentHost"]


class CorrespondentHost(Host):
    """A host that understands Home Address options and Binding Updates.

    Keeps a correspondent binding cache (home address → care-of
    address) and uses it to route-optimize its outgoing unicast
    traffic toward mobile peers.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: correspondent binding cache: home address -> (coa, timer)
        self._peer_bindings: Dict[Address, Address] = {}
        self._binding_timers: Dict[Address, Timer] = {}
        self.route_optimized_sends = 0
        self.triangle_sends = 0
        self.register_option_handler(HomeAddressOption, self._on_home_address)
        self.register_option_handler(BindingUpdateOption, self._on_binding_update)

    # ------------------------------------------------------------------
    # learning bindings
    # ------------------------------------------------------------------
    def _on_home_address(
        self, packet: Ipv6Packet, option: HomeAddressOption, iface: Interface
    ) -> None:
        # The Home Address option identifies the mobile peer; the packet
        # source is its current care-of address.  (The draft requires a
        # Binding Update for cache entries; we record the mapping only
        # when one arrives — this handler just traces visibility.)
        self.trace(
            "mipv6",
            event="home-address-seen",
            home=str(option.home_address),
            coa=str(packet.src),
        )

    def _on_binding_update(
        self, packet: Ipv6Packet, bu: BindingUpdateOption, iface: Interface
    ) -> None:
        if bu.home_registration:
            return  # home registrations are for home agents, not us
        home = bu.home_address
        if bu.lifetime <= 0:
            self._drop_binding(home)
            return
        self._peer_bindings[home] = bu.care_of_address
        timer = self._binding_timers.get(home)
        if timer is None:
            timer = Timer(
                self.sim,
                lambda h=home: self._drop_binding(h),
                name=f"{self.name}.cn-binding.{home}",
            )
            self._binding_timers[home] = timer
        timer.start(bu.lifetime)
        self.trace(
            "mipv6",
            event="cn-binding-learned",
            home=str(home),
            coa=str(bu.care_of_address),
        )

    def _drop_binding(self, home: Address) -> None:
        self._peer_bindings.pop(home, None)
        timer = self._binding_timers.pop(home, None)
        if timer is not None:
            timer.stop()
        self.trace("mipv6", event="cn-binding-dropped", home=str(home))

    def peer_binding(self, home: Address) -> Optional[Address]:
        return self._peer_bindings.get(Address(home))

    # ------------------------------------------------------------------
    # route-optimized sending
    # ------------------------------------------------------------------
    def send_to_peer(self, peer_home: Address, message: Message) -> Ipv6Packet:
        """Send unicast to a (possibly mobile) peer identified by its
        home address, route-optimizing when a binding is cached.

        Without a binding the packet goes to the home address and rides
        the home agent's tunnel (triangle routing).  With one, it goes
        straight to the care-of address — modelled as an outer header to
        the CoA carrying the home-addressed packet (the draft uses a
        routing header; the byte cost is equivalent).
        """
        peer_home = Address(peer_home)
        inner = Ipv6Packet(self.primary_address(), peer_home, message)
        coa = self._peer_bindings.get(peer_home)
        if coa is None:
            self.triangle_sends += 1
            self.route_and_send(inner)
            return inner
        self.route_optimized_sends += 1
        outer = inner.encapsulate(self.primary_address(), coa)
        self.trace(
            "mipv6", event="route-optimized-send", home=str(peer_home), coa=str(coa)
        )
        self.route_and_send(outer)
        return outer
