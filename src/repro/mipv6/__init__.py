"""Mobile IPv6 (draft-ietf-mobileip-ipv6-10): mobile nodes, home agents,
binding management, and the paper's Multicast Group List Sub-Option."""

from .binding import BindingCache, BindingCacheEntry
from .config import DeliveryMode, MobileIpv6Config
from .correspondent import CorrespondentHost
from .home_agent import HomeAgent
from .mobile_node import MobileNode
from .options import (
    AlternateCareOfAddressSubOption,
    BindingAckOption,
    BindingRequestOption,
    BindingUpdateOption,
    HomeAddressOption,
    MulticastGroupListSubOption,
    SubOption,
    UniqueIdentifierSubOption,
    parse_sub_options,
)

__all__ = [
    "AlternateCareOfAddressSubOption",
    "BindingAckOption",
    "BindingCache",
    "BindingCacheEntry",
    "BindingRequestOption",
    "BindingUpdateOption",
    "CorrespondentHost",
    "DeliveryMode",
    "HomeAddressOption",
    "HomeAgent",
    "MobileIpv6Config",
    "MobileNode",
    "MulticastGroupListSubOption",
    "SubOption",
    "UniqueIdentifierSubOption",
    "parse_sub_options",
]
