"""Mobile node: movement, binding maintenance, and multicast delivery modes.

A :class:`MobileNode` is a host with one interface that changes its
point of attachment (paper §2):

* ``move_to(link)`` runs the handoff pipeline: detach → (L2 handoff
  delay) attach → (movement detection delay) → (care-of address
  configuration delay) → Binding Update to the home agent.  Until the
  care-of address is configured, outgoing datagrams carry the **stale
  source address** — the erroneous-source window whose unwanted assert
  processes §4.3.1 describes,
* multicast reception (paper §4.2.1) is either **local** — MLD
  membership on the foreign link using the care-of address, approach A —
  or **via the home agent** — the group list rides in extended Binding
  Updates and traffic arrives through the tunnel, approach B,
* multicast sending (paper §4.2.2) is either **local** — datagrams use
  the care-of address as source, so PIM-DM sees a brand-new sender and
  builds a new tree — or **tunneled to the home agent**, which forwards
  on the home link so the existing tree keeps working.

The two mode switches are exactly Table 1's axes; the four combinations
are named in :mod:`repro.core.strategies`.

The ``mobility`` events emitted along the handoff pipeline
(``detached`` / ``attached`` / ``movement-detected`` /
``coa-configured`` / ``returned-home``) delimit the ``phase`` spans of
a ``handover`` transaction, and the ``mipv6`` events ``bu-sent`` /
``bu-retransmit`` / ``ba-received`` open, annotate and close its
``binding-update`` child — see :mod:`repro.obs.spans`.  Span
reconstruction correlates purely on these existing events; renaming
one or dropping a detail field breaks the span layer's handlers before
it breaks any golden digest.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..mld import MldConfig, MldHost
from ..net.addressing import Address
from ..net.link import Link
from ..net.messages import ControlPayload, Message
from ..net.node import Host
from ..net.packet import Ipv6Packet
from ..sim import Timer
from .config import DeliveryMode, MobileIpv6Config
from .options import (
    BindingAckOption,
    BindingRequestOption,
    BindingUpdateOption,
    HomeAddressOption,
    MulticastGroupListSubOption,
)

__all__ = ["MobileNode"]


class MobileNode(Host):
    """A Mobile IPv6 host (sender and/or receiver of multicast)."""

    def __init__(
        self,
        *args,
        home_link: Link,
        home_agent_address: Address,
        host_id: int,
        alternate_home_agents: Sequence[Address] = (),
        config: Optional[MobileIpv6Config] = None,
        mld_config: Optional[MldConfig] = None,
        recv_mode: DeliveryMode = DeliveryMode.LOCAL,
        send_mode: DeliveryMode = DeliveryMode.LOCAL,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.config = config or MobileIpv6Config()
        self.recv_mode = recv_mode
        self.send_mode = send_mode
        self.host_id = host_id
        self.home_link = home_link
        self.home_address = home_link.prefix.address_for_host(host_id)
        self.home_agent_address = Address(home_agent_address)
        #: failover ring (paper §5 outlook / its reference [10]: home
        #: agent redundancy): when Binding Updates to the current home
        #: agent go unanswered, the mobile rotates to the next one.
        self._ha_candidates: List[Address] = [Address(home_agent_address)] + [
            Address(a) for a in alternate_home_agents
        ]
        self._ha_index = 0
        self.ha_failovers = 0
        self.mld = MldHost(self, mld_config)

        self.iface = self.new_interface(name=f"{self.name}.if")
        self.iface.attach(home_link)
        self.iface.add_address(self.home_address)
        self.current_link: Optional[Link] = home_link
        self.care_of_address: Optional[Address] = None
        #: source address used until a new care-of address is configured
        #: (the stale address of the erroneous-source window)
        self._active_source: Address = self.home_address
        #: groups the applications on this node subscribed to
        self.subscribed_groups: Set[Address] = set()

        self._bu_sequence = 0
        self._move_seq = 0
        self._bu_timer: Optional[Timer] = None
        self._bu_retries = 0
        self._refresh_timer: Optional[Timer] = None
        self._last_bu_sent_at: Optional[float] = None
        #: measured Binding Update round-trip times
        self.bu_rtts: List[float] = []
        #: datagrams dropped because the node was between links
        self.handoff_losses = 0
        #: peers that receive route-optimization Binding Updates (draft
        #: §8) whenever our care-of address changes
        self.correspondents: Set[Address] = set()

        self.register_option_handler(BindingAckOption, self._on_binding_ack)
        self.register_option_handler(BindingRequestOption, self._on_binding_request)
        self.register_tunnel_handler(self._on_tunnel)

    # ------------------------------------------------------------------
    @property
    def at_home(self) -> bool:
        return self.current_link is self.home_link

    @property
    def attached(self) -> bool:
        return self.iface.attached

    def owns_address(self, address: Address) -> bool:
        # The home address identifies the node wherever it is (paper §2).
        return Address(address) == self.home_address or super().owns_address(address)

    def current_source_address(self) -> Address:
        """Source address outgoing datagrams would carry right now."""
        if self.at_home:
            return self.home_address
        if self.care_of_address is not None:
            return self.care_of_address
        return self._active_source

    # ------------------------------------------------------------------
    # application group membership
    # ------------------------------------------------------------------
    def join_group(self, group: Address) -> None:
        """Subscribe to a multicast group under the active receive mode."""
        group = Address(group)
        self.subscribed_groups.add(group)
        if self.at_home or self.recv_mode is DeliveryMode.LOCAL:
            if self.attached:
                self.mld.join(group)
        else:
            # Away + tunnel mode: update the home agent's group list.
            if self.care_of_address is not None:
                self._send_binding_update()
        self.trace("mobility", event="app-join", group=str(group))

    def leave_group(self, group: Address) -> None:
        group = Address(group)
        self.subscribed_groups.discard(group)
        if group in self.mld.groups:
            self.mld.leave(group)
        elif not self.at_home and self.recv_mode is DeliveryMode.HA_TUNNEL:
            if self.care_of_address is not None:
                self._send_binding_update()
        self.trace("mobility", event="app-leave", group=str(group))

    # ------------------------------------------------------------------
    # multicast sending (paper §4.2.2)
    # ------------------------------------------------------------------
    def send_app_multicast(self, group: Address, message: Message) -> Optional[Ipv6Packet]:
        """Send one multicast datagram under the active send mode."""
        group = Address(group)
        if not self.attached:
            self.handoff_losses += 1
            self.trace("mobility", event="send-lost-detached", group=str(group))
            return None
        if self.at_home:
            return self.send_multicast(group, message, src=self.home_address)
        if self.care_of_address is None:
            # Link change not yet detected: stale (erroneous) source.
            self.trace(
                "mobility",
                event="erroneous-source-send",
                src=str(self._active_source),
                group=str(group),
            )
            return self.send_multicast(group, message, src=self._active_source)
        if self.send_mode is DeliveryMode.LOCAL:
            return self.send_multicast(group, message, src=self.care_of_address)
        # Tunnel to the home agent (Figure 4): inner source is the home
        # address, outer source the care-of address.
        inner = Ipv6Packet(self.home_address, group, message)
        outer = inner.encapsulate(self.care_of_address, self.home_agent_address)
        self.load["encapsulations"] += 1
        self.trace("mipv6", event="reverse-tunnel-send", group=str(group))
        self.route_and_send(outer)
        return outer

    # ------------------------------------------------------------------
    # runtime strategy switching
    # ------------------------------------------------------------------
    def set_delivery_modes(
        self,
        recv_mode: Optional[DeliveryMode] = None,
        send_mode: Optional[DeliveryMode] = None,
    ) -> None:
        """Switch multicast delivery mechanisms at runtime.

        The paper's conclusion (§5): "Each approach is a solution for
        some specific scenarios and demands, but no general solution can
        be presented" — so a deployable mobile host must be able to
        change approach.  Switching while away re-applies the receive
        mechanism immediately: to LOCAL it rejoins via MLD on the
        current link and clears the home agent's group list; to
        HA_TUNNEL it suspends local MLD state and ships the group list
        in a fresh extended Binding Update.
        """
        changed_recv = recv_mode is not None and recv_mode is not self.recv_mode
        if recv_mode is not None:
            self.recv_mode = recv_mode
        if send_mode is not None:
            self.send_mode = send_mode
        self.trace(
            "mobility",
            event="strategy-switched",
            recv=self.recv_mode.value,
            send=self.send_mode.value,
        )
        if not changed_recv or self.at_home:
            return
        if self.care_of_address is None:
            return  # mid-handoff; _configure_coa will apply the mode
        if self.recv_mode is DeliveryMode.LOCAL:
            # drop the HA subscription, join locally
            self._send_binding_update()  # group list now omitted -> HA keeps
            self._apply_receive_mode()
            # explicitly clear the on-behalf list with an empty sub-option
            self._send_group_list_update([])
        else:
            self.mld.suspend()
            self._send_binding_update()

    def _send_group_list_update(self, groups) -> None:
        """Extended BU carrying an explicit (possibly empty) group list."""
        if self.care_of_address is None:
            return
        self._bu_sequence += 1
        bu = BindingUpdateOption(
            home_address=self.home_address,
            care_of_address=self.care_of_address,
            lifetime=self.config.binding_lifetime,
            sequence=self._bu_sequence,
            ack_requested=True,
            home_registration=True,
            sub_options=(MulticastGroupListSubOption(sorted(groups)),),
        )
        packet = Ipv6Packet(
            self.care_of_address,
            self.home_agent_address,
            ControlPayload("mipv6", 0, "BU-carrier"),
            dest_options=(HomeAddressOption(self.home_address), bu),
        )
        self.trace(
            "mipv6", event="bu-sent", seq=self._bu_sequence,
            coa=str(self.care_of_address), lifetime=self.config.binding_lifetime,
            groups=[str(g) for g in sorted(groups)],
        )
        self.route_and_send(packet)

    # ------------------------------------------------------------------
    # unicast with correspondents (route optimization, draft §8)
    # ------------------------------------------------------------------
    def register_correspondent(self, address: Address) -> None:
        """Start sending route-optimization Binding Updates to ``address``
        whenever the care-of address changes."""
        self.correspondents.add(Address(address))
        if not self.at_home and self.care_of_address is not None:
            self._send_correspondent_updates()

    def send_to_correspondent(self, address: Address, message: Message) -> Optional[Ipv6Packet]:
        """Unicast to a peer: direct path with a Home Address option when
        away from home (paper §2, last paragraph)."""
        address = Address(address)
        if not self.attached:
            self.handoff_losses += 1
            return None
        if self.at_home or self.care_of_address is None:
            packet = Ipv6Packet(self.home_address, address, message)
        else:
            packet = Ipv6Packet(
                self.care_of_address,
                address,
                message,
                dest_options=(HomeAddressOption(self.home_address),),
            )
        self.route_and_send(packet)
        return packet

    def _send_correspondent_updates(self) -> None:
        if self.care_of_address is None:
            return
        for peer in sorted(self.correspondents):
            bu = BindingUpdateOption(
                home_address=self.home_address,
                care_of_address=self.care_of_address,
                lifetime=self.config.binding_lifetime,
                sequence=self._bu_sequence,
                ack_requested=False,
                home_registration=False,
            )
            packet = Ipv6Packet(
                self.care_of_address,
                peer,
                ControlPayload("mipv6", 0, "CN-BU-carrier"),
                dest_options=(HomeAddressOption(self.home_address), bu),
            )
            self.route_and_send(packet)
            self.trace("mipv6", event="cn-bu-sent", to=str(peer))

    # ------------------------------------------------------------------
    # multicast reception via tunnel (paper §4.2.1-B)
    # ------------------------------------------------------------------
    def _on_tunnel(self, packet: Ipv6Packet, iface) -> bool:
        inner = packet.decapsulate()
        if inner.dst.is_multicast:
            if inner.dst in self.subscribed_groups:
                self.trace(
                    "mipv6", event="tunnel-mcast-received", group=str(inner.dst)
                )
                self.deliver_app_data(inner)
            return True
        # Tunneled unicast: deliver the inner packet normally.
        self.receive(inner, iface)
        return True

    # ------------------------------------------------------------------
    # movement (paper §2 and §4.2)
    # ------------------------------------------------------------------
    def move_to(self, link: Link) -> None:
        """Begin a handoff to ``link`` now."""
        if link is self.current_link:
            return
        self.trace(
            "mobility",
            event="detached",
            from_link=self.current_link.name if self.current_link else None,
            to_link=link.name,
        )
        self._active_source = self.current_source_address()
        self._cancel_binding_timers()
        self.iface.detach()
        self.iface.clear_addresses()
        self.current_link = None
        self.care_of_address = None
        self._move_seq += 1
        self.sim.schedule(
            self.config.handoff_delay,
            self._attach,
            link,
            self._move_seq,
            label=f"{self.name}.attach",
        )

    def blackout(self, duration: float) -> None:
        """Handover blackout (repro.faults): lose the radio for
        ``duration`` seconds, then re-attach to the same link and run
        the normal handoff pipeline (movement detection, care-of
        address configuration, Binding Update).  Frames sent to the
        node meanwhile are lost in flight."""
        if duration <= 0:
            raise ValueError("blackout duration must be positive")
        link = self.current_link
        if link is None:
            return  # already detached (mid-handoff); nothing to do
        self.trace(
            "mobility", event="blackout", link=link.name, duration=duration
        )
        self._active_source = self.current_source_address()
        self._cancel_binding_timers()
        self.iface.detach()
        self.iface.clear_addresses()
        self.current_link = None
        self.care_of_address = None
        self._move_seq += 1
        self.sim.schedule(
            duration,
            self._attach,
            link,
            self._move_seq,
            label=f"{self.name}.attach",
        )

    def _attach(self, link: Link, seq: int) -> None:
        if seq != self._move_seq:
            return  # superseded by a newer move while detached
        self.iface.attach(link)
        self.current_link = link
        self.trace("mobility", event="attached", link=link.name)
        self.sim.schedule(
            self.config.movement_detection_delay,
            self._movement_detected,
            link,
            seq,
            label=f"{self.name}.movedetect",
        )

    def _movement_detected(self, link: Link, seq: int) -> None:
        if seq != self._move_seq or self.current_link is not link:
            return  # moved again in the meantime
        self.trace("mobility", event="movement-detected", link=link.name)
        if link is self.home_link:
            self._returned_home()
            return
        self.sim.schedule(
            self.config.coa_config_delay,
            self._configure_coa,
            link,
            seq,
            label=f"{self.name}.coa",
        )

    def _configure_coa(self, link: Link, seq: int) -> None:
        if seq != self._move_seq or self.current_link is not link:
            return
        coa = link.prefix.address_for_host(self.host_id)
        self.iface.add_address(coa)
        self.care_of_address = coa
        self._active_source = coa
        self.trace("mobility", event="coa-configured", coa=str(coa), link=link.name)
        self._send_binding_update()
        self._apply_receive_mode()

    def _returned_home(self) -> None:
        self.care_of_address = None
        self.iface.add_address(self.home_address)
        self._active_source = self.home_address
        self.trace("mobility", event="returned-home")
        self._send_binding_update(deregister=True)
        # At home, reception is always local.
        for group in sorted(self.subscribed_groups):
            if group not in self.mld.groups:
                self.mld.join(group, send_unsolicited=False)
        self.mld.after_move()

    def _apply_receive_mode(self) -> None:
        if self.recv_mode is DeliveryMode.LOCAL:
            # Approach A: membership on the foreign link (Figure 2).
            for group in sorted(self.subscribed_groups):
                if group not in self.mld.groups:
                    self.mld.join(group, send_unsolicited=False)
            self.mld.after_move()
        else:
            # Approach B: do not answer queries here; the group list went
            # to the home agent inside the Binding Update (Figure 3).
            self.mld.suspend()

    # ------------------------------------------------------------------
    # binding maintenance
    # ------------------------------------------------------------------
    def _send_binding_update(
        self, deregister: bool = False, is_retransmit: bool = False
    ) -> None:
        if deregister:
            src: Optional[Address] = self.home_address
            coa = self.home_address
            lifetime = 0.0
        else:
            src = self.care_of_address
            coa = self.care_of_address
            lifetime = self.config.binding_lifetime
        if src is None or coa is None:
            return
        self._bu_sequence += 1
        sub_options = ()
        if not deregister and self.recv_mode is DeliveryMode.HA_TUNNEL:
            sub_options = (
                MulticastGroupListSubOption(sorted(self.subscribed_groups)),
            )
        bu = BindingUpdateOption(
            home_address=self.home_address,
            care_of_address=coa,
            lifetime=lifetime,
            sequence=self._bu_sequence,
            ack_requested=True,
            home_registration=True,
            sub_options=sub_options,
        )
        options = (HomeAddressOption(self.home_address), bu)
        packet = Ipv6Packet(
            src,
            self.home_agent_address,
            ControlPayload("mipv6", 0, "BU-carrier"),
            dest_options=options,
        )
        self._last_bu_sent_at = self.sim.now
        self.trace(
            "mipv6",
            event="bu-sent",
            seq=self._bu_sequence,
            coa=str(coa),
            lifetime=lifetime,
            groups=[str(g) for g in bu.multicast_groups()],
        )
        self.route_and_send(packet)
        if not deregister:
            self._arm_bu_retransmit(reset=not is_retransmit)
            if not is_retransmit:
                self._send_correspondent_updates()

    def _arm_bu_retransmit(self, reset: bool = True) -> None:
        if reset:
            self._bu_retries = 0
        if self._bu_timer is None:
            self._bu_timer = Timer(
                self.sim, self._bu_retransmit, name=f"{self.name}.bu-rexmt"
            )
        # Capped-exponential backoff (draft §5.1): the initial
        # transmission waits the base interval, each unacked
        # retransmission doubles it up to the cap; a Binding Ack (or a
        # fresh registration) resets the schedule.
        self._bu_timer.start(
            min(
                self.config.bu_retransmit_interval
                * self.config.bu_backoff_factor ** self._bu_retries,
                self.config.bu_retransmit_max_interval,
            )
        )

    def _bu_retransmit(self) -> None:
        if self._bu_retries >= self.config.bu_max_retransmits:
            if len(self._ha_candidates) > 1:
                self._failover_home_agent()
            else:
                self.trace("mipv6", event="bu-gave-up")
            return
        self._bu_retries += 1
        self.trace("mipv6", event="bu-retransmit", attempt=self._bu_retries)
        self._send_binding_update(is_retransmit=True)

    def _failover_home_agent(self) -> None:
        """Rotate to the next home agent and re-register with it."""
        self._ha_index = (self._ha_index + 1) % len(self._ha_candidates)
        self.home_agent_address = self._ha_candidates[self._ha_index]
        self.ha_failovers += 1
        self.trace(
            "mipv6", event="ha-failover", new_ha=str(self.home_agent_address)
        )
        self._send_binding_update()

    def _on_binding_request(self, packet: Ipv6Packet, request, iface) -> None:
        """Answer a Binding Request (draft §5.3) with a fresh Binding
        Update — to the home agent or to a correspondent."""
        self.trace("mipv6", event="binding-request-received", frm=str(packet.src))
        if self.at_home or self.care_of_address is None:
            return
        if packet.src == self.home_agent_address:
            self._send_binding_update()
        elif packet.src in self.correspondents:
            self._send_correspondent_updates()

    def _on_binding_ack(self, packet: Ipv6Packet, ack: BindingAckOption, iface) -> None:
        if self._bu_timer is not None:
            self._bu_timer.stop()
        if self._last_bu_sent_at is not None:
            self.bu_rtts.append(self.sim.now - self._last_bu_sent_at)
        self.trace("mipv6", event="ba-received", status=ack.status, seq=ack.sequence)
        if not ack.accepted:
            return
        if not self.at_home and ack.lifetime > 0:
            if self._refresh_timer is None:
                self._refresh_timer = Timer(
                    self.sim, self._refresh_binding, name=f"{self.name}.bu-refresh"
                )
            refresh = ack.refresh or self.config.binding_refresh_interval
            self._refresh_timer.start(refresh)

    def _refresh_binding(self) -> None:
        if not self.at_home and self.care_of_address is not None:
            self._send_binding_update()

    def _cancel_binding_timers(self) -> None:
        if self._bu_timer is not None:
            self._bu_timer.stop()
        if self._refresh_timer is not None:
            self._refresh_timer.stop()
