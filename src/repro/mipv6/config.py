"""Mobile IPv6 configuration (draft-ietf-mobileip-ipv6-10).

Defaults follow the draft values the paper quotes — in particular the
binding lifetime default ``MAX_BINDACK_TIMEOUT = 256 s`` (paper
§4.3.2).  The handoff timing knobs model the delays the paper's
analysis hinges on:

* ``movement_detection_delay`` — "it takes the mobile sender a certain
  time to detect the link change" (§4.3.1); during this window outgoing
  datagrams carry an **erroneous source address**, the trigger of the
  unwanted assert process,
* ``coa_config_delay`` — care-of address formation via stateless
  autoconfiguration (duplicate address detection etc., RFC 2462).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MobileIpv6Config", "DeliveryMode"]


class DeliveryMode(enum.Enum):
    """How a mobile host exchanges multicast traffic while away from home.

    The two mechanisms of paper §4.2: (A) locally via the foreign
    link's multicast router, or (B) through the home agent tunnel.
    """

    LOCAL = "local"
    HA_TUNNEL = "ha-tunnel"


@dataclass(frozen=True)
class MobileIpv6Config:
    """Tunable Mobile IPv6 parameters."""

    #: Binding lifetime granted by home agents (s).  Draft default 256 s.
    binding_lifetime: float = 256.0
    #: How often the mobile node refreshes its binding (s).
    binding_refresh_interval: float = 128.0
    #: Layer-2 detach→attach gap when moving between links (s).
    handoff_delay: float = 0.1
    #: Time to detect the link change after attaching (router discovery).
    movement_detection_delay: float = 1.0
    #: Time to form and validate the care-of address (autoconfiguration).
    coa_config_delay: float = 0.5
    #: Retransmission interval for unacknowledged Binding Updates (s).
    bu_retransmit_interval: float = 1.0
    #: Maximum Binding Update retransmissions.
    bu_max_retransmits: int = 3
    #: Capped-exponential backoff on BU retransmissions: retry *n*
    #: waits ``bu_retransmit_interval * bu_backoff_factor**n`` seconds,
    #: capped at ``bu_retransmit_max_interval`` (draft §5.1 prescribes
    #: exactly this: "retransmitted ... using an exponential back-off
    #: process").  The first transmission keeps the base interval, so
    #: ack'd-first-time runs are unaffected; factor 1.0 restores the
    #: fixed-interval schedule.
    bu_backoff_factor: float = 2.0
    bu_retransmit_max_interval: float = 16.0

    def __post_init__(self) -> None:
        if self.binding_lifetime <= 0:
            raise ValueError("binding_lifetime must be positive")
        if self.binding_refresh_interval >= self.binding_lifetime:
            raise ValueError(
                "binding_refresh_interval must be below binding_lifetime"
            )
        for name in ("handoff_delay", "movement_detection_delay", "coa_config_delay"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.bu_retransmit_interval <= 0:
            raise ValueError("bu_retransmit_interval must be positive")
        if self.bu_backoff_factor < 1.0:
            raise ValueError("bu_backoff_factor must be >= 1.0")
        if self.bu_retransmit_max_interval < self.bu_retransmit_interval:
            raise ValueError(
                "bu_retransmit_max_interval must be >= bu_retransmit_interval"
            )
