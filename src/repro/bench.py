"""Kernel/campaign macro-benchmarks with machine-readable baselines.

``python -m repro bench`` (or ``python benchmarks/bench_runner.py``)
executes a fixed set of macro-benchmark phases against the current tree
and writes ``BENCH_KERNEL.json`` — events/sec, peak heap size,
per-phase wall time, and an environment fingerprint — so the
performance trajectory of the kernel is recorded and diffable across
PRs (see docs/PERFORMANCE.md).

Phases
------
``dispatch``
    Plain schedule + dispatch throughput: N one-shot events through
    :meth:`Simulator.run`.  The classic DES "hold model" cost.
``timer_restart``
    The restart-heavy protocol pattern that motivated cancelled-entry
    compaction: PIM-DM restarts the 210 s (S,G) data timeout on every
    forwarded packet, MLD restarts T_MLI on every Report.  Driven via
    :meth:`Simulator.step` so heap growth can be sampled; reports peak
    heap size, peak pending events, and compaction count.
``scenario``
    The full Figure 2 receiver-move scenario (converge + move +
    T_MLI horizon) — the macro-benchmark behind every golden trace.
``campaign`` (skipped with ``--quick``)
    A one-cell §4.4 timer sweep through the parallel campaign engine,
    exercising the worker/serialization path end to end.
``topogen`` (skipped with ``--quick``)
    An EXP-S1 scale cell on a generated 155-router hierarchy —
    topology generation, compact per-(S,G) state and receiver mobility
    in one macro-run (see docs/TOPOLOGIES.md).
``traffic_fluid``
    An EXP-S2 fluid-engine cell: analytic rate integration over a
    30-router hierarchy with receiver mobility.  Throughput here is
    dominated by the recompute path (tree walk per protocol event),
    the cost the fluid engine trades the per-packet event storm for
    (see docs/TRAFFIC.md).
``kernel_sharded``
    EXP-P2: the same EXP-S1 scale cell run on one kernel and then on
    four conservatively synchronized shards (one worker process per
    region, link-delay lookahead; see ``repro.sim.shard`` and
    docs/PERFORMANCE.md).  Reports both rates, the speedup, the
    barrier-round count and the merged trace digest.  The quick
    profile uses a 31-router hierarchy; the full profile runs the
    1,110-router EXP-S1 scenario.  Shard speedup is core-count
    dependent, so :func:`main_bench` skips this phase's regression
    gate when the baseline was produced on a machine with a different
    ``cpu_count`` (it warns instead of silently gating).

Schema (``BENCH_KERNEL.json``, ``bench-kernel/v1``)
---------------------------------------------------
``schema``/``schema_version``
    Format identifier; bump on breaking layout changes.
``quick``, ``scale``
    The knobs the run was produced with (baselines are only comparable
    between runs with identical knobs).
``env``
    Environment fingerprint: python version/implementation, platform,
    machine, CPU count.
``phases.<name>``
    ``events`` dispatched, ``wall_time_s``, ``events_per_sec`` and —
    for ``timer_restart`` — ``peak_heap``, ``peak_pending``,
    ``final_heap``, ``compactions``.
``events_per_sec``
    Top-level gate scalar (the ``dispatch`` phase throughput).

The CI ``bench-smoke`` job re-runs ``repro bench --quick`` and fails
when any phase's events/sec regresses more than the tolerance (default
20%) against the committed baseline in
``benchmarks/results/bench_kernel_baseline.json``
(:func:`check_regression`).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from .sim import Simulator, Timer

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "check_regression",
    "run_benchmarks",
    "render_summary",
    "write_report",
]

SCHEMA = "bench-kernel/v1"
SCHEMA_VERSION = 1

#: Baseline event counts per phase (full mode); ``--quick`` quarters
#: them, ``scale`` multiplies them (testing aid).
_DISPATCH_EVENTS = 200_000
_RESTART_EVENTS = 200_000
_QUICK_FACTOR = 0.25


def _env_fingerprint() -> Dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------

def _phase_dispatch(n: int) -> Dict[str, Any]:
    """Schedule + run ``n`` one-shot events; throughput includes both."""
    sim = Simulator()
    noop = _noop
    started = perf_counter()
    schedule = sim.schedule
    for i in range(n):
        schedule((i % 97) * 0.01, noop)
    sim.run()
    wall = perf_counter() - started
    events = sim.events_dispatched
    return {
        "events": events,
        "wall_time_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def _noop() -> None:
    return None


def _phase_timer_restart(n: int, timers: int = 64) -> Dict[str, Any]:
    """The PIM-DM per-packet data-timeout pattern: one restart per tick.

    Every dispatched tick cancels a pending 210 s timer event and pushes
    two new entries (the restarted timer + the next tick), so a kernel
    without compaction accumulates one cancelled tombstone per event and
    pays logarithmically growing ``heappush`` cost.
    """
    sim = Simulator()
    pool = [Timer(sim, _noop, name=f"sg{i}") for i in range(timers)]
    for t in pool:
        t.start(210.0)
    remaining = [n]

    def tick(i: int) -> None:
        pool[i % timers].restart(210.0)
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(0.05, tick, i + 1)

    sim.schedule(0.0, tick, 0)

    peak_heap = peak_pending = steps = 0
    started = perf_counter()
    step = sim.step
    while step():
        steps += 1
        if steps % 512 == 0:
            heap_size = sim.heap_size
            if heap_size > peak_heap:
                peak_heap = heap_size
            pending = sim.events_pending
            if pending > peak_pending:
                peak_pending = pending
    wall = perf_counter() - started
    events = sim.events_dispatched
    return {
        "events": events,
        "wall_time_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "peak_heap": max(peak_heap, sim.heap_size),
        "peak_pending": max(peak_pending, sim.events_pending),
        "final_heap": sim.heap_size,
        "compactions": sim.compactions,
    }


def _phase_scenario() -> Dict[str, Any]:
    """The canned Figure 2 receiver move (the golden-trace macro-run)."""
    from .core.goldens import run_canned

    started = perf_counter()
    sc = run_canned("fig2", seed=0)
    wall = perf_counter() - started
    sim = sc.net.sim
    return {
        "events": sim.events_dispatched,
        "wall_time_s": wall,
        "events_per_sec": sim.events_dispatched / wall if wall > 0 else 0.0,
        "peak_heap": sim.heap_size,
        "compactions": sim.compactions,
    }


def _phase_campaign() -> Dict[str, Any]:
    """One §4.4 timer-sweep cell through the parallel campaign engine."""
    from .campaign import CampaignRunner
    from .core import run_timer_sweep
    from .obs import MetricsRegistry

    runner = CampaignRunner(jobs=1, registry=MetricsRegistry())
    started = perf_counter()
    points = run_timer_sweep(query_intervals=(25.0,), seeds=(0,), runner=runner)
    wall = perf_counter() - started
    stats = runner.stats()
    return {
        "events": len(points),
        "cells": stats["cells"],
        "wall_time_s": wall,
        "events_per_sec": None,
    }


def _phase_topogen() -> Dict[str, Any]:
    """One EXP-S1 scale cell on a generated 155-router hierarchy.

    Exercises the topology generator, the compact (S,G) state backend
    and the mobility scheduler together — the macro-path behind the
    ``repro sweep scale`` study (see docs/TOPOLOGIES.md).
    """
    from .core.scalestudy import scale_cell

    started = perf_counter()
    row = scale_cell(
        model_params={"depth": 3, "fanout": 5},
        receivers=500,
        groups=1,
        mobility=0.05,
        warmup=8.0,
        duration=20.0,
    )
    wall = perf_counter() - started
    events = row["events"]
    return {
        "events": events,
        "wall_time_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "routers": row["routers"],
        "state_entries": row["state"]["total_entries"],
        "aggregation_gain": row["aggregation_gain"],
    }


def _phase_traffic_fluid() -> Dict[str, Any]:
    """One EXP-S2 fluid cell: rate integration + probe decimation.

    ``events_per_sec`` counts dispatched simulator events as usual, but
    the interesting per-phase extras are the recompute count (one tree
    walk per protocol-event timestamp — the fluid engine's hot path)
    and the data-plane decimation vs. what packet mode would transmit.
    """
    from .core.fluidstudy import fluid_cell

    started = perf_counter()
    row = fluid_cell(
        model_params={"depth": 2, "fanout": 5},
        receivers=200,
        mobility=0.05,
        warmup=8.0,
        duration=20.0,
        packet_interval=0.05,
        probe_interval=10.0,
    )
    wall = perf_counter() - started
    events = row["events"]
    return {
        "events": events,
        "wall_time_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "routers": row["routers"],
        "recomputes": row["traffic"]["recomputes"],
        "probes": row["probe_transmissions"],
    }


#: kernel_sharded phase knobs: (model_params, receivers, duration) per
#: profile.  The full profile is the 1,110-router EXP-S1 scenario the
#: EXP-P2 gate is defined on; quick is a 31-router smoke cell.
_SHARDED_QUICK = ({"depth": 2, "fanout": 5}, 100, 10.0)
_SHARDED_FULL = ({"depth": 3, "fanout": 10}, 500, 20.0)
_SHARDED_SHARDS = 4


def _phase_kernel_sharded(quick: bool) -> Dict[str, Any]:
    """EXP-P2: one kernel vs four conservatively synchronized shards.

    Runs the same seeded EXP-S1 scale cell twice — ``shards=1`` (the
    plain single-kernel path) and ``shards=4`` with one worker process
    per region — and reports both throughputs plus their ratio.  The
    phase's ``events_per_sec`` is the *sharded* rate (that is what the
    baseline gate tracks); ``speedup`` is the headline EXP-P2 number.
    Event counts differ slightly between the two runs (the sharded
    replica models boundary-link serialization per replica, see
    docs/PERFORMANCE.md), so each rate is computed from its own run.
    """
    from .core.scalestudy import scale_cell

    model_params, receivers, duration = _SHARDED_QUICK if quick else _SHARDED_FULL
    kwargs = dict(
        model_params=model_params,
        receivers=receivers,
        groups=1,
        mobility=0.05,
        warmup=8.0,
        duration=duration,
        check_invariants=False,
    )
    started = perf_counter()
    single = scale_cell(**kwargs)
    single_wall = perf_counter() - started
    single_rate = single["events"] / single_wall if single_wall > 0 else 0.0

    started = perf_counter()
    sharded = scale_cell(shards=_SHARDED_SHARDS, shard_executor="process", **kwargs)
    sharded_wall = perf_counter() - started
    events = sharded["events"]
    rate = events / sharded_wall if sharded_wall > 0 else 0.0
    shard_info = sharded["shards"]
    return {
        "events": events,
        "wall_time_s": sharded_wall,
        "events_per_sec": rate,
        "shards": shard_info["count"],
        "rounds": shard_info["rounds"],
        "lookahead": shard_info["lookahead"],
        "boundary_links": shard_info["boundary_links"],
        "digest": shard_info["digest"],
        "routers": sharded["routers"],
        "single_events": single["events"],
        "single_wall_time_s": single_wall,
        "single_events_per_sec": single_rate,
        "speedup": rate / single_rate if single_rate > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def run_benchmarks(quick: bool = False, scale: float = 1.0) -> Dict[str, Any]:
    """Execute all phases; return the ``bench-kernel/v1`` payload.

    ``quick`` quarters the event counts and skips the ``campaign``
    phase (the CI smoke profile); ``scale`` further multiplies the
    counts and exists so tests can exercise the full pipeline in
    milliseconds.  Baselines are only comparable at equal knobs.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale!r}")
    factor = scale * (_QUICK_FACTOR if quick else 1.0)
    n_dispatch = max(1_000, int(_DISPATCH_EVENTS * factor))
    n_restart = max(1_000, int(_RESTART_EVENTS * factor))

    phases: Dict[str, Dict[str, Any]] = {}
    phases["dispatch"] = _phase_dispatch(n_dispatch)
    phases["timer_restart"] = _phase_timer_restart(n_restart)
    phases["scenario"] = _phase_scenario()
    phases["traffic_fluid"] = _phase_traffic_fluid()
    if not quick:
        phases["campaign"] = _phase_campaign()
        phases["topogen"] = _phase_topogen()
    phases["kernel_sharded"] = _phase_kernel_sharded(quick)

    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "scale": scale,
        "env": _env_fingerprint(),
        "phases": phases,
        "events_per_sec": phases["dispatch"]["events_per_sec"],
    }


def write_report(payload: Dict[str, Any], path: str) -> None:
    """Persist a benchmark payload as deterministic, diffable JSON."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.2,
    skip_phases: tuple = (),
) -> List[str]:
    """Compare two payloads; return human-readable failures (empty = ok).

    Every phase present in both payloads with a numeric
    ``events_per_sec`` must not fall more than ``tolerance`` (a
    fraction) below the baseline.  Phases only one side has are
    ignored, so baselines survive adding new phases; phases named in
    ``skip_phases`` are excluded from the gate (the caller is expected
    to have warned about why — e.g. a core-count-dependent phase
    compared across machines).

    Payloads from different profiles (``quick``/``scale``) are not
    comparable — per-event cost depends on workload size — so a
    mismatch is itself reported as a failure rather than producing a
    meaningless verdict.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    for key in ("quick", "scale"):
        if current.get(key) != baseline.get(key):
            return [
                f"profile mismatch: current {key}={current.get(key)!r} vs "
                f"baseline {key}={baseline.get(key)!r}; rerun with matching "
                "flags or regenerate the baseline"
            ]
    failures: List[str] = []
    base_phases = baseline.get("phases", {})
    cur_phases = current.get("phases", {})
    for name in sorted(base_phases.keys() & cur_phases.keys()):
        if name in skip_phases:
            continue
        base_rate = base_phases[name].get("events_per_sec")
        cur_rate = cur_phases[name].get("events_per_sec")
        if not base_rate or cur_rate is None:
            continue
        floor = base_rate * (1.0 - tolerance)
        if cur_rate < floor:
            failures.append(
                f"{name}: {cur_rate:,.0f} events/s is "
                f"{(1.0 - cur_rate / base_rate) * 100:.1f}% below the "
                f"baseline {base_rate:,.0f} (tolerance {tolerance:.0%})"
            )
    return failures


def render_summary(payload: Dict[str, Any]) -> str:
    """Aligned human-readable phase table."""
    lines = [
        f"kernel benchmarks ({'quick' if payload['quick'] else 'full'} "
        f"profile, scale {payload['scale']:g}) — "
        f"{payload['env']['implementation']} {payload['env']['python']}",
        f"{'phase':<16} {'events':>10} {'wall':>9} {'events/s':>12} "
        f"{'peak heap':>10} {'compactions':>12}",
    ]
    for name, phase in payload["phases"].items():
        rate = phase.get("events_per_sec")
        lines.append(
            f"{name:<16} {phase['events']:>10,} "
            f"{phase['wall_time_s']:>8.3f}s "
            f"{(f'{rate:,.0f}' if rate else '-'):>12} "
            f"{phase.get('peak_heap', '-'):>10} "
            f"{phase.get('compactions', '-'):>12}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI entry (wired up by repro.cli; also used by benchmarks/bench_runner.py)
# ----------------------------------------------------------------------

def main_bench(
    quick: bool = False,
    scale: float = 1.0,
    output: str = "BENCH_KERNEL.json",
    baseline: Optional[str] = None,
    tolerance: float = 0.2,
    as_json: bool = False,
    print_fn: Callable[[str], None] = print,
) -> int:
    """Run, persist, optionally gate against a baseline.  Returns exit code."""
    payload = run_benchmarks(quick=quick, scale=scale)
    write_report(payload, output)
    if as_json:
        print_fn(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print_fn(render_summary(payload))
        print_fn(f"wrote {output}")
    if baseline is None:
        return 0
    try:
        with open(baseline) as fh:
            base = json.load(fh)
    except OSError as exc:
        print_fn(f"error: cannot read baseline: {exc}")
        return 1
    except ValueError as exc:
        print_fn(f"error: invalid baseline JSON: {exc}")
        return 1
    skip_phases: tuple = ()
    base_cpus = base.get("env", {}).get("cpu_count")
    cur_cpus = payload["env"]["cpu_count"]
    if base_cpus != cur_cpus:
        print_fn(
            f"warning: baseline cpu_count={base_cpus} differs from this "
            f"machine (cpu_count={cur_cpus}); shard speedup is core-count "
            "dependent, so the kernel_sharded phase is excluded from the "
            "regression gate (regenerate the baseline on this machine to "
            "re-enable it)"
        )
        skip_phases = ("kernel_sharded",)
    failures = check_regression(
        payload, base, tolerance=tolerance, skip_phases=skip_phases
    )
    if failures:
        for failure in failures:
            print_fn(f"PERF REGRESSION — {failure}")
        return 1
    print_fn(
        f"baseline check ok against {baseline} (tolerance {tolerance:.0%})"
    )
    return 0
