"""repro — reproduction of "Interoperation of Mobile IPv6 and Protocol
Independent Multicast Dense Mode" (Bettstetter, Riedl, Geßler, ICPP 2000).

A discrete-event simulation of an IPv6 network running PIM-DM for
multicast routing, MLD for membership discovery, and Mobile IPv6 for
host mobility, plus the paper's four multicast delivery approaches for
mobile hosts and the quantitative version of its §4.3 comparison and
§4.4 MLD timer optimization.

Quickstart::

    from repro import PaperScenario, ScenarioConfig, LOCAL_MEMBERSHIP

    sc = PaperScenario(ScenarioConfig(approach=LOCAL_MEMBERSHIP, seed=1))
    sc.converge()                      # Figure 1 tree is up
    sc.move("R3", "L6", at=40.0)       # Figure 2 handoff
    sc.run_until(120.0)
    print(sc.current_tree())
    print(sc.join_delay("R3", 40.0))

Package map (see DESIGN.md for the full inventory):

=================  ===================================================
``repro.sim``      discrete-event kernel, timers, RNG, tracing
``repro.net``      IPv6 addressing/packets, links, nodes, routing
``repro.mld``      Multicast Listener Discovery (RFC 2710)
``repro.pimdm``    PIM Dense Mode (draft-ietf-pim-v2-dm-03)
``repro.mipv6``    Mobile IPv6 (draft-ietf-mobileip-ipv6-10) + the
                   paper's Multicast Group List Sub-Option (Figure 5)
``repro.core``     the four approaches, Figure 1 scenarios, metrics,
                   §4.3 comparison, §4.4 timer sweep
``repro.mobility`` movement models
``repro.workloads`` traffic sources and receiver apps
``repro.analysis`` closed-form delay models, tables, tree rendering
=================  ===================================================
"""

from .core import (
    ALL_APPROACHES,
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    TUNNEL_HA_TO_MH,
    TUNNEL_MH_TO_HA,
    Approach,
    PaperNetwork,
    PaperScenario,
    ScenarioConfig,
    approach_for,
    build_paper_network,
    render_table1,
    run_full_comparison,
    run_timer_sweep,
)
from .mipv6 import DeliveryMode, HomeAgent, MobileIpv6Config, MobileNode
from .mld import MldConfig
from .net import Address, Network, Prefix, make_multicast_group
from .pimdm import PimDmConfig

__version__ = "1.0.0"

__all__ = [
    "ALL_APPROACHES",
    "Address",
    "Approach",
    "BIDIRECTIONAL_TUNNEL",
    "DeliveryMode",
    "HomeAgent",
    "LOCAL_MEMBERSHIP",
    "MldConfig",
    "MobileIpv6Config",
    "MobileNode",
    "Network",
    "PaperNetwork",
    "PaperScenario",
    "PimDmConfig",
    "Prefix",
    "ScenarioConfig",
    "TUNNEL_HA_TO_MH",
    "TUNNEL_MH_TO_HA",
    "approach_for",
    "build_paper_network",
    "make_multicast_group",
    "render_table1",
    "run_full_comparison",
    "run_timer_sweep",
    "__version__",
]
