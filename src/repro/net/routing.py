"""Unicast routing: FIB entries and shortest-path route computation.

PIM-DM is *protocol independent*: it relies on whatever unicast routing
the network runs, using it for (a) Reverse-Path-Forwarding checks — the
incoming interface of an (S,G) entry is the interface the router uses
to reach S by unicast (paper §3.1) — and (b) the routing metric carried
in Assert messages.

The reproduction computes hop-count shortest paths over the
router/link topology with a BFS per destination link (all links have
unit cost; ties are broken deterministically by link then router name so
every run builds the same trees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .addressing import Address, Prefix

if TYPE_CHECKING:  # pragma: no cover
    from .interface import Interface
    from .link import Link
    from .node import Node

__all__ = ["RouteEntry", "RoutingTable", "compute_router_fibs"]


@dataclass
class RouteEntry:
    """One FIB entry: how to reach ``prefix``.

    ``next_hop`` is None for on-link (directly connected) prefixes.
    ``metric`` is the hop count (number of links a packet crosses to
    reach the destination link, counting that link) — the metric that
    PIM-DM Assert messages compare.
    """

    prefix: Prefix
    iface: "Interface"
    next_hop: Optional[Address]
    metric: int

    @property
    def connected(self) -> bool:
        return self.next_hop is None


class RoutingTable:
    """Per-node FIB with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._entries: Dict[Prefix, RouteEntry] = {}

    def install(self, entry: RouteEntry) -> None:
        self._entries[entry.prefix] = entry

    def remove(self, prefix: Prefix) -> None:
        self._entries.pop(Prefix(prefix), None)

    def clear(self) -> None:
        self._entries.clear()

    def lookup(self, dst: Address) -> Optional[RouteEntry]:
        """Longest-prefix-match for ``dst``."""
        dst = Address(dst)
        best: Optional[RouteEntry] = None
        for entry in self._entries.values():
            if entry.prefix.contains(dst):
                if best is None or entry.prefix.prefix_len > best.prefix.prefix_len:
                    best = entry
        return best

    def entries(self) -> List[RouteEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


def compute_router_fibs(
    routers: List["Node"], links: List["Link"]
) -> Dict[Tuple[str, str], RouteEntry]:
    """Compute and install shortest-path FIBs on every router.

    Runs one BFS per destination link over the bipartite router/link
    graph.  Returns the installed entries keyed by
    ``(router_name, str(prefix))`` for inspection by tests.
    """
    installed: Dict[Tuple[str, str], RouteEntry] = {}

    # Adjacency: for each router, its (link, iface) attachments.
    attachments: Dict[str, List[Tuple["Link", "Interface"]]] = {}
    for router in routers:
        pairs = [
            (iface.link, iface) for iface in router.interfaces if iface.link is not None
        ]
        attachments[router.name] = sorted(pairs, key=lambda p: p[0].name)

    routers_by_name = {r.name: r for r in routers}
    router_names_on_link: Dict[str, List[str]] = {}
    for link in links:
        names = sorted(
            iface.node.name
            for iface in link.interfaces
            if iface.node.name in routers_by_name
        )
        router_names_on_link[link.name] = names

    for dest_link in links:
        # BFS over routers; dist = links crossed to deliver onto dest_link.
        dist: Dict[str, int] = {}
        via: Dict[str, Tuple["Interface", Optional[Address]]] = {}
        frontier: List[str] = []
        for name in router_names_on_link[dest_link.name]:
            router = routers_by_name[name]
            iface = next(i for i in router.interfaces if i.link is dest_link)
            dist[name] = 1
            via[name] = (iface, None)
            frontier.append(name)
        frontier.sort()

        while frontier:
            next_frontier: List[str] = []
            for name in frontier:
                router = routers_by_name[name]
                for link, _iface in attachments[name]:
                    if link is dest_link:
                        continue
                    for neigh_name in router_names_on_link[link.name]:
                        if neigh_name == name or neigh_name in dist:
                            continue
                        neighbor = routers_by_name[neigh_name]
                        out_iface = next(
                            i for i in neighbor.interfaces if i.link is link
                        )
                        # Address of the already-reached router on the
                        # shared link = our next hop toward dest_link.
                        next_hop = _router_address_on_link(router, link)
                        dist[neigh_name] = dist[name] + 1
                        via[neigh_name] = (out_iface, next_hop)
                        next_frontier.append(neigh_name)
            frontier = sorted(set(next_frontier))

        for name, metric in dist.items():
            iface, next_hop = via[name]
            entry = RouteEntry(
                prefix=dest_link.prefix, iface=iface, next_hop=next_hop, metric=metric
            )
            routers_by_name[name].routing.install(entry)
            installed[(name, str(dest_link.prefix))] = entry

    return installed


def _router_address_on_link(router: "Node", link: "Link") -> Address:
    """The router's global address on ``link`` (used as a next hop)."""
    iface = next(i for i in router.interfaces if i.link is link)
    for addr in iface.addresses:
        if not addr.is_link_local and not addr.is_multicast:
            return addr
    raise ValueError(f"{router.name} has no global address on {link.name}")
