"""Base classes for protocol messages carried inside IPv6 packets.

Every upper-layer payload in the simulation is a :class:`Message`.
Concrete messages live with their protocol packages (:mod:`repro.mld`,
:mod:`repro.pimdm`, :mod:`repro.mipv6`, :mod:`repro.workloads`); this
module defines the common interface the packet / link / statistics
layers rely on:

* ``protocol`` — a short tag used for bandwidth accounting
  (``"mld"``, ``"pim"``, ``"mipv6"``, ``"app"``),
* ``size_bytes`` — the wire size charged against link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Message", "ApplicationData", "ControlPayload"]


class Message:
    """Base class for simulated upper-layer messages."""

    #: Accounting tag; overridden by protocol message families.
    protocol: str = "app"

    @property
    def size_bytes(self) -> int:
        """Payload wire size in bytes (excluding the IPv6 header)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable label used in traces."""
        return type(self).__name__


@dataclass(frozen=True)
class ApplicationData(Message):
    """Opaque application payload (multicast media data, etc.).

    ``seqno`` identifies the datagram so receivers can measure loss and
    join delay; ``payload_bytes`` is the simulated size.
    """

    seqno: int
    payload_bytes: int = 1000
    flow: str = "default"
    #: simulation time the datagram was handed to the network (stamped by
    #: traffic sources; lets receivers measure end-to-end latency).
    sent_at: float = 0.0
    #: fluid-mode probe datagram: real on the wire (keeps PIM-DM's
    #: data-driven state machinery alive) but charged to the separate
    #: ``fluid_probe`` stats category so the analytic byte accounting is
    #: exact (``repro.traffic.fluid``).
    probe: bool = False

    protocol = "app"

    @property
    def size_bytes(self) -> int:
        return self.payload_bytes

    def describe(self) -> str:
        return f"Data(flow={self.flow} seq={self.seqno})"


class ControlPayload(Message):
    """A (possibly empty) payload for packets whose semantics live in
    their destination options.

    Mobile IPv6 Binding Updates / Acknowledgements / Requests are IPv6
    destination *options*; the carrying packet may have no upper-layer
    payload at all.  ``ControlPayload`` lets such packets exist and be
    charged to the right accounting category.
    """

    def __init__(self, protocol: str = "mipv6", size: int = 0, label: str = "Control"):
        self._protocol = protocol
        self._size = size
        self._label = label

    @property
    def protocol(self) -> str:  # type: ignore[override]
        return self._protocol

    @property
    def size_bytes(self) -> int:
        return self._size

    def describe(self) -> str:
        return self._label
