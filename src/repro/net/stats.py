"""Per-link bandwidth accounting by traffic category.

Section 4.3 of the paper compares the four delivery approaches on
*bandwidth consumption*, split into

* useful vs. **wasted multicast data** (data forwarded onto links with
  no group members — the leave-delay and re-flood costs),
* **tunnel overhead** (extra outer IPv6 headers on every tunneled
  datagram),
* **signaling** (MLD Queries/Reports, PIM control, Mobile IPv6 Binding
  Updates).

Every transmission on a :class:`~repro.net.link.Link` is classified
here and charged to the link's counters; experiment code reads the
aggregates afterwards.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from .packet import Ipv6Packet

if TYPE_CHECKING:  # pragma: no cover
    from .link import Link

__all__ = [
    "classify_packet",
    "estimate_state_bytes",
    "LinkStats",
    "NetworkStats",
    "CATEGORIES",
    "FLUID_PROBE_CATEGORY",
    "STATE_BYTE_COSTS",
    "STATE_KINDS",
]

#: All categories charged by :func:`classify_packet`.
CATEGORIES = (
    "mcast_data",
    "unicast_data",
    "mld",
    "pim",
    "mipv6",
    "tunnel_overhead",
)

#: Fluid-mode probe datagrams are real transmissions but their bytes
#: belong to the analytic accounting, so they are diverted to this
#: category (outside ``CATEGORIES``) instead of ``mcast_data`` /
#: ``tunnel_overhead``.  See ``repro.traffic.fluid``.
FLUID_PROBE_CATEGORY = "fluid_probe"


#: Protocol-state entry kinds aggregated per topology.
STATE_KINDS = (
    "pim_sg",
    "pim_downstream",
    "pim_neighbor",
    "mld_membership",
    "mipv6_binding",
)

#: Analytic bytes-per-entry model for the memory-proxy gauges, per
#: state backend (``repro.pimdm.state``).  Deterministic documented
#: constants — not ``sys.getsizeof`` — so campaign results compare
#: across machines and Python builds.  The model (CPython 64-bit):
#:
#: * ``dict`` (S,G) entry: dataclass instance with ``__dict__``
#:   (~360 B), a key tuple of two 128-bit address ints (~160 B), and
#:   an entries-dict slot (~100 B) → 620 B; each downstream state is a
#:   ``__dict__`` dataclass (~320 B) plus its per-entry dict slot
#:   (~100 B) → 420 B.
#: * ``compact`` (S,G) entry: same dataclass body but a small-int
#:   interned key (~28 B amortised) and a dense-dict slot → 450 B;
#:   each downstream state is slotted (~110 B), indexed by a list slot
#:   (8 B), with pruned/assert-loser flags pooled into two per-entry
#:   bitmask ints (amortised ~2 B) → 120 B.
#:
#: Neighbor, MLD-membership, and binding-cache entries are identical
#: under both backends; they dilute the aggregation gain exactly as
#: unaggregatable state does in Helmy's study.
STATE_BYTE_COSTS: Dict[str, Dict[str, int]] = {
    "dict": {
        "pim_sg": 620,
        "pim_downstream": 420,
        "pim_neighbor": 180,
        "mld_membership": 250,
        "mipv6_binding": 280,
    },
    "compact": {
        "pim_sg": 450,
        "pim_downstream": 120,
        "pim_neighbor": 180,
        "mld_membership": 250,
        "mipv6_binding": 280,
    },
}


def estimate_state_bytes(counts: Dict[str, int], backend: str) -> int:
    """Total modelled bytes for ``counts`` under ``backend``'s costs."""
    costs = STATE_BYTE_COSTS[backend]
    return sum(costs.get(kind, 0) * value for kind, value in counts.items())


def classify_packet(packet: Ipv6Packet) -> str:
    """Classify a packet by its innermost payload.

    Tunneled packets classify as their inner content; the encapsulation
    bytes are charged separately to ``tunnel_overhead`` by the caller
    (see :meth:`LinkStats.account`).
    """
    message = packet.innermost_message()
    proto = message.protocol
    if proto == "app":
        if getattr(message, "probe", False):
            return FLUID_PROBE_CATEGORY
        return "mcast_data" if packet.inner.dst.is_multicast else "unicast_data"
    return proto


@dataclass
class LinkStats:
    """Byte/packet counters for one link."""

    bytes_by_category: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    packets_by_category: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: link-level frame drops by reason (``nd-failure``, ``link-loss``,
    #: ``link-down``, ``node-crashed``, ``receiver-detached``) — counted
    #: here so delivery ratios are computable without a tracer attached
    drops_by_reason: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def account(self, packet: Ipv6Packet) -> str:
        """Charge one transmission; returns the category used."""
        category = classify_packet(packet)
        if category == FLUID_PROBE_CATEGORY:
            # Probe datagrams carry their whole wire size (tunnel
            # headers included) in the probe bucket: the analytic fluid
            # charges must stay exactly rate x dt per data category.
            self.bytes_by_category[category] += packet.size_bytes
            self.packets_by_category[category] += 1
            return category
        overhead = packet.overhead_bytes
        self.bytes_by_category[category] += packet.size_bytes - overhead
        self.packets_by_category[category] += 1
        if overhead:
            self.bytes_by_category["tunnel_overhead"] += overhead
        return category

    def account_rate(self, category: str, nbytes: float, npackets: float) -> None:
        """Charge analytically integrated traffic (fluid model)."""
        self.bytes_by_category[category] += nbytes
        if npackets:
            self.packets_by_category[category] += npackets

    def bytes(self, category: Optional[str] = None) -> int:
        if category is None:
            return sum(self.bytes_by_category.values())
        return self.bytes_by_category.get(category, 0)

    def packets(self, category: Optional[str] = None) -> int:
        if category is None:
            return sum(self.packets_by_category.values())
        return self.packets_by_category.get(category, 0)

    def record_drop(self, reason: str) -> None:
        self.drops_by_reason[reason] += 1

    def drops(self, reason: Optional[str] = None) -> int:
        if reason is None:
            return sum(self.drops_by_reason.values())
        return self.drops_by_reason.get(reason, 0)


class NetworkStats:
    """Aggregated accounting across all links of a topology."""

    def __init__(self) -> None:
        self._per_link: Dict[str, LinkStats] = {}
        #: aggregate protocol-state entry counts (kind -> entries),
        #: recorded by ``Network.collect_state`` — the topology-wide
        #: memory proxy (peak RSS stand-in) for the scaling study
        self.state_entries: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # aggregate protocol-state accounting (memory proxy)
    # ------------------------------------------------------------------
    def record_state(self, counts: Dict[str, int]) -> None:
        """Record a snapshot of per-kind state-entry counts.

        Keeps the per-kind **maximum** across snapshots so repeated
        collection during a run yields a peak-state proxy rather than
        whatever the final teardown left behind.
        """
        for kind, value in counts.items():
            if value > self.state_entries.get(kind, 0):
                self.state_entries[kind] = value

    def state_snapshot(self) -> Dict[str, object]:
        """JSON-able view of the aggregate state accounting: per-kind
        entry counts, the total, and the modelled byte cost under both
        representations (their ratio is the aggregation gain)."""
        entries = {kind: self.state_entries.get(kind, 0) for kind in STATE_KINDS}
        return {
            "entries": entries,
            "total_entries": sum(entries.values()),
            "bytes": {
                backend: estimate_state_bytes(entries, backend)
                for backend in sorted(STATE_BYTE_COSTS)
            },
        }

    def stats_for(self, link_name: str) -> LinkStats:
        stats = self._per_link.get(link_name)
        if stats is None:
            stats = self._per_link[link_name] = LinkStats()
        return stats

    def account(self, link_name: str, packet: Ipv6Packet) -> str:
        return self.stats_for(link_name).account(packet)

    def account_drop(self, link_name: str, reason: str) -> None:
        self.stats_for(link_name).record_drop(reason)

    def account_fluid(
        self, link_name: str, category: str, nbytes: float, npackets: float = 0.0
    ) -> None:
        """Charge analytically integrated bytes/packets to a link.

        Used by :class:`repro.traffic.fluid.FluidModel`; counters become
        floats, which every reader (snapshots, deltas, JSON export)
        already tolerates.
        """
        self.stats_for(link_name).account_rate(category, nbytes, npackets)

    # ------------------------------------------------------------------
    def link_bytes(self, link_name: str, category: Optional[str] = None) -> int:
        return self.stats_for(link_name).bytes(category)

    def link_packets(self, link_name: str, category: Optional[str] = None) -> int:
        return self.stats_for(link_name).packets(category)

    def total_bytes(
        self,
        category: Optional[str] = None,
        links: Optional[Iterable[str]] = None,
    ) -> int:
        names = list(links) if links is not None else list(self._per_link)
        return sum(self.stats_for(n).bytes(category) for n in names)

    def total_packets(
        self,
        category: Optional[str] = None,
        links: Optional[Iterable[str]] = None,
    ) -> int:
        names = list(links) if links is not None else list(self._per_link)
        return sum(self.stats_for(n).packets(category) for n in names)

    def signaling_bytes(self, links: Optional[Iterable[str]] = None) -> int:
        """All protocol-control bytes (MLD + PIM + Mobile IPv6)."""
        return sum(self.total_bytes(c, links) for c in ("mld", "pim", "mipv6"))

    def link_drops(self, link_name: str, reason: Optional[str] = None) -> int:
        return self.stats_for(link_name).drops(reason)

    def total_drops(
        self,
        reason: Optional[str] = None,
        links: Optional[Iterable[str]] = None,
    ) -> int:
        names = list(links) if links is not None else list(self._per_link)
        return sum(self.stats_for(n).drops(reason) for n in names)

    def drops_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Copy of all drop counters: link -> reason -> frames."""
        return {
            name: dict(stats.drops_by_reason)
            for name, stats in self._per_link.items()
            if stats.drops_by_reason
        }

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Copy of all counters: link -> category -> bytes."""
        return {
            name: dict(stats.bytes_by_category)
            for name, stats in self._per_link.items()
        }

    def publish_to(self, registry) -> None:
        """Export all counters as gauges into a metrics registry.

        ``registry`` is duck-typed (any
        :class:`repro.obs.registry.MetricsRegistry`-shaped object) so
        the net layer keeps no dependency on :mod:`repro.obs`.
        Idempotent: republishing overwrites the gauge values.
        """
        bytes_gauge = registry.gauge(
            "repro_link_bytes",
            "Per-link bytes by traffic category",
            ("link", "category"),
        )
        packets_gauge = registry.gauge(
            "repro_link_packets",
            "Per-link packets by traffic category",
            ("link", "category"),
        )
        drops_gauge = registry.gauge(
            "repro_link_drops",
            "Per-link frame drops by reason",
            ("link", "reason"),
        )
        for name in sorted(self._per_link):
            stats = self._per_link[name]
            for category, value in stats.bytes_by_category.items():
                bytes_gauge.labels(link=name, category=category).set(value)
            for category, value in stats.packets_by_category.items():
                packets_gauge.labels(link=name, category=category).set(value)
            for reason, value in stats.drops_by_reason.items():
                drops_gauge.labels(link=name, reason=reason).set(value)
        if self.state_entries:
            entries_gauge = registry.gauge(
                "repro_state_entries",
                "Aggregate protocol-state entries by kind (peak snapshot)",
                ("kind",),
            )
            state_bytes_gauge = registry.gauge(
                "repro_state_bytes",
                "Modelled aggregate state bytes per representation backend",
                ("backend",),
            )
            snapshot = self.state_snapshot()
            for kind, value in snapshot["entries"].items():
                entries_gauge.labels(kind=kind).set(value)
            for backend, value in snapshot["bytes"].items():
                state_bytes_gauge.labels(backend=backend).set(value)

    def render(self) -> str:
        """Human-readable table of per-link byte counters."""
        lines = [f"{'link':<10}" + "".join(f"{c:>16}" for c in CATEGORIES)]
        for name in sorted(self._per_link):
            stats = self._per_link[name]
            lines.append(
                f"{name:<10}" + "".join(f"{stats.bytes(c):>16}" for c in CATEGORIES)
            )
        return "\n".join(lines)
