"""Multi-access links.

A :class:`Link` models one of the paper's Links 1–6: a broadcast-capable
subnet (think Ethernet or a wireless cell) with

* one IPv6 prefix,
* a propagation delay and a bandwidth (serialization is FIFO per link),
* link-layer addressing: a unicast frame is delivered only to the
  resolved next hop; multicast/unresolved frames are delivered to every
  other attached interface (this is what lets MLD Reports reach all
  routers and lets parallel routers — B and C in Figure 1 — both pick
  up multicast data, triggering the PIM-DM assert process).

Address resolution is implicit (a neighbor-cache per link mapping each
attached interface's addresses to the interface).  Mobile IPv6's
home-agent intercept is modelled exactly the way the protocol does it:
the HA registers the mobile node's home address on the home link as a
*proxy* entry, so unicast frames for the MN resolve to the HA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..sim import Simulator, Tracer
from .addressing import Address, Prefix
from .loss import BernoulliLoss
from .packet import Ipv6Packet
from .stats import NetworkStats

if TYPE_CHECKING:  # pragma: no cover
    from .interface import Interface

__all__ = ["Link"]


class Link:
    """A multi-access link with a prefix, delay, and bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        prefix: Prefix,
        delay: float = 0.5e-3,
        bandwidth_bps: float = 100e6,
        tracer: Optional[Tracer] = None,
        stats: Optional[NetworkStats] = None,
        loss_rate: float = 0.0,
        rng=None,
    ) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.prefix = Prefix(prefix)
        self.delay = delay
        self.bandwidth_bps = bandwidth_bps
        self.tracer = tracer
        self.stats = stats
        #: retained so a loss model can be installed (or the loss rate
        #: mutated) after construction with a deterministic stream
        self._rng = rng
        self._loss_rng = rng.stream(f"link.loss.{name}") if rng else None
        #: pluggable frame-loss model (models a lossy wireless cell; the
        #: robustness machinery of MLD/Mobile IPv6 — repeated unsolicited
        #: Reports, Binding Update retransmission — exists for exactly
        #: this).  ``None`` means lossless.
        self._loss_model = None
        #: observers notified when administrative state or the loss
        #: model changes (the fluid traffic model re-integrates rates
        #: on such boundaries); see :meth:`add_on_change`
        self._on_change: List[object] = []
        self.loss_rate = loss_rate
        self.frames_lost = 0
        #: administrative state: a down link drops every frame
        #: (fault injection: LinkDown/LinkUp events)
        self.up = True
        self.interfaces: List["Interface"] = []
        #: neighbor cache: address -> owning interface (plus proxy entries)
        self._neighbor_cache: Dict[Address, "Interface"] = {}
        self._busy_until = 0.0
        #: sharded-kernel hook (see :mod:`repro.sim.shard`): when set,
        #: frames for interfaces owned by another shard are handed to
        #: the router instead of being scheduled locally
        self._shard_router = None

    def set_shard_router(self, router) -> None:
        """Install a shard router with ``local(iface)`` / ``ship(...)``.

        ``None`` (the default) restores plain single-process delivery."""
        self._shard_router = router

    # ------------------------------------------------------------------
    # loss model & administrative state
    # ------------------------------------------------------------------
    @property
    def loss_rate(self) -> float:
        """Effective mean frame-loss probability of the current model."""
        return 0.0 if self._loss_model is None else self._loss_model.mean_loss

    @loss_rate.setter
    def loss_rate(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if rate == 0.0:
            self._loss_model = None
            self._notify_change()
            return
        self._require_loss_rng()
        self._loss_model = BernoulliLoss(rate)
        self._notify_change()

    @property
    def loss_model(self):
        return self._loss_model

    def set_loss_model(self, model) -> None:
        """Install a frame-loss model (``None`` restores losslessness)."""
        if model is not None:
            self._require_loss_rng()
        self._loss_model = model
        self._notify_change()

    def add_on_change(self, observer) -> None:
        """Register a callable ``observer(link)`` invoked after every
        administrative up/down flip or loss-model change."""
        self._on_change.append(observer)

    def _notify_change(self) -> None:
        for observer in self._on_change:
            observer(self)

    def _require_loss_rng(self) -> None:
        """Create the loss stream lazily — deterministically named, so a
        post-construction mutation draws the same sequence a
        construction-time ``loss_rate`` would have."""
        if self._loss_rng is not None:
            return
        if self._rng is None:
            raise ValueError(
                f"link {self.name!r} has no RNG registry; "
                "construct it with rng= to enable frame loss"
            )
        self._loss_rng = self._rng.stream(f"link.loss.{self.name}")

    def set_down(self) -> None:
        self.up = False
        self._notify_change()

    def set_up(self) -> None:
        self.up = True
        self._notify_change()

    def _drop(self, reason: str, **detail) -> None:
        if self.stats is not None:
            self.stats.account_drop(self.name, reason)
        if self.tracer is not None:
            self.tracer.record("drop", self.name, reason=reason, **detail)

    # ------------------------------------------------------------------
    # attachment & address resolution
    # ------------------------------------------------------------------
    def attach(self, iface: "Interface") -> None:
        if iface in self.interfaces:
            raise ValueError(f"{iface} already attached to {self.name}")
        self.interfaces.append(iface)
        for addr in iface.addresses:
            self._neighbor_cache[addr] = iface

    def detach(self, iface: "Interface") -> None:
        self.interfaces.remove(iface)
        stale = [a for a, i in self._neighbor_cache.items() if i is iface]
        for addr in stale:
            del self._neighbor_cache[addr]

    def register_address(self, iface: "Interface", address: Address) -> None:
        """Bind an address to an attached interface (autoconfiguration,
        or a home agent registering a proxy entry for a mobile node)."""
        if iface not in self.interfaces:
            raise ValueError(f"{iface} not attached to {self.name}")
        self._neighbor_cache[Address(address)] = iface

    def unregister_address(self, address: Address) -> None:
        self._neighbor_cache.pop(Address(address), None)

    def resolve(self, address: Address) -> Optional["Interface"]:
        """Neighbor-cache lookup: which attached interface owns ``address``?"""
        return self._neighbor_cache.get(Address(address))

    def nodes(self) -> List[object]:
        """The nodes currently attached via this link's interfaces."""
        return [iface.node for iface in self.interfaces]

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        sender: "Interface",
        packet: Ipv6Packet,
        l2_dst: Optional["Interface"] = None,
    ) -> None:
        """Send ``packet`` from ``sender`` onto the link.

        ``l2_dst`` selects unicast frame delivery; ``None`` floods the
        frame to every other attached interface (multicast/broadcast).
        Serialization is FIFO per link: back-to-back packets queue
        behind each other at the link's bandwidth.
        """
        if sender not in self.interfaces:
            # The sending interface detached (mobile node moved away)
            # before the send fired — account it like every other loss
            # path so handoff losses are not undercounted.
            self._drop("sender-detached", dst=str(packet.dst))
            return
        if getattr(sender.node, "crashed", False):
            # A crashed node transmits nothing — stray callbacks scheduled
            # before the crash (raw events, not cancellable timers) die here.
            self._drop("node-crashed", dst=str(packet.dst))
            return
        if not self.up:
            self._drop("link-down", dst=str(packet.dst))
            return
        if l2_dst is None and not packet.dst.is_multicast:
            # Unicast frames need a resolved link-layer destination; an
            # unresolvable neighbor (e.g. a stale care-of address after
            # the mobile left) means neighbor discovery fails -> drop.
            # Flooding unicast frames would bounce them between routers.
            l2_dst = self.resolve(packet.dst)
            if l2_dst is None:
                self._drop("nd-failure", dst=str(packet.dst))
                return
        if self.stats is not None:
            self.stats.account(self.name, packet)
        tracer = self.tracer
        if tracer is not None and tracer.wants("link"):
            # wants() pre-filters before the describe()/kwargs cost:
            # "link" is the one per-frame category and is routinely
            # disabled for long benchmark runs.
            tracer.record(
                "link",
                self.name,
                packet=packet.describe(),
                size=packet.size_bytes,
                sender=sender.node.name,
            )

        tx_time = packet.size_bytes * 8 / self.bandwidth_bps
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + tx_time
        arrival = start + tx_time + self.delay

        shard_router = self._shard_router
        if l2_dst is not None:
            if shard_router is None or shard_router.local(l2_dst):
                self.sim.schedule_at(
                    arrival, self._deliver_one, l2_dst, packet, label=f"{self.name}.rx"
                )
            else:
                shard_router.ship(self, l2_dst, packet, arrival)
        else:
            # Flood delivery: scheduling does not mutate the attachment
            # list, so iterate it directly — no per-frame list() copy.
            schedule_at = self.sim.schedule_at
            label = f"{self.name}.rx"
            for iface in self.interfaces:
                if iface is sender:
                    continue
                if shard_router is None or shard_router.local(iface):
                    schedule_at(arrival, self._deliver_one, iface, packet, label=label)
                else:
                    shard_router.ship(self, iface, packet, arrival)

    def _deliver_one(self, iface: "Interface", packet: Ipv6Packet) -> None:
        # The interface may have detached (mobile node moved) while the
        # frame was in flight; such frames are lost, which is exactly the
        # packet loss during handoff the paper's join-delay metric counts.
        if iface not in self.interfaces:
            if self.stats is not None:
                self.stats.account_drop(self.name, "receiver-detached")
            return
        if not self.up:
            # The link went down while the frame was in flight.
            self._drop("link-down", receiver=iface.node.name)
            return
        if getattr(iface.node, "crashed", False):
            # Checked before the loss draw so fault-free runs consume an
            # identical RNG sequence whether or not crashes are plausible.
            self._drop("node-crashed", receiver=iface.node.name)
            return
        if self._loss_model is not None and self._loss_model.should_drop(
            self._loss_rng
        ):
            self.frames_lost += 1
            self._drop("link-loss", receiver=iface.node.name)
            return
        iface.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.prefix} n={len(self.interfaces)}>"
