"""Network interfaces binding nodes to links."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .addressing import Address
from .link import Link
from .packet import Ipv6Packet

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["Interface"]


class Interface:
    """One attachment point of a node.

    Routers have one interface per connected link; hosts have a single
    interface that re-attaches as the host moves between links (the
    Mobile IPv6 model: one physical interface, changing points of
    attachment).

    ``uid`` is allocated per *node* (if1, if2, ... in creation order),
    so interface identity — which feeds names into the trace stream —
    is a pure function of topology construction, never of how many
    networks the process built before (the golden-trace determinism
    contract).  Protocol state tables key on ``uid`` only within a
    single node, so per-node uniqueness is sufficient.
    """

    def __init__(self, node: "Node", name: Optional[str] = None) -> None:
        self.node = node
        self.uid = node.alloc_iface_uid()
        self.name = name or f"{node.name}.if{self.uid}"
        self.link: Optional[Link] = None
        self.addresses: List[Address] = []

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self.link is not None

    def attach(self, link: Link) -> None:
        if self.link is not None:
            raise ValueError(f"{self.name} already attached to {self.link.name}")
        self.link = link
        link.attach(self)

    def detach(self) -> None:
        if self.link is None:
            return
        self.link.detach(self)
        self.link = None

    # ------------------------------------------------------------------
    def add_address(self, address: Address) -> None:
        """Configure an address; registers it in the link neighbor cache."""
        address = Address(address)
        if address not in self.addresses:
            self.addresses.append(address)
        if self.link is not None:
            self.link.register_address(self, address)

    def remove_address(self, address: Address) -> None:
        address = Address(address)
        if address in self.addresses:
            self.addresses.remove(address)
        if self.link is not None:
            self.link.unregister_address(address)

    def clear_addresses(self) -> None:
        for address in list(self.addresses):
            self.remove_address(address)

    def has_address(self, address: Address) -> bool:
        return Address(address) in self.addresses

    # ------------------------------------------------------------------
    def send(self, packet: Ipv6Packet, l2_dst: Optional["Interface"] = None) -> None:
        """Transmit on the attached link; silently dropped when detached
        (the host is between links — mid-handoff packet loss)."""
        if self.link is not None:
            self.link.transmit(self, packet, l2_dst=l2_dst)

    def deliver(self, packet: Ipv6Packet) -> None:
        """Called by the link when a frame arrives."""
        self.node.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.link.name if self.link else "detached"
        return f"<Interface {self.name} on {where} addrs={self.addresses}>"
