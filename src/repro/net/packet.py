"""IPv6 packets, destination options, and IPv6-in-IPv6 encapsulation.

The paper's mechanisms are carried in exactly these structures:

* Binding Updates / Acknowledgements / Home Address are IPv6
  **destination options** (Mobile IPv6 draft §4; paper §2),
* home-agent and mobile-host tunnels use **IPv6 encapsulation**
  (RFC 2473; paper §2) — an entire IPv6 packet as the payload of an
  outer IPv6 packet, costing one extra 40-byte header per datagram,
* multicast data are plain packets with a multicast destination.

Sizes are modelled faithfully: 40-byte base header, destination-options
extension header padded to a multiple of 8 bytes, encapsulation charges
the full inner packet plus the outer headers.  These sizes drive the
bandwidth-consumption comparison of Section 4.3.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Tuple, Union

from .addressing import Address
from .messages import Message

__all__ = [
    "DestinationOption",
    "Ipv6Packet",
    "IPV6_HEADER_BYTES",
    "reset_packet_uids",
]

#: Fixed IPv6 base header size (RFC 2460).
IPV6_HEADER_BYTES = 40

_packet_uid = itertools.count(1)


def reset_packet_uids() -> None:
    """Restart the packet uid counter at 1.

    Called by :class:`repro.net.topology.Network` at construction so
    packet uids — which appear in trace details — are a function of the
    run, not of how many packets the process created before.  Uids are
    only ever compared within one network's trace stream, so the
    cross-network reuse this causes is harmless.
    """
    global _packet_uid
    _packet_uid = itertools.count(1)


def swap_packet_uid_counter(counter):
    """Install ``counter`` as the uid source; return the previous one.

    The sharded kernel's in-process executor keeps one full network
    replica per shard in a single process; giving each replica its own
    counter (swapped in around its dispatch windows) makes the uid
    streams — and hence the per-shard trace digests — identical to the
    multiprocessing executor, where each worker process naturally has
    its own module state (see :mod:`repro.sim.shard`).
    """
    global _packet_uid
    previous = _packet_uid
    _packet_uid = counter
    return previous


class DestinationOption:
    """Base class for IPv6 destination options.

    Concrete options (Binding Update, Binding Acknowledgement, Binding
    Request, Home Address — the four options Mobile IPv6 defines, paper
    §2 footnote 3) are implemented in :mod:`repro.mipv6.options`
    together with byte-exact serialization.
    """

    #: Option type code (8 bits on the wire).
    option_type: int = 0

    @property
    def size_bytes(self) -> int:
        """Wire size of the option (type + len + data bytes)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


def _options_header_bytes(options: Tuple[DestinationOption, ...]) -> int:
    """Size of a Destination Options extension header carrying ``options``.

    Two bytes of Next Header / Hdr Ext Len plus the options, padded up to
    a multiple of 8 (RFC 2460 §4.6).
    """
    if not options:
        return 0
    raw = 2 + sum(opt.size_bytes for opt in options)
    return (raw + 7) // 8 * 8


class Ipv6Packet:
    """A simulated IPv6 packet.

    ``payload`` is either a :class:`~repro.net.messages.Message` or
    another :class:`Ipv6Packet` (IPv6-in-IPv6 tunnel).

    >>> from repro.net.messages import ApplicationData
    >>> p = Ipv6Packet(Address("2001:db8:1::10"), Address("ff1e::1"),
    ...                ApplicationData(seqno=0, payload_bytes=1000))
    >>> p.size_bytes
    1040
    >>> outer = p.encapsulate(Address("2001:db8:6::10"), Address("2001:db8:1::1"))
    >>> outer.size_bytes
    1080
    >>> outer.decapsulate() is p
    True
    """

    __slots__ = (
        "src",
        "dst",
        "payload",
        "hop_limit",
        "dest_options",
        "uid",
        "_size_bytes",
        "_described",
    )

    def __init__(
        self,
        src: Address,
        dst: Address,
        payload: Union[Message, "Ipv6Packet"],
        hop_limit: int = 64,
        dest_options: Iterable[DestinationOption] = (),
    ) -> None:
        self.src = Address(src)
        self.dst = Address(dst)
        self.payload = payload
        self.hop_limit = hop_limit
        self.dest_options: Tuple[DestinationOption, ...] = tuple(dest_options)
        self.uid = next(_packet_uid)
        # Packets are immutable after construction (forwarding clones
        # instead of mutating), so the wire size and trace label are
        # computed once and memoized — both are recomputed per hop on
        # the Link.transmit hot path otherwise.
        self._size_bytes: Optional[int] = None
        self._described: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Total wire size: base header + dest-options header + payload."""
        size = self._size_bytes
        if size is None:
            size = self._size_bytes = (
                IPV6_HEADER_BYTES
                + _options_header_bytes(self.dest_options)
                + self.payload.size_bytes
            )
        return size

    @property
    def is_tunneled(self) -> bool:
        """True when this packet encapsulates another IPv6 packet."""
        return isinstance(self.payload, Ipv6Packet)

    @property
    def inner(self) -> "Ipv6Packet":
        """Innermost encapsulated packet (self when not tunneled)."""
        pkt = self
        while isinstance(pkt.payload, Ipv6Packet):
            pkt = pkt.payload
        return pkt

    @property
    def overhead_bytes(self) -> int:
        """Bytes of this packet that are tunnel overhead (0 if plain)."""
        return self.size_bytes - self.inner.size_bytes

    def innermost_message(self) -> Message:
        """The application/protocol message at the bottom of any tunnel."""
        payload = self.inner.payload
        assert isinstance(payload, Message)
        return payload

    # ------------------------------------------------------------------
    def encapsulate(
        self,
        outer_src: Address,
        outer_dst: Address,
        hop_limit: int = 64,
        dest_options: Iterable[DestinationOption] = (),
    ) -> "Ipv6Packet":
        """Wrap this packet in an outer IPv6 header (RFC 2473 tunneling)."""
        return Ipv6Packet(
            outer_src, outer_dst, self, hop_limit=hop_limit, dest_options=dest_options
        )

    def decapsulate(self) -> "Ipv6Packet":
        """Remove one level of encapsulation."""
        if not isinstance(self.payload, Ipv6Packet):
            raise ValueError("packet is not tunneled")
        return self.payload

    def find_option(self, option_type: type) -> Optional[DestinationOption]:
        """First destination option of the given class, or None."""
        for opt in self.dest_options:
            if isinstance(opt, option_type):
                return opt
        return None

    def with_decremented_hop_limit(self) -> "Ipv6Packet":
        """Copy with hop limit reduced by one (router forwarding)."""
        clone = Ipv6Packet(
            self.src,
            self.dst,
            self.payload,
            hop_limit=self.hop_limit - 1,
            dest_options=self.dest_options,
        )
        clone.uid = self.uid
        return clone

    def describe(self) -> str:
        """Short label for traces (memoized; packets are immutable)."""
        described = self._described
        if described is None:
            body = (
                f"[{self.payload.describe()}]"
                if isinstance(self.payload, Ipv6Packet)
                else self.payload.describe()
            )
            described = self._described = f"{self.src}->{self.dst} {body}"
        return described

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Ipv6Packet #{self.uid} {self.describe()}>"
