"""Network substrate: addressing, packets, links, nodes, routing."""

from .addressing import (
    ALL_NODES,
    ALL_PIM_ROUTERS,
    ALL_ROUTERS,
    UNSPECIFIED,
    Address,
    Prefix,
    is_multicast,
    make_multicast_group,
)
from .interface import Interface
from .link import Link
from .loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    gilbert_for_mean_loss,
    loss_model_from_jsonable,
)
from .messages import ApplicationData, ControlPayload, Message
from .node import Host, Node
from .packet import IPV6_HEADER_BYTES, DestinationOption, Ipv6Packet
from .routing import RouteEntry, RoutingTable, compute_router_fibs
from .stats import (
    CATEGORIES,
    STATE_BYTE_COSTS,
    STATE_KINDS,
    LinkStats,
    NetworkStats,
    classify_packet,
    estimate_state_bytes,
)
from .topology import Network
from .topogen import (
    MODELS,
    GeneratedTopology,
    TopoGraph,
    build_network,
    fattree_graph,
    figure1_graph,
    hierarchical_graph,
    topo_graph,
    waxman_graph,
)

__all__ = [
    "ALL_NODES",
    "ALL_PIM_ROUTERS",
    "ALL_ROUTERS",
    "UNSPECIFIED",
    "Address",
    "ApplicationData",
    "BernoulliLoss",
    "CATEGORIES",
    "ControlPayload",
    "DestinationOption",
    "GeneratedTopology",
    "GilbertElliottLoss",
    "Host",
    "IPV6_HEADER_BYTES",
    "Interface",
    "Ipv6Packet",
    "Link",
    "LinkStats",
    "MODELS",
    "Message",
    "Network",
    "NetworkStats",
    "Node",
    "Prefix",
    "RouteEntry",
    "RoutingTable",
    "STATE_BYTE_COSTS",
    "STATE_KINDS",
    "TopoGraph",
    "build_network",
    "classify_packet",
    "compute_router_fibs",
    "estimate_state_bytes",
    "fattree_graph",
    "figure1_graph",
    "gilbert_for_mean_loss",
    "hierarchical_graph",
    "is_multicast",
    "loss_model_from_jsonable",
    "make_multicast_group",
    "topo_graph",
    "waxman_graph",
]
