"""Network substrate: addressing, packets, links, nodes, routing."""

from .addressing import (
    ALL_NODES,
    ALL_PIM_ROUTERS,
    ALL_ROUTERS,
    UNSPECIFIED,
    Address,
    Prefix,
    is_multicast,
    make_multicast_group,
)
from .interface import Interface
from .link import Link
from .loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    gilbert_for_mean_loss,
    loss_model_from_jsonable,
)
from .messages import ApplicationData, ControlPayload, Message
from .node import Host, Node
from .packet import IPV6_HEADER_BYTES, DestinationOption, Ipv6Packet
from .routing import RouteEntry, RoutingTable, compute_router_fibs
from .stats import CATEGORIES, LinkStats, NetworkStats, classify_packet
from .topology import Network

__all__ = [
    "ALL_NODES",
    "ALL_PIM_ROUTERS",
    "ALL_ROUTERS",
    "UNSPECIFIED",
    "Address",
    "ApplicationData",
    "BernoulliLoss",
    "CATEGORIES",
    "ControlPayload",
    "DestinationOption",
    "GilbertElliottLoss",
    "Host",
    "IPV6_HEADER_BYTES",
    "Interface",
    "Ipv6Packet",
    "Link",
    "LinkStats",
    "Message",
    "Network",
    "NetworkStats",
    "Node",
    "Prefix",
    "RouteEntry",
    "RoutingTable",
    "classify_packet",
    "compute_router_fibs",
    "gilbert_for_mean_loss",
    "is_multicast",
    "loss_model_from_jsonable",
    "make_multicast_group",
]
