"""Nodes: the common dispatch layer for hosts and routers.

A :class:`Node` owns interfaces and dispatches received packets:

* destination options are handed to registered option handlers
  (Mobile IPv6 Binding Updates and Acknowledgements),
* upper-layer messages are handed to registered message handlers
  (MLD, PIM, application data),
* tunneled packets (IPv6-in-IPv6) go to registered tunnel handlers,
* routers forward unicast packets they do not own via the FIB and hand
  multicast data to a pluggable multicast forwarding engine (PIM-DM).

:class:`Host` adds multicast group membership and application delivery;
the protocol-complete node types (multicast router, mobile host, home
agent) are composed in :mod:`repro.pimdm.router` and
:mod:`repro.mipv6`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set, Type

from ..sim import RngRegistry, Simulator, Tracer
from .addressing import Address
from .interface import Interface
from .link import Link
from .messages import ApplicationData, Message
from .packet import DestinationOption, Ipv6Packet
from .routing import RoutingTable

__all__ = ["Node", "Host"]

MessageHandler = Callable[[Ipv6Packet, Message, Interface], None]
OptionHandler = Callable[[Ipv6Packet, DestinationOption, Interface], None]
TunnelHandler = Callable[[Ipv6Packet, Interface], bool]


class Node:
    """Base network node."""

    is_router = False

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tracer: Optional[Tracer] = None,
        rng: Optional[RngRegistry] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.tracer = tracer
        self.rng = rng or RngRegistry()
        self.interfaces: List[Interface] = []
        self._iface_uid = itertools.count(1)
        self.routing = RoutingTable()
        self._message_handlers: Dict[Type[Message], List[MessageHandler]] = {}
        self._option_handlers: Dict[Type[DestinationOption], List[OptionHandler]] = {}
        self._tunnel_handlers: List[TunnelHandler] = []
        #: counters exposed for the system-load comparison (§4.3)
        self.load = {
            "packets_processed": 0,
            "packets_forwarded": 0,
            "encapsulations": 0,
            "decapsulations": 0,
        }
        #: fault-injection state: a crashed node drops every packet and
        #: runs no protocol machinery until restarted
        self.crashed = False

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Stop processing packets.  Subclasses additionally cancel their
        protocol timers and discard protocol state (cold restart).  The
        ``fault`` trace event is emitted by the injector, not here."""
        self.crashed = True

    def restart(self) -> None:
        """Resume processing.  Subclasses re-boot their protocol engines
        from cold state."""
        self.crashed = False

    # ------------------------------------------------------------------
    # interfaces & addresses
    # ------------------------------------------------------------------
    def alloc_iface_uid(self) -> int:
        """Next per-node interface uid.  Per-node (not process-global) so
        auto-generated interface names depend only on the order this node
        created its interfaces — a trace-determinism requirement for the
        golden-trace suite."""
        return next(self._iface_uid)

    def new_interface(self, name: Optional[str] = None) -> Interface:
        iface = Interface(self, name=name)
        self.interfaces.append(iface)
        return iface

    def attach_to(self, link: Link, address: Optional[Address] = None) -> Interface:
        """Create an interface on ``link``, optionally with an address."""
        iface = self.new_interface()
        iface.attach(link)
        if address is not None:
            iface.add_address(address)
        return iface

    def iface_on(self, link: Link) -> Optional[Interface]:
        for iface in self.interfaces:
            if iface.link is link:
                return iface
        return None

    def addresses(self) -> List[Address]:
        return [a for iface in self.interfaces for a in iface.addresses]

    def owns_address(self, address: Address) -> bool:
        address = Address(address)
        return any(iface.has_address(address) for iface in self.interfaces)

    def primary_address(self) -> Address:
        for iface in self.interfaces:
            for addr in iface.addresses:
                if not addr.is_link_local:
                    return addr
        raise ValueError(f"{self.name} has no global address")

    def address_on(self, link: Link) -> Optional[Address]:
        iface = self.iface_on(link)
        if iface is None:
            return None
        for addr in iface.addresses:
            if not addr.is_link_local:
                return addr
        return None

    # ------------------------------------------------------------------
    # handler registration
    # ------------------------------------------------------------------
    def register_message_handler(
        self, message_type: Type[Message], handler: MessageHandler
    ) -> None:
        self._message_handlers.setdefault(message_type, []).append(handler)

    def register_option_handler(
        self, option_type: Type[DestinationOption], handler: OptionHandler
    ) -> None:
        self._option_handlers.setdefault(option_type, []).append(handler)

    def register_tunnel_handler(self, handler: TunnelHandler) -> None:
        """Handlers are tried in order; the first returning True consumed
        the tunneled packet."""
        self._tunnel_handlers.append(handler)

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def trace(self, category: str, **detail) -> None:
        if self.tracer is not None:
            self.tracer.record(category, self.name, **detail)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_on(
        self,
        iface: Interface,
        packet: Ipv6Packet,
        l2_dst: Optional[Interface] = None,
    ) -> None:
        """Transmit on a specific interface (link-scope & multicast sends)."""
        iface.send(packet, l2_dst=l2_dst)

    def route_and_send(self, packet: Ipv6Packet) -> bool:
        """Originate (or forward) a unicast packet via FIB / on-link routes.

        Returns False when no route exists (packet dropped).
        """
        dst = packet.dst
        # On-link delivery first: any attached link whose prefix covers dst.
        for iface in self.interfaces:
            if iface.link is not None and iface.link.prefix.contains(dst):
                target = iface.link.resolve(dst)
                iface.send(packet, l2_dst=target)
                return True
        entry = self.routing.lookup(dst)
        if entry is None or entry.iface.link is None:
            if not self.is_router:
                return self._send_via_default_gateway(packet)
            self.trace("drop", reason="no-route", dst=str(dst))
            return False
        next_hop = entry.next_hop if entry.next_hop is not None else dst
        target = entry.iface.link.resolve(next_hop)
        entry.iface.send(packet, l2_dst=target)
        return True

    def _send_via_default_gateway(self, packet: Ipv6Packet) -> bool:
        """Host fallback: hand off-link unicast traffic to the
        lowest-addressed router on the attached link."""
        for iface in self.interfaces:
            if iface.link is None:
                continue
            routers = [
                (other, addr)
                for other in iface.link.interfaces
                if other.node.is_router and other is not iface
                for addr in other.addresses
                if not addr.is_link_local and not addr.is_multicast
            ]
            if routers:
                gateway = min(routers, key=lambda pair: pair[1])
                iface.send(packet, l2_dst=gateway[0])
                return True
        self.trace("drop", reason="no-gateway", dst=str(packet.dst))
        return False

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def receive(self, packet: Ipv6Packet, iface: Interface) -> None:
        if self.crashed:
            return  # links drop frames first; this guards direct delivery
        self.load["packets_processed"] += 1
        dst = packet.dst
        if dst.is_multicast:
            self.handle_multicast(packet, iface)
            return
        if self.owns_address(dst):
            self.local_deliver(packet, iface)
            return
        if self.intercepts(dst):
            self.intercept_deliver(packet, iface)
            return
        if self.is_router:
            self.forward_unicast(packet, iface)
        else:
            self.trace("drop", reason="not-mine", dst=str(dst))

    def handle_multicast(self, packet: Ipv6Packet, iface: Interface) -> None:
        """Default multicast handling: dispatch control messages; subclasses
        add group delivery (hosts) and forwarding (routers)."""
        self.dispatch_message(packet, iface)

    def intercepts(self, dst: Address) -> bool:
        """Proxy intercept hook — home agents override (Mobile IPv6 §2)."""
        return False

    def intercept_deliver(self, packet: Ipv6Packet, iface: Interface) -> None:
        raise NotImplementedError

    def local_deliver(self, packet: Ipv6Packet, iface: Interface) -> None:
        """Packet addressed to this node: options, then payload."""
        for option in packet.dest_options:
            for opt_type, handlers in self._option_handlers.items():
                if isinstance(option, opt_type):
                    for handler in handlers:
                        handler(packet, option, iface)
        if packet.is_tunneled:
            self.load["decapsulations"] += 1
            self.trace("mipv6", event="decapsulate", packet=packet.inner.describe())
            for handler in self._tunnel_handlers:
                if handler(packet, iface):
                    return
            # Default: act as tunnel endpoint, re-receive the inner packet.
            inner = packet.decapsulate()
            self.receive(inner, iface)
            return
        self.dispatch_message(packet, iface)

    def dispatch_message(self, packet: Ipv6Packet, iface: Interface) -> bool:
        """Invoke handlers registered for the payload's message type."""
        message = packet.payload
        if not isinstance(message, Message):
            return False
        handled = False
        for msg_type, handlers in self._message_handlers.items():
            if isinstance(message, msg_type):
                for handler in handlers:
                    handler(packet, message, iface)
                    handled = True
        return handled

    # ------------------------------------------------------------------
    # unicast forwarding (routers)
    # ------------------------------------------------------------------
    def forward_unicast(self, packet: Ipv6Packet, iface: Interface) -> None:
        if packet.dst.is_link_local or packet.dst.is_link_scope_multicast:
            return
        if packet.hop_limit <= 1:
            self.trace("drop", reason="hop-limit", dst=str(packet.dst))
            return
        self.load["packets_forwarded"] += 1
        self.route_and_send(packet.with_decremented_hop_limit())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end host: multicast group membership + application delivery.

    The MLD host part (:class:`repro.mld.host.MldHost`) drives the
    signaling; this class tracks which groups the applications joined
    and delivers matching multicast data to application callbacks.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.joined_groups: Set[Address] = set()
        self._app_receivers: List[Callable[[Ipv6Packet, ApplicationData], None]] = []

    # ------------------------------------------------------------------
    def on_app_data(
        self, callback: Callable[[Ipv6Packet, ApplicationData], None]
    ) -> None:
        self._app_receivers.append(callback)

    def deliver_app_data(self, packet: Ipv6Packet) -> None:
        message = packet.innermost_message()
        if isinstance(message, ApplicationData):
            self.trace(
                "mcast.deliver",
                group=str(packet.inner.dst),
                flow=message.flow,
                seqno=message.seqno,
                src=str(packet.inner.src),
                latency=self.sim.now - message.sent_at,
            )
            for callback in self._app_receivers:
                callback(packet, message)

    # ------------------------------------------------------------------
    def handle_multicast(self, packet: Ipv6Packet, iface: Interface) -> None:
        self.dispatch_message(packet, iface)
        if packet.dst in self.joined_groups and isinstance(
            packet.payload, ApplicationData
        ):
            self.deliver_app_data(packet)

    def send_multicast(
        self,
        group: Address,
        message: Message,
        src: Optional[Address] = None,
        hop_limit: int = 64,
        iface: Optional[Interface] = None,
    ) -> Optional[Ipv6Packet]:
        """Originate a multicast datagram on the (single) attached link."""
        if iface is None:
            iface = next((i for i in self.interfaces if i.attached), None)
        if iface is None or not iface.attached:
            return None  # between links: datagram lost
        if src is None:
            src = self.address_on(iface.link) or self.primary_address()
        packet = Ipv6Packet(src, group, message, hop_limit=hop_limit)
        self.send_on(iface, packet)
        return packet
