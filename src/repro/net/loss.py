"""Frame-loss models for links.

The seed implementation modelled a lossy wireless cell with a single
Bernoulli ``loss_rate`` knob on :class:`~repro.net.link.Link`.  The
fault-injection subsystem (``repro.faults``) generalizes that into
pluggable loss models:

* :class:`BernoulliLoss` — independent per-frame loss, the original
  behaviour (and the model the ``loss_rate`` property still exposes),
* :class:`GilbertElliottLoss` — the classic two-state burst-loss model
  (Gilbert 1960, Elliott 1963): a *good* state with low loss and a
  *bad* state with high loss, with per-frame transition probabilities.
  Wireless fading produces correlated losses, which is exactly what
  stresses MLD's Robustness Variable and PIM-DM Graft retransmission
  differently from independent drops.

Every model consumes draws from the link's dedicated RNG stream
(``link.loss.<name>``), so runs are deterministic per seed and
independent across links.  :class:`BernoulliLoss` draws exactly once
per frame — the draw sequence of the seed implementation is preserved
bit-for-bit.

Under the fluid traffic model (``repro.traffic.fluid``) loss models act
as *rate multipliers*: a link forwards ``rate x (1 - mean_loss)``.
For :class:`GilbertElliottLoss` that is expected-throughput
integration — the stationary mixture ``(1-π_b)·loss_good +
π_b·loss_bad`` — i.e. burst structure averages out over the
integration window, which is what the §4.3 byte aggregates measure.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "BernoulliLoss",
    "GilbertElliottLoss",
    "gilbert_for_mean_loss",
    "loss_model_from_jsonable",
]


def _check_probability(name: str, value: float, upper_inclusive: bool = True) -> float:
    value = float(value)
    if upper_inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 <= value < 1.0:
            raise ValueError(f"{name} must be in [0, 1), got {value}")
    return value


class BernoulliLoss:
    """Independent per-frame loss with fixed probability ``rate``."""

    def __init__(self, rate: float) -> None:
        self.rate = _check_probability("rate", rate, upper_inclusive=False)

    def should_drop(self, rng) -> bool:
        """One draw per frame — preserves the legacy draw sequence."""
        return rng.random() < self.rate

    @property
    def mean_loss(self) -> float:
        return self.rate

    def to_jsonable(self) -> Dict[str, Any]:
        return {"model": "bernoulli", "rate": self.rate}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BernoulliLoss rate={self.rate}>"


class GilbertElliottLoss:
    """Two-state (good/bad) burst-loss model.

    Each frame first draws a state transition (good→bad with
    ``p_good_to_bad``, bad→good with ``p_bad_to_good``), then drops
    with the resulting state's loss probability (``loss_good`` /
    ``loss_bad``).  Mean sojourn in the bad state is
    ``1 / p_bad_to_good`` frames — the burst length.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        state: str = "good",
    ) -> None:
        self.p_good_to_bad = _check_probability("p_good_to_bad", p_good_to_bad)
        self.p_bad_to_good = _check_probability("p_bad_to_good", p_bad_to_good)
        self.loss_good = _check_probability("loss_good", loss_good)
        self.loss_bad = _check_probability("loss_bad", loss_bad)
        if state not in ("good", "bad"):
            raise ValueError(f"state must be 'good' or 'bad', got {state!r}")
        self.state = state

    def should_drop(self, rng) -> bool:
        # Transition draw first (always exactly one), then the loss draw
        # for the new state.  Degenerate per-state probabilities (0 / 1)
        # skip their draw so burst boundaries stay sharp.
        if self.state == "good":
            if rng.random() < self.p_good_to_bad:
                self.state = "bad"
        else:
            if rng.random() < self.p_bad_to_good:
                self.state = "good"
        p = self.loss_good if self.state == "good" else self.loss_bad
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return rng.random() < p

    @property
    def stationary_bad(self) -> float:
        """Long-run probability of being in the bad state."""
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0.0:
            return 1.0 if self.state == "bad" else 0.0
        return self.p_good_to_bad / total

    @property
    def mean_loss(self) -> float:
        pi_b = self.stationary_bad
        return (1.0 - pi_b) * self.loss_good + pi_b * self.loss_bad

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "model": "gilbert",
            "p_good_to_bad": self.p_good_to_bad,
            "p_bad_to_good": self.p_bad_to_good,
            "loss_good": self.loss_good,
            "loss_bad": self.loss_bad,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GilbertElliottLoss gb={self.p_good_to_bad} bg={self.p_bad_to_good} "
            f"mean={self.mean_loss:.4f} state={self.state}>"
        )


def gilbert_for_mean_loss(
    mean_loss: float,
    loss_bad: float = 0.9,
    p_bad_to_good: float = 0.25,
    loss_good: float = 0.0,
) -> GilbertElliottLoss:
    """A Gilbert–Elliott model tuned to a target mean loss rate.

    Bursts average ``1 / p_bad_to_good`` frames; the good→bad rate is
    solved from the stationary distribution so the long-run loss equals
    ``mean_loss``.  Keeps fault-sweep grids parameterized by the same
    scalar as a Bernoulli sweep, while producing correlated losses.
    """
    mean_loss = _check_probability("mean_loss", mean_loss, upper_inclusive=False)
    if loss_bad <= loss_good:
        raise ValueError("loss_bad must exceed loss_good")
    if mean_loss <= loss_good:
        # Degenerate target: never enter the bad state.
        return GilbertElliottLoss(0.0, p_bad_to_good, loss_good, loss_bad)
    pi_b = (mean_loss - loss_good) / (loss_bad - loss_good)
    if pi_b >= 1.0:
        raise ValueError(
            f"mean_loss {mean_loss} unreachable with loss_bad {loss_bad}"
        )
    p_gb = p_bad_to_good * pi_b / (1.0 - pi_b)
    return GilbertElliottLoss(p_gb, p_bad_to_good, loss_good, loss_bad)


def loss_model_from_jsonable(spec: Dict[str, Any]):
    """Rebuild a loss model from :meth:`to_jsonable` output (or the
    compact fault-plan form ``{"model": "gilbert", "rate": 0.02}``)."""
    if not isinstance(spec, dict) or "model" not in spec:
        raise ValueError(f"invalid loss model spec: {spec!r}")
    kind = spec["model"]
    if kind == "bernoulli":
        return BernoulliLoss(spec["rate"])
    if kind == "gilbert":
        if "rate" in spec:
            return gilbert_for_mean_loss(
                spec["rate"],
                loss_bad=spec.get("loss_bad", 0.9),
                p_bad_to_good=spec.get("p_bad_to_good", 0.25),
                loss_good=spec.get("loss_good", 0.0),
            )
        return GilbertElliottLoss(
            spec["p_good_to_bad"],
            spec["p_bad_to_good"],
            loss_good=spec.get("loss_good", 0.0),
            loss_bad=spec.get("loss_bad", 1.0),
        )
    raise ValueError(f"unknown loss model {kind!r}")
