"""IPv6 addressing for the simulated network.

Thin, hashable wrappers over :mod:`ipaddress` plus the well-known
constants the protocols need (all-nodes / all-routers link-scope
multicast, the all-PIM-routers group) and helpers for stateless
autoconfiguration, which Mobile IPv6 uses to form care-of addresses on
foreign links (RFC 2462 — reference [14] of the paper).
"""

from __future__ import annotations

import ipaddress
from functools import total_ordering
from typing import Union

__all__ = [
    "Address",
    "Prefix",
    "ALL_NODES",
    "ALL_ROUTERS",
    "ALL_PIM_ROUTERS",
    "UNSPECIFIED",
    "is_multicast",
    "make_multicast_group",
]

_AddressLike = Union[str, int, "Address", ipaddress.IPv6Address]


@total_ordering
class Address:
    """An IPv6 address.

    Immutable, hashable, ordered (MLD querier election and PIM-DM assert
    tie-breaks compare addresses numerically).

    >>> Address("2001:db8:1::10").is_multicast
    False
    >>> Address("ff02::1").is_multicast
    True
    >>> Address("ff02::1") == Address("ff02:0:0:0:0:0:0:1")
    True
    """

    __slots__ = ("_addr",)

    def __init__(self, value: _AddressLike) -> None:
        if isinstance(value, Address):
            self._addr = value._addr
        elif isinstance(value, ipaddress.IPv6Address):
            self._addr = value
        else:
            self._addr = ipaddress.IPv6Address(value)

    # ------------------------------------------------------------------
    @property
    def is_multicast(self) -> bool:
        return self._addr.is_multicast

    @property
    def is_link_local(self) -> bool:
        return self._addr.is_link_local

    @property
    def is_link_scope_multicast(self) -> bool:
        """True for ff02::/16 — packets that must never be forwarded."""
        return self.is_multicast and (int(self._addr) >> 112) & 0xF == 0x2

    @property
    def is_unspecified(self) -> bool:
        return self._addr == ipaddress.IPv6Address("::")

    def as_int(self) -> int:
        return int(self._addr)

    def packed(self) -> bytes:
        """16-byte network-order representation (wire format)."""
        return self._addr.packed

    @classmethod
    def from_packed(cls, data: bytes) -> "Address":
        if len(data) != 16:
            raise ValueError(f"IPv6 address needs 16 bytes, got {len(data)}")
        return cls(ipaddress.IPv6Address(data))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Address):
            return self._addr == other._addr
        if isinstance(other, (str, int, ipaddress.IPv6Address)):
            return self._addr == Address(other)._addr
        return NotImplemented

    def __lt__(self, other: "Address") -> bool:
        return self._addr < Address(other)._addr

    def __hash__(self) -> int:
        return hash(self._addr)

    def __str__(self) -> str:
        return str(self._addr)

    def __repr__(self) -> str:
        return f"Address({str(self._addr)!r})"


class Prefix:
    """An IPv6 network prefix (one per simulated link).

    >>> p = Prefix("2001:db8:1::/64")
    >>> p.contains(Address("2001:db8:1::42"))
    True
    >>> str(p.address_for_host(5))
    '2001:db8:1::5'
    """

    __slots__ = ("_net",)

    def __init__(self, value: Union[str, "Prefix", ipaddress.IPv6Network]) -> None:
        if isinstance(value, Prefix):
            self._net = value._net
        elif isinstance(value, ipaddress.IPv6Network):
            self._net = value
        else:
            self._net = ipaddress.IPv6Network(value)

    @property
    def prefix_len(self) -> int:
        return self._net.prefixlen

    def contains(self, address: Address) -> bool:
        return Address(address)._addr in self._net

    def address_for_host(self, host_id: int) -> Address:
        """Form an address on this prefix with the given interface id.

        Models stateless address autoconfiguration: prefix (from Router
        Advertisement) + interface identifier.
        """
        if host_id <= 0:
            raise ValueError("host_id must be positive")
        base = int(self._net.network_address)
        addr = base + host_id
        if not self.contains(Address(addr)):
            raise ValueError(f"host_id {host_id} exceeds prefix {self}")
        return Address(addr)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self._net == other._net
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._net)

    def __str__(self) -> str:
        return str(self._net)

    def __repr__(self) -> str:
        return f"Prefix({str(self._net)!r})"


#: All-nodes link-scope multicast (ff02::1) — MLD General Queries go here.
ALL_NODES = Address("ff02::1")

#: All-routers link-scope multicast (ff02::2) — MLD Done messages go here.
ALL_ROUTERS = Address("ff02::2")

#: All-PIM-routers link-scope multicast (ff02::d) — PIM control messages.
ALL_PIM_ROUTERS = Address("ff02::d")

#: The unspecified address.
UNSPECIFIED = Address("::")


def is_multicast(address: _AddressLike) -> bool:
    """True when ``address`` is an IPv6 multicast address."""
    return Address(address).is_multicast


def make_multicast_group(group_id: int) -> Address:
    """Allocate a global-scope multicast group address (ff1e::/112 pool).

    >>> str(make_multicast_group(1))
    'ff1e::1'
    """
    if not 0 < group_id < 2**32:
        raise ValueError(f"group_id out of range: {group_id}")
    return Address(int(Address("ff1e::").as_int()) + group_id)
