"""Seeded, deterministic topology generation (ROADMAP item 1).

Everything before this module ran on the paper's hand-built Figure 1
network.  :mod:`repro.net.topogen` generates internet-scale topologies
as pure data — a frozen :class:`TopoGraph` of link/router/host specs —
and instantiates them into the existing :class:`~repro.net.topology.
Network` / :class:`~repro.net.link.Link` / node machinery:

* :func:`hierarchical_graph` — ISP-like trees with configurable
  fanout/depth (every router owns a "down" LAN its children attach
  to; the deepest LANs are the leaf links hosts home on),
* :func:`fattree_graph` — the k-ary fat-tree campus (core/aggregation/
  edge, one host LAN per edge router),
* :func:`waxman_graph` — the classic Waxman random graph on the unit
  square with a deterministic connectivity-repair pass (closest pair
  across components; never self-loops, never parallel links), plus one
  stub LAN per router for host placement,
* :func:`figure1_graph` — the paper's Figure 1 expressed as a
  TopoGraph, pinned equivalent to the hand-built network.

Determinism contract: a TopoGraph is a pure function of ``(model,
params, seed)``; its :meth:`~TopoGraph.digest` is the SHA-256 of the
canonical-JSON serialization, so *same seed ⇒ byte-identical graph*
and any structural drift is detectable.  The seed perturbs real data
(link-delay jitter, Waxman coordinates), so *different seeds ⇒
different digests* too.

Graphs are cached process-wide by canonical spec (:func:`topo_graph`):
``CampaignRunner`` pool workers persist across cells, so every cell
sharing a topology spec reuses one immutable graph instead of
regenerating it — the "shared read-only topology" of the issue.  The
mutable :class:`Network` is still instantiated per cell (simulation
mutates it), which is cheap relative to generation + routing.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.rng import derive_seed
from .addressing import Address, make_multicast_group
from .topology import Network

__all__ = [
    "AttachmentSpec",
    "GeneratedTopology",
    "HostSpec",
    "LinkSpec",
    "MODELS",
    "RouterSpec",
    "TopoGraph",
    "build_network",
    "clear_graph_cache",
    "fattree_graph",
    "figure1_graph",
    "hierarchical_graph",
    "topo_graph",
    "waxman_graph",
]

#: Supported generator models (the ``repro topo --model`` choices).
MODELS = ("hier", "fattree", "waxman", "figure1")

#: Host ids handed to routers on a shared link start at 1; generated
#: hosts start here so the two ranges can never collide.
HOST_ID_BASE = 4096


# ----------------------------------------------------------------------
# pure-data graph model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkSpec:
    """One link: name, IPv6 prefix, and physical parameters."""

    name: str
    prefix: str
    delay: float = 0.5e-3
    bandwidth_bps: float = 100e6


@dataclass(frozen=True)
class AttachmentSpec:
    """One router interface: which link, which host id on its prefix."""

    link: str
    host_id: int


@dataclass(frozen=True)
class RouterSpec:
    """One router and its ordered link attachments."""

    name: str
    attachments: Tuple[AttachmentSpec, ...]


@dataclass(frozen=True)
class HostSpec:
    """One pre-placed host (used by the Figure 1 graph)."""

    name: str
    home_link: str
    host_id: int


@dataclass(frozen=True)
class TopoGraph:
    """An immutable, canonically-serializable topology description.

    Construction order is part of the contract: links, routers (with
    their attachments), and hosts are instantiated in tuple order, so
    two equal graphs build behaviourally identical networks (node
    names, interface uids, RNG stream names all match).
    """

    model: str
    params: Tuple[Tuple[str, Any], ...]
    links: Tuple[LinkSpec, ...]
    routers: Tuple[RouterSpec, ...]
    #: link name -> home-agent router name (every link has one)
    home_agents: Tuple[Tuple[str, str], ...]
    #: links designated for host placement, generator order
    leaf_links: Tuple[str, ...]
    hosts: Tuple[HostSpec, ...] = ()

    # -- serialization / identity --------------------------------------
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "params": {k: v for k, v in self.params},
            "links": [
                [l.name, l.prefix, l.delay, l.bandwidth_bps] for l in self.links
            ],
            "routers": [
                [r.name, [[a.link, a.host_id] for a in r.attachments]]
                for r in self.routers
            ],
            "home_agents": [list(pair) for pair in self.home_agents],
            "leaf_links": list(self.leaf_links),
            "hosts": [[h.name, h.home_link, h.host_id] for h in self.hosts],
        }

    def digest(self) -> str:
        canonical = json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- structure queries ---------------------------------------------
    def ha_of(self, link_name: str) -> str:
        for link, router in self.home_agents:
            if link == link_name:
                return router
        raise KeyError(f"no home agent for link {link_name!r}")

    def routers_on(self) -> Dict[str, List[str]]:
        """link name -> router names attached, attachment order."""
        table: Dict[str, List[str]] = {l.name: [] for l in self.links}
        for router in self.routers:
            for att in router.attachments:
                table[att.link].append(router.name)
        return table

    def adjacency(self) -> Dict[str, List[str]]:
        """Router adjacency via shared links (deduplicated, ordered)."""
        on_link = self.routers_on()
        adj: Dict[str, List[str]] = {r.name: [] for r in self.routers}
        for members in on_link.values():
            for a in members:
                for b in members:
                    if a != b and b not in adj[a]:
                        adj[a].append(b)
        return adj

    def is_connected(self) -> bool:
        if not self.routers:
            return False
        adj = self.adjacency()
        seen = {self.routers[0].name}
        frontier = [self.routers[0].name]
        while frontier:
            nxt: List[str] = []
            for name in frontier:
                for peer in adj[name]:
                    if peer not in seen:
                        seen.add(peer)
                        nxt.append(peer)
            frontier = nxt
        return len(seen) == len(self.routers)

    def diameter_estimate(self) -> int:
        """Double-BFS lower bound on the router-hop diameter."""
        adj = self.adjacency()
        if not adj:
            return 0

        def bfs(start: str) -> Tuple[str, int]:
            dist = {start: 0}
            frontier = [start]
            far, far_d = start, 0
            while frontier:
                nxt: List[str] = []
                for name in frontier:
                    for peer in adj[name]:
                        if peer not in dist:
                            dist[peer] = dist[name] + 1
                            if dist[peer] > far_d:
                                far, far_d = peer, dist[peer]
                            nxt.append(peer)
                frontier = nxt
            return far, far_d

        far, _ = bfs(self.routers[0].name)
        _, diameter = bfs(far)
        return diameter

    def validate(self) -> None:
        """Raise ``ValueError`` on structural inconsistencies."""
        link_names = [l.name for l in self.links]
        if len(set(link_names)) != len(link_names):
            raise ValueError("duplicate link names")
        router_names = [r.name for r in self.routers]
        if len(set(router_names)) != len(router_names):
            raise ValueError("duplicate router names")
        known = set(link_names)
        used_ids: Dict[str, set] = {name: set() for name in link_names}
        for router in self.routers:
            att_links = [a.link for a in router.attachments]
            if len(set(att_links)) != len(att_links):
                raise ValueError(f"router {router.name} attaches a link twice")
            for att in router.attachments:
                if att.link not in known:
                    raise ValueError(f"unknown link {att.link!r}")
                if att.host_id in used_ids[att.link]:
                    raise ValueError(
                        f"host id {att.host_id} reused on link {att.link}"
                    )
                used_ids[att.link].add(att.host_id)
        for host in self.hosts:
            if host.home_link not in known:
                raise ValueError(f"unknown home link {host.home_link!r}")
            if host.host_id in used_ids[host.home_link]:
                raise ValueError(
                    f"host id {host.host_id} reused on link {host.home_link}"
                )
            used_ids[host.home_link].add(host.host_id)
        ha_links = [link for link, _ in self.home_agents]
        if len(set(ha_links)) != len(ha_links):
            raise ValueError("duplicate home-agent assignment")
        on_link = self.routers_on()
        for link, router in self.home_agents:
            if router not in on_link.get(link, []):
                raise ValueError(f"home agent {router} not attached to {link}")
        for leaf in self.leaf_links:
            if leaf not in known:
                raise ValueError(f"unknown leaf link {leaf!r}")

    def describe(self) -> Dict[str, Any]:
        """Machine-readable summary (the ``repro topo`` payload)."""
        degrees = [len(r.attachments) for r in self.routers]
        return {
            "model": self.model,
            "params": self.params_dict(),
            "routers": len(self.routers),
            "links": len(self.links),
            "leaf_links": len(self.leaf_links),
            "interfaces": sum(degrees),
            "hosts": len(self.hosts),
            "degree": {
                "min": min(degrees) if degrees else 0,
                "max": max(degrees) if degrees else 0,
                "mean": (sum(degrees) / len(degrees)) if degrees else 0.0,
            },
            "connected": self.is_connected(),
            "diameter_estimate": self.diameter_estimate(),
            "digest": self.digest(),
        }


# ----------------------------------------------------------------------
# generator helpers
# ----------------------------------------------------------------------
def _prefix_for(index: int) -> str:
    """Unique /64 per link index (disjoint from the paper's 2001:db8:i::)."""
    hi = (index >> 16) & 0xFFFF
    lo = index & 0xFFFF
    return f"2001:db8:{hi + 16:x}:{lo:x}::/64"


def _jittered(base: float, jitter: float, rng: random.Random) -> float:
    """A link delay perturbed by the topology seed (rounded so the
    canonical JSON is stable against float-repr surprises)."""
    if jitter <= 0:
        return base
    return round(base * (1.0 + jitter * (2.0 * rng.random() - 1.0)), 9)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def hierarchical_graph(
    depth: int = 3,
    fanout: int = 4,
    seed: int = 0,
    link_delay: float = 0.5e-3,
    link_bandwidth_bps: float = 100e6,
    delay_jitter: float = 0.2,
) -> TopoGraph:
    """ISP-like tree: a core LAN, ``fanout`` children per router,
    ``depth`` levels below the core.  Routers: fanout + fanout² + ... +
    fanout^depth (fanout=10, depth=3 → 1110).  Each router owns a
    "down" LAN; the deepest LANs are the leaf links."""
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be >= 1")
    rng = random.Random(derive_seed(seed, "topogen.hier"))
    links: List[LinkSpec] = [
        LinkSpec(
            "core",
            _prefix_for(0),
            delay=_jittered(link_delay, delay_jitter, rng),
            bandwidth_bps=link_bandwidth_bps,
        )
    ]
    routers: List[RouterSpec] = []
    home_agents: List[Tuple[str, str]] = []
    leaf_links: List[str] = []
    #: routers attached so far per link (for host-id assignment)
    attach_count: Dict[str, int] = {"core": 0}

    parents: List[Tuple[str, str]] = [("", "core")]  # (router name, down link)
    number = 0
    for level in range(1, depth + 1):
        next_parents: List[Tuple[str, str]] = []
        for _, up_link in parents:
            for _ in range(fanout):
                name = f"r{number:04d}"
                number += 1
                down_link = f"d{number - 1:04d}"
                links.append(
                    LinkSpec(
                        down_link,
                        _prefix_for(len(links)),
                        delay=_jittered(link_delay, delay_jitter, rng),
                        bandwidth_bps=link_bandwidth_bps,
                    )
                )
                attach_count[up_link] += 1
                attach_count[down_link] = 1
                routers.append(
                    RouterSpec(
                        name,
                        (
                            AttachmentSpec(up_link, attach_count[up_link]),
                            AttachmentSpec(down_link, 1),
                        ),
                    )
                )
                home_agents.append((down_link, name))
                if level == depth:
                    leaf_links.append(down_link)
                else:
                    next_parents.append((name, down_link))
        parents = next_parents
    home_agents.insert(0, ("core", routers[0].name))
    return TopoGraph(
        model="hier",
        params=(
            ("depth", depth),
            ("fanout", fanout),
            ("seed", seed),
            ("link_delay", link_delay),
            ("link_bandwidth_bps", link_bandwidth_bps),
            ("delay_jitter", delay_jitter),
        ),
        links=tuple(links),
        routers=tuple(routers),
        home_agents=tuple(home_agents),
        leaf_links=tuple(leaf_links),
    )


def fattree_graph(
    k: int = 4,
    seed: int = 0,
    link_delay: float = 0.5e-3,
    link_bandwidth_bps: float = 100e6,
    delay_jitter: float = 0.2,
) -> TopoGraph:
    """The k-ary fat-tree campus: (k/2)² core routers, k pods of k/2
    aggregation + k/2 edge routers, one host LAN per edge router."""
    if k < 2 or k % 2:
        raise ValueError("fat-tree k must be even and >= 2")
    rng = random.Random(derive_seed(seed, "topogen.fattree"))
    half = k // 2
    links: List[LinkSpec] = []
    routers: Dict[str, List[AttachmentSpec]] = {}
    home_agents: List[Tuple[str, str]] = []
    leaf_links: List[str] = []
    attach_count: Dict[str, int] = {}

    def new_link(name: str) -> None:
        links.append(
            LinkSpec(
                name,
                _prefix_for(len(links)),
                delay=_jittered(link_delay, delay_jitter, rng),
                bandwidth_bps=link_bandwidth_bps,
            )
        )
        attach_count[name] = 0

    def attach(router: str, link: str) -> None:
        attach_count[link] += 1
        routers.setdefault(router, []).append(
            AttachmentSpec(link, attach_count[link])
        )

    core_names = [f"c{i:02d}" for i in range(half * half)]
    for name in core_names:
        routers[name] = []
    for pod in range(k):
        for j in range(half):
            agg = f"a{pod:02d}-{j}"
            routers[agg] = []
            # one p2p link per (agg, core) pair: agg j of every pod
            # reaches core routers j*half .. j*half+half-1
            for c in range(half):
                core = core_names[j * half + c]
                link_name = f"ca{pod:02d}-{j}-{c}"
                new_link(link_name)
                attach(core, link_name)
                attach(agg, link_name)
                home_agents.append((link_name, core))
        for j in range(half):
            edge = f"e{pod:02d}-{j}"
            routers[edge] = []
            for a in range(half):
                agg = f"a{pod:02d}-{a}"
                link_name = f"ae{pod:02d}-{a}-{j}"
                new_link(link_name)
                attach(agg, link_name)
                attach(edge, link_name)
                home_agents.append((link_name, agg))
            lan = f"lan{pod:02d}-{j}"
            new_link(lan)
            attach(edge, lan)
            home_agents.append((lan, edge))
            leaf_links.append(lan)
    ordered = (
        core_names
        + [f"a{p:02d}-{j}" for p in range(k) for j in range(half)]
        + [f"e{p:02d}-{j}" for p in range(k) for j in range(half)]
    )
    return TopoGraph(
        model="fattree",
        params=(
            ("k", k),
            ("seed", seed),
            ("link_delay", link_delay),
            ("link_bandwidth_bps", link_bandwidth_bps),
            ("delay_jitter", delay_jitter),
        ),
        links=tuple(links),
        routers=tuple(
            RouterSpec(name, tuple(routers[name])) for name in ordered
        ),
        home_agents=tuple(home_agents),
        leaf_links=tuple(leaf_links),
    )


def waxman_graph(
    n: int = 50,
    alpha: float = 0.9,
    beta: float = 0.25,
    seed: int = 0,
    link_delay: float = 0.5e-3,
    link_bandwidth_bps: float = 100e6,
    delay_per_unit: float = 5e-3,
) -> TopoGraph:
    """Waxman random graph: n routers at seeded positions on the unit
    square; edge (u,v) with probability ``alpha·exp(−d/(beta·L))`` where
    L is the maximum pairwise distance.  A deterministic repair pass
    joins components by their closest router pair, so the result is
    always connected with no self-loops or parallel links.  Each router
    also gets one stub LAN (the leaf links); p2p delays grow with
    euclidean distance."""
    if n < 1:
        raise ValueError("waxman n must be >= 1")
    if not (0 < alpha <= 1) or beta <= 0:
        raise ValueError("waxman needs 0 < alpha <= 1 and beta > 0")
    rng = random.Random(derive_seed(seed, "topogen.waxman"))
    coords = [(rng.random(), rng.random()) for _ in range(n)]

    def dist(u: int, v: int) -> float:
        dx = coords[u][0] - coords[v][0]
        dy = coords[u][1] - coords[v][1]
        return math.sqrt(dx * dx + dy * dy)

    scale = max(
        (dist(u, v) for u in range(n) for v in range(u + 1, n)), default=1.0
    )
    scale = scale or 1.0
    edges: List[Tuple[int, int]] = []
    edge_set = set()
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < alpha * math.exp(-dist(u, v) / (beta * scale)):
                edges.append((u, v))
                edge_set.add((u, v))

    # repair pass: union-find, then bridge closest pairs across components
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for u, v in edges:
        union(u, v)
    while True:
        roots = {find(i) for i in range(n)}
        if len(roots) <= 1:
            break
        best: Optional[Tuple[float, int, int]] = None
        main_root = find(0)
        for u in range(n):
            if find(u) != main_root:
                continue
            for v in range(n):
                if find(v) == main_root:
                    continue
                d = dist(u, v)
                if best is None or d < best[0]:
                    best = (d, u, v)
        assert best is not None
        _, u, v = best
        pair = (min(u, v), max(u, v))
        assert pair not in edge_set and pair[0] != pair[1]
        edges.append(pair)
        edge_set.add(pair)
        union(u, v)

    links: List[LinkSpec] = []
    router_atts: List[List[AttachmentSpec]] = [[] for _ in range(n)]
    home_agents: List[Tuple[str, str]] = []
    attach_count: Dict[str, int] = {}

    def attach(r: int, link: str) -> None:
        attach_count[link] = attach_count.get(link, 0) + 1
        router_atts[r].append(AttachmentSpec(link, attach_count[link]))

    for idx, (u, v) in enumerate(edges):
        name = f"w{idx:04d}"
        links.append(
            LinkSpec(
                name,
                _prefix_for(len(links)),
                delay=round(link_delay + delay_per_unit * dist(u, v), 9),
                bandwidth_bps=link_bandwidth_bps,
            )
        )
        attach(u, name)
        attach(v, name)
        home_agents.append((name, f"r{u:04d}" if u < v else f"r{v:04d}"))
    leaf_links: List[str] = []
    for r in range(n):
        lan = f"lan{r:04d}"
        links.append(
            LinkSpec(
                lan,
                _prefix_for(len(links)),
                delay=round(link_delay, 9),
                bandwidth_bps=link_bandwidth_bps,
            )
        )
        attach(r, lan)
        home_agents.append((lan, f"r{r:04d}"))
        leaf_links.append(lan)
    return TopoGraph(
        model="waxman",
        params=(
            ("n", n),
            ("alpha", alpha),
            ("beta", beta),
            ("seed", seed),
            ("link_delay", link_delay),
            ("link_bandwidth_bps", link_bandwidth_bps),
            ("delay_per_unit", delay_per_unit),
        ),
        links=tuple(links),
        routers=tuple(
            RouterSpec(f"r{r:04d}", tuple(router_atts[r])) for r in range(n)
        ),
        home_agents=tuple(home_agents),
        leaf_links=tuple(leaf_links),
    )


def figure1_graph() -> TopoGraph:
    """The paper's Figure 1 network as a TopoGraph.

    Mirrors ``repro.core.paper_topology`` exactly (same names, same
    construction order, same host ids), so building it yields a network
    behaviourally identical to :func:`build_paper_network` — the
    equivalence fixture pins this.
    """
    from ..core.paper_topology import (
        HOME_AGENT_OF_LINK,
        HOST_HOMES,
        LINK_PREFIXES,
        ROUTER_HOST_IDS,
        ROUTER_LINKS,
    )

    links = tuple(
        LinkSpec(name, prefix) for name, prefix in LINK_PREFIXES.items()
    )
    routers = tuple(
        RouterSpec(
            name,
            tuple(
                AttachmentSpec(link, ROUTER_HOST_IDS[name])
                for link in link_names
            ),
        )
        for name, link_names in ROUTER_LINKS.items()
    )
    hosts = tuple(
        HostSpec(name, home_link, host_id)
        for name, (home_link, _ha, host_id) in HOST_HOMES.items()
    )
    return TopoGraph(
        model="figure1",
        params=(),
        links=links,
        routers=routers,
        home_agents=tuple(HOME_AGENT_OF_LINK.items()),
        leaf_links=("L1", "L2", "L4", "L5", "L6"),
        hosts=hosts,
    )


# ----------------------------------------------------------------------
# shared read-only graph cache
# ----------------------------------------------------------------------
_GRAPH_CACHE: Dict[str, TopoGraph] = {}


def _spec_key(spec: Dict[str, Any]) -> str:
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def topo_graph(spec: Dict[str, Any]) -> TopoGraph:
    """Resolve a JSON-able ``{"model": ..., **params}`` spec to a graph.

    Results are cached per process keyed by the canonical spec, so
    campaign pool workers (which persist across cells) reuse one
    immutable graph for every cell sharing a topology instead of
    rebuilding it per cell.
    """
    key = _spec_key(spec)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        params = dict(spec)
        model = params.pop("model")
        if model == "hier":
            graph = hierarchical_graph(**params)
        elif model == "fattree":
            graph = fattree_graph(**params)
        elif model == "waxman":
            graph = waxman_graph(**params)
        elif model == "figure1":
            if params:
                raise ValueError("figure1 takes no parameters")
            graph = figure1_graph()
        else:
            raise ValueError(f"unknown topology model {model!r}")
        _GRAPH_CACHE[key] = graph
    return graph


def clear_graph_cache() -> None:
    _GRAPH_CACHE.clear()


# ----------------------------------------------------------------------
# instantiation + placement
# ----------------------------------------------------------------------
@dataclass
class GeneratedTopology:
    """A built network plus placement helpers for HAs, sources, and
    mobile-receiver populations."""

    graph: TopoGraph
    net: Network
    routers: Dict[str, Any] = field(default_factory=dict)
    hosts: Dict[str, Any] = field(default_factory=dict)
    _host_serial: int = 0
    _mld_config: Any = None
    _mipv6_config: Any = None
    _recv_mode: Any = None
    _send_mode: Any = None

    # -- sugar ----------------------------------------------------------
    def router(self, name: str):
        return self.routers[name]

    def host(self, name: str):
        return self.hosts[name]

    @property
    def leaf_links(self) -> Tuple[str, ...]:
        return self.graph.leaf_links

    def home_agent_on(self, link_name: str):
        return self.routers[self.graph.ha_of(link_name)]

    # -- placement ------------------------------------------------------
    def add_host(self, name: str, link_name: str, host_id: Optional[int] = None):
        """Home one mobile host on ``link_name`` (HA per the graph)."""
        from ..mipv6 import MobileNode

        if host_id is None:
            host_id = HOST_ID_BASE + self._host_serial
        self._host_serial += 1
        link = self.net.link(link_name)
        ha = self.home_agent_on(link_name)
        host = MobileNode(
            self.net.sim,
            name,
            tracer=self.net.tracer,
            rng=self.net.rng,
            home_link=link,
            home_agent_address=ha.address_on(link),
            host_id=host_id,
            config=self._mipv6_config,
            mld_config=self._mld_config,
            recv_mode=self._recv_mode,
            send_mode=self._send_mode,
        )
        self.net.register_node(host)
        self.hosts[name] = host
        return host

    def place_source(self, name: str = "src", link_name: Optional[str] = None):
        """Home a sender on a leaf link (the first one by default)."""
        return self.add_host(name, link_name or self.graph.leaf_links[0])

    def place_receivers(
        self,
        count: int,
        name_prefix: str = "m",
        links: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """Home ``count`` mobile receivers round-robin over the leaf
        links (deterministic: placement is a pure function of count
        and link order)."""
        pool = list(links) if links is not None else list(self.graph.leaf_links)
        if not pool:
            raise ValueError("topology has no leaf links for receivers")
        return [
            self.add_host(f"{name_prefix}{i:05d}", pool[i % len(pool)])
            for i in range(count)
        ]

    def schedule_joins(
        self,
        hosts: Iterable[Any],
        group: Address,
        start: float = 1.0,
        spread: float = 5.0,
        stream: str = "topogen.joins",
    ) -> None:
        """Schedule each host's group join at a seeded time in
        ``[start, start + spread)``."""
        rng = self.net.rng.stream(stream)
        for host in hosts:
            at = start + rng.uniform(0.0, spread)
            self.net.sim.schedule_at(
                at, host.join_group, group, label=f"{host.name}.join"
            )

    def schedule_moves(
        self,
        hosts: Sequence[Any],
        moves_per_host: float,
        start: float,
        horizon: float,
        stream: str = "topogen.moves",
    ) -> int:
        """Schedule seeded handovers: on average ``moves_per_host``
        uniform moves per host to a uniformly-chosen other leaf link in
        ``[start, horizon)``.  Returns the number scheduled."""
        if moves_per_host <= 0 or horizon <= start or len(self.graph.leaf_links) < 2:
            return 0
        rng = self.net.rng.stream(stream)
        scheduled = 0
        for host in hosts:
            n = int(moves_per_host)
            if rng.uniform(0.0, 1.0) < (moves_per_host - n):
                n += 1
            for _ in range(n):
                at = start + rng.uniform(0.0, horizon - start)
                target = rng.choice(
                    [l for l in self.graph.leaf_links if l != host.home_link.name]
                )
                self.net.sim.schedule_at(
                    at,
                    host.move_to,
                    self.net.link(target),
                    label=f"{host.name}.move",
                )
                scheduled += 1
        return scheduled

    def make_group(self, group_id: int = 1) -> Address:
        return make_multicast_group(group_id)

    def tree_links(self, source: Address, group: Address) -> Dict[str, List[str]]:
        """Per-router forwarding links — the live distribution tree."""
        return {
            name: router.pim.forwarding_links(source, group)
            for name, router in sorted(self.routers.items())
        }

    def as_paper_network(self, group: Optional[Address] = None):
        """A :class:`~repro.core.paper_topology.PaperNetwork` view over
        this built topology (for the Figure 1 equivalence fixture and
        anything written against the hand-built API)."""
        from ..core.paper_topology import PaperNetwork

        return PaperNetwork(
            net=self.net,
            group=group if group is not None else make_multicast_group(1),
            routers=dict(self.routers),
            hosts=dict(self.hosts),
        )


def build_network(
    graph: TopoGraph,
    seed: int = 0,
    pim_config=None,
    mld_config=None,
    mipv6_config=None,
    recv_mode=None,
    send_mode=None,
    trace_link_events: bool = False,
) -> GeneratedTopology:
    """Instantiate ``graph`` into a fresh :class:`Network`.

    Every router is a :class:`~repro.mipv6.HomeAgent` (PIM-DM + MLD +
    HA duty, as in the paper where each link has a designated home
    agent); pre-placed hosts (Figure 1) become
    :class:`~repro.mipv6.MobileNode`\\ s.  Construction follows graph
    order exactly, so equal graphs yield identical networks.
    """
    from ..mipv6 import DeliveryMode, HomeAgent, MobileNode

    recv_mode = DeliveryMode.LOCAL if recv_mode is None else recv_mode
    send_mode = DeliveryMode.LOCAL if send_mode is None else send_mode
    net = Network(seed=seed, trace_link_events=trace_link_events)
    built = GeneratedTopology(
        graph=graph,
        net=net,
        _mld_config=mld_config,
        _mipv6_config=mipv6_config,
        _recv_mode=recv_mode,
        _send_mode=send_mode,
    )
    for spec in graph.links:
        net.add_link(
            spec.name,
            spec.prefix,
            delay=spec.delay,
            bandwidth_bps=spec.bandwidth_bps,
        )
    for rspec in graph.routers:
        router = HomeAgent(
            net.sim,
            rspec.name,
            tracer=net.tracer,
            rng=net.rng,
            pim_config=pim_config,
            mld_config=mld_config,
            mipv6_config=mipv6_config,
        )
        for att in rspec.attachments:
            link = net.link(att.link)
            router.attach_to(link, link.prefix.address_for_host(att.host_id))
        net.register_node(router)
        net.on_start(router.start)
        built.routers[rspec.name] = router
    for hspec in graph.hosts:
        link = net.link(hspec.home_link)
        ha = built.routers[graph.ha_of(hspec.home_link)]
        host = MobileNode(
            net.sim,
            hspec.name,
            tracer=net.tracer,
            rng=net.rng,
            home_link=link,
            home_agent_address=ha.address_on(link),
            host_id=hspec.host_id,
            config=mipv6_config,
            mld_config=mld_config,
            recv_mode=recv_mode,
            send_mode=send_mode,
        )
        net.register_node(host)
        built.hosts[hspec.name] = host
    return built
