"""Topology container: links + nodes + route computation + lifecycle.

A :class:`Network` bundles the simulator, tracer, statistics, RNG, the
links and nodes, and provides:

* builders (``add_link``), registration for routers/hosts built by the
  protocol packages,
* unicast route computation (router FIBs + host default behaviour),
* a ``start()`` that boots every registered protocol engine
  (PIM-DM Hellos, MLD queriers, traffic sources),
* shortest-path queries used by the routing-optimality metric (§4.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..sim import RngRegistry, Simulator, Tracer
from .addressing import Address, Prefix
from .link import Link
from .node import Node
from .packet import reset_packet_uids
from .routing import compute_router_fibs
from .stats import NetworkStats

__all__ = ["Network"]


class Network:
    """The simulated network under test."""

    def __init__(
        self,
        seed: int = 0,
        trace_link_events: bool = False,
    ) -> None:
        reset_packet_uids()
        # Runtime import: repro.traffic sits above the net layer (its
        # sources route through mipv6/node APIs), so the flow-name
        # counter reset cannot be a module-level dependency here.
        from ..traffic.sources import reset_flow_counter

        reset_flow_counter()
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        disabled = () if trace_link_events else ("link",)
        self.tracer = Tracer(self.sim, disabled_categories=disabled)
        self.stats = NetworkStats()
        self.links: Dict[str, Link] = {}
        self.nodes: Dict[str, Node] = {}
        self._startables: List[Callable[[], None]] = []
        self._started = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_link(
        self,
        name: str,
        prefix: Prefix | str,
        delay: float = 0.5e-3,
        bandwidth_bps: float = 100e6,
        loss_rate: float = 0.0,
    ) -> Link:
        if name in self.links:
            raise ValueError(f"duplicate link {name!r}")
        link = Link(
            self.sim,
            name,
            Prefix(prefix),
            delay=delay,
            bandwidth_bps=bandwidth_bps,
            tracer=self.tracer,
            stats=self.stats,
            loss_rate=loss_rate,
            rng=self.rng,
        )
        self.links[name] = link
        return link

    def register_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def on_start(self, fn: Callable[[], None]) -> None:
        """Register a protocol engine/traffic source boot hook."""
        self._startables.append(fn)
        if self._started:
            fn()

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def link(self, name: str) -> Link:
        return self.links[name]

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def routers(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_router]

    def hosts(self) -> List[Node]:
        return [n for n in self.nodes.values() if not n.is_router]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """(Re)compute every router's FIB from the current topology."""
        for router in self.routers():
            router.routing.clear()
        compute_router_fibs(self.routers(), list(self.links.values()))

    def shortest_path_links(self, from_link: str, to_link: str) -> int:
        """Minimum number of links a packet crosses from a host on
        ``from_link`` to a host on ``to_link`` (1 when equal: the link
        itself).  Used to compute routing stretch (§4.3 optimality)."""
        if from_link == to_link:
            return 1
        # BFS over links via routers.
        dist = {from_link: 1}
        frontier = [from_link]
        while frontier:
            nxt: List[str] = []
            for link_name in frontier:
                link = self.links[link_name]
                for iface in link.interfaces:
                    node = iface.node
                    if not node.is_router:
                        continue
                    for other in node.interfaces:
                        if other.link is None:
                            continue
                        name = other.link.name
                        if name not in dist:
                            dist[name] = dist[link_name] + 1
                            nxt.append(name)
            frontier = nxt
        if to_link not in dist:
            raise ValueError(f"no path {from_link} -> {to_link}")
        return dist[to_link]

    # ------------------------------------------------------------------
    # aggregate state accounting
    # ------------------------------------------------------------------
    def collect_state(self) -> Dict[str, int]:
        """Count live protocol-state entries across every node.

        Engines are duck-typed (``node.pim.state_counts()``,
        ``node.mld_router.membership_count()``, ``len(node.binding_cache)``)
        so the net layer keeps no protocol dependency.  The counts are
        recorded into :class:`NetworkStats` (peak-keeping) and returned;
        ``stats.state_snapshot()`` adds the modelled byte costs.
        """
        counts: Dict[str, int] = {
            "pim_sg": 0,
            "pim_downstream": 0,
            "pim_neighbor": 0,
            "mld_membership": 0,
            "mipv6_binding": 0,
        }
        for node in self.nodes.values():
            pim = getattr(node, "pim", None)
            if pim is not None:
                for kind, value in pim.state_counts().items():
                    counts[kind] = counts.get(kind, 0) + value
            mld_router = getattr(node, "mld_router", None)
            if mld_router is not None:
                counts["mld_membership"] += mld_router.membership_count()
            binding_cache = getattr(node, "binding_cache", None)
            if binding_cache is not None:
                counts["mipv6_binding"] += len(binding_cache)
        self.stats.record_state(counts)
        return counts

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot all protocol engines.  Idempotent."""
        if self._started:
            return
        self._started = True
        self.build_routes()
        for fn in self._startables:
            fn()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        if not self._started:
            self.start()
        self.sim.run(until=until, max_events=max_events)

    def run_for(self, duration: float) -> None:
        self.run(until=self.sim.now + duration)

    @property
    def now(self) -> float:
        return self.sim.now
