"""Observability: indexed trace store, metrics, profiling, trace export.

The measurement stack of the reproduction:

* :mod:`repro.obs.store` — :class:`TraceStore`, the indexed (and
  optionally ring-bounded) backing store behind
  :class:`repro.sim.trace.Tracer`,
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` with counters,
  gauges and histograms, fed live from the trace stream by
  :class:`TraceCollector`, Prometheus-text exposition,
* :mod:`repro.obs.profiler` — :class:`KernelProfiler`, per-label
  dispatch count / wall-clock aggregation inside the simulation
  kernel,
* :mod:`repro.obs.export` — JSONL trace export/import and
  :class:`TraceArchive` for offline re-analysis of saved runs,
* :mod:`repro.obs.spans` — causal span reconstruction: handover /
  graft / assert / prune-override transactions rebuilt from the trace
  stream (live via :class:`SpanRecorder` or offline via
  :func:`build_spans`), with Chrome trace-event export.

See ``docs/OBSERVABILITY.md`` for the guided tour.
"""

from .export import (
    FORMAT_VERSION,
    TraceArchive,
    digest_events,
    event_record,
    export_run,
    import_run,
    read_events,
    summarize_mobility,
)
from .profiler import KernelProfiler, ProfileEntry, profiled
from .registry import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    TraceCollector,
)
from .spans import (
    HANDOVER_PHASES,
    SPAN_CATEGORIES,
    Span,
    SpanBuilder,
    SpanRecorder,
    build_spans,
    chrome_trace,
    find_span,
    iter_spans,
    spans_enabled,
    spans_to_json,
    write_chrome_trace,
)
from .store import TraceQueryMixin, TraceStore

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FORMAT_VERSION",
    "Gauge",
    "HANDOVER_PHASES",
    "Histogram",
    "KernelProfiler",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "ProfileEntry",
    "SPAN_CATEGORIES",
    "Span",
    "SpanBuilder",
    "SpanRecorder",
    "TraceArchive",
    "TraceCollector",
    "TraceQueryMixin",
    "TraceStore",
    "build_spans",
    "chrome_trace",
    "digest_events",
    "event_record",
    "export_run",
    "find_span",
    "import_run",
    "iter_spans",
    "profiled",
    "read_events",
    "spans_enabled",
    "spans_to_json",
    "summarize_mobility",
    "write_chrome_trace",
]
