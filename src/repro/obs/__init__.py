"""Observability: indexed trace store, metrics, profiling, trace export.

The measurement stack of the reproduction:

* :mod:`repro.obs.store` — :class:`TraceStore`, the indexed (and
  optionally ring-bounded) backing store behind
  :class:`repro.sim.trace.Tracer`,
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` with counters,
  gauges and histograms, fed live from the trace stream by
  :class:`TraceCollector`, Prometheus-text exposition,
* :mod:`repro.obs.profiler` — :class:`KernelProfiler`, per-label
  dispatch count / wall-clock aggregation inside the simulation
  kernel,
* :mod:`repro.obs.export` — JSONL trace export/import and
  :class:`TraceArchive` for offline re-analysis of saved runs.

See ``docs/OBSERVABILITY.md`` for the guided tour.
"""

from .export import (
    FORMAT_VERSION,
    TraceArchive,
    digest_events,
    event_record,
    export_run,
    import_run,
    read_events,
    summarize_mobility,
)
from .profiler import KernelProfiler, ProfileEntry, profiled
from .registry import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    TraceCollector,
)
from .store import TraceQueryMixin, TraceStore

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FORMAT_VERSION",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "ProfileEntry",
    "TraceArchive",
    "TraceCollector",
    "TraceQueryMixin",
    "TraceStore",
    "digest_events",
    "event_record",
    "export_run",
    "import_run",
    "profiled",
    "read_events",
    "summarize_mobility",
]
