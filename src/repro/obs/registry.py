"""Metrics registry: counters, gauges, histograms, text exposition.

A light Prometheus-style registry fed *live* from the trace stream
(via :class:`TraceCollector` hooked into ``Tracer.add_listener``) and
from point-in-time publishers (``NetworkStats.publish_to``,
``ScenarioMetrics.publish``).  No external dependency: exposition is
plain text in the Prometheus 0.0.4 format, good enough to diff in
tests and scrape off disk.

Metric families are created idempotently::

    registry = MetricsRegistry()
    prunes = registry.counter("repro_protocol_events_total",
                              label_names=("category", "event"))
    prunes.labels(category="pim", event="prune-sent").inc()
    print(registry.render_prometheus())
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "TraceCollector",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
]

#: General-purpose bucket boundaries (seconds-ish magnitudes).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 125.0, 260.0,
)

#: Sub-second boundaries for per-packet delivery latency.
LATENCY_BUCKETS = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.5, 1.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        self.value += amount


class Gauge:
    """Set/inc/dec value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with sum and count.

    ``bucket_counts[i]`` counts observations in
    ``(boundaries[i-1], boundaries[i]]``; the final slot is +Inf.
    """

    __slots__ = ("boundaries", "bucket_counts", "sum", "count")

    def __init__(self, boundaries: Iterable[float]) -> None:
        bounds = tuple(sorted(boundaries))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative (le, count) pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for boundary, n in zip(self.boundaries, self.bucket_counts):
            running += n
            out.append((boundary, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float, interpolated: bool = True) -> Optional[float]:
        """Estimate of the q-quantile from bucket counts (None when
        empty).

        The default interpolates linearly within the containing bucket
        (the ``histogram_quantile`` estimate: observations assumed
        uniform across the bucket); ``interpolated=False`` restores the
        original bucket-upper-boundary mode.  ``q=0`` locates the first
        *non-empty* bucket — the observed minimum's bucket, not the
        lowest configured boundary.  Ranks landing in the +Inf overflow
        bucket clamp to the top finite boundary when interpolating
        (there is no upper edge to interpolate toward) and report
        ``inf`` in boundary mode.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return None
        bounds = self.boundaries

        def lower_edge(i: int) -> float:
            # Prometheus convention: the first bucket spans [0, bound].
            return bounds[i - 1] if i > 0 else min(0.0, bounds[0])

        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            cum += n
            if n == 0 or cum < rank:
                continue
            if i >= len(bounds):  # overflow bucket
                return bounds[-1] if interpolated else float("inf")
            if not interpolated:
                return bounds[i]
            if rank <= cum - n:  # q == 0: the bucket's low edge
                return lower_edge(i)
            fraction = (rank - (cum - n)) / n
            return lower_edge(i) + (bounds[i] - lower_edge(i)) * fraction
        return float("inf")  # pragma: no cover - defensive

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label schema and typed children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets)
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labels: Any):
        """The child for one label-value combination (created on use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self._buckets)
            else:
                child = _KINDS[self.kind]()
            self._children[key] = child
        return child

    # Label-less families act directly as their single child.
    def _solo(self):
        if self.label_names:
            raise ValueError(f"{self.name} has labels {self.label_names}; use .labels()")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def samples(self) -> Dict[Tuple[str, ...], Any]:
        return dict(self._children)


class MetricsRegistry:
    """Named metric families; snapshot and Prometheus-text exposition."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Iterable[str],
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        label_names = tuple(label_names)
        if family is not None:
            if family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.label_names}"
                )
            return family
        family = MetricFamily(name, kind, help, label_names, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, label_names, buckets)

    def get(self, name: str) -> MetricFamily:
        return self._families[name]

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data copy of every family: name -> {type, help, samples}.

        Sample keys are ``label=value`` comma-joined strings (empty for
        label-less metrics); histogram values are dicts with ``count``,
        ``sum`` and cumulative ``buckets``.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for family in self.families():
            samples: Dict[str, Any] = {}
            for key, child in sorted(family.samples().items()):
                label_str = ",".join(
                    f"{n}={v}" for n, v in zip(family.label_names, key)
                )
                if family.kind == "histogram":
                    samples[label_str] = {
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {
                            ("+Inf" if le == float("inf") else repr(le)): cum
                            for le, cum in child.cumulative()
                        },
                    }
                else:
                    samples[label_str] = child.value
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in sorted(family.samples().items()):
                labels = ",".join(
                    f'{n}="{_escape(v)}"' for n, v in zip(family.label_names, key)
                )
                if family.kind == "histogram":
                    for le, cum in child.cumulative():
                        le_str = "+Inf" if le == float("inf") else _fmt(le)
                        sep = "," if labels else ""
                        lines.append(
                            f'{family.name}_bucket{{{labels}{sep}le="{le_str}"}} {cum}'
                        )
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{family.name}_sum{suffix} {_fmt(child.sum)}")
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{family.name}{suffix} {_fmt(child.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class TraceCollector:
    """Live bridge from a :class:`~repro.sim.trace.Tracer` into a registry.

    Attach once per run::

        registry = MetricsRegistry()
        TraceCollector(registry).attach(net.tracer)

    It maintains

    * ``repro_trace_events_total{category}`` — every recorded event,
    * ``repro_protocol_events_total{category,event}`` — events carrying
      an ``event=`` detail (prune-sent, members-gone, attached, ...),
    * ``repro_delivery_latency_seconds`` — histogram of end-to-end
      multicast delivery latency from ``mcast.deliver`` records.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._events = registry.counter(
            "repro_trace_events_total",
            "Trace events recorded, by category",
            ("category",),
        )
        self._protocol = registry.counter(
            "repro_protocol_events_total",
            "Protocol events, by category and event kind",
            ("category", "event"),
        )
        self._latency = registry.histogram(
            "repro_delivery_latency_seconds",
            "End-to-end multicast delivery latency at receivers",
            buckets=LATENCY_BUCKETS,
        )

    def attach(self, tracer: Any) -> "TraceCollector":
        tracer.add_listener(self.on_event)
        return self

    def on_event(self, event: Any) -> None:
        self._events.labels(category=event.category).inc()
        kind = event.detail.get("event")
        if kind is not None:
            self._protocol.labels(category=event.category, event=str(kind)).inc()
        if event.category == "mcast.deliver":
            latency = event.detail.get("latency")
            if latency is not None:
                self._latency.observe(latency)
