"""Indexed trace storage.

The seed tracer kept every event in a flat list and answered every
query — ``query``/``first``/``last``/``count`` — by scanning the whole
list.  That scan is the hottest analysis path (every §4.3 metric is a
trace query) and an unbounded memory ceiling for long runs.

:class:`TraceStore` replaces the flat list with

* an append-only, time-ordered event array,
* per-**category** and per-**node** secondary indexes (sorted sequence
  numbers),
* **time bisection** inside any candidate index, so time-windowed
  queries touch only the matching span, and
* an optional **ring-buffer mode** (``capacity=N``): only the newest N
  events are retained, with amortized O(1) eviction, so multi-hour
  runs hold bounded memory.

Events are duck-typed: anything with ``time``/``category``/``node``
attributes (and a ``matches(**criteria)`` helper for detail filters)
can be stored.  This module deliberately has no ``repro.sim`` import
— the sim-side :class:`~repro.sim.trace.Tracer` layers on top of it.

Complexities (n = live events, k = events matching the used index):

===============================  ================================
operation                        cost
===============================  ================================
``append``                       amortized O(1)
``count(category=...)``          O(log k)
``count(category, since/until)`` O(log k)
``select`` iteration             O(log k + matches)
``count`` with detail criteria   O(k), not O(n)
===============================  ================================
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["TraceStore", "TraceQueryMixin"]

_EMPTY: Tuple[int, ...] = ()


class TraceStore:
    """Append-only event store with category/node/time indexes.

    ``capacity=None`` (default) retains every event — the indexed
    equivalent of the seed's flat list.  ``capacity=N`` keeps only the
    newest N events (ring-buffer mode); evicted events silently fall
    out of every index.
    """

    __slots__ = (
        "capacity",
        "_events",
        "_times",
        "_base",
        "_min_live",
        "_by_category",
        "_by_node",
    )

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        # Events live at _events[seq - _base]; sequence numbers are
        # global and monotone, which keeps index lists sorted and makes
        # ring eviction a pointer bump (_min_live) + lazy compaction.
        self._events: List[Any] = []
        self._times: List[float] = []
        self._base = 0  # seq of _events[0]
        self._min_live = 0  # seq of the oldest retained event
        self._by_category: Dict[str, List[int]] = {}
        self._by_node: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def append(self, event: Any) -> None:
        """Append one event.  Times must be non-decreasing (they come
        from a monotone simulation clock)."""
        time = event.time
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"out-of-order event: t={time!r} after t={self._times[-1]!r}"
            )
        seq = self._base + len(self._events)
        self._events.append(event)
        self._times.append(time)
        self._by_category.setdefault(event.category, []).append(seq)
        self._by_node.setdefault(event.node, []).append(seq)
        if self.capacity is not None and seq + 1 - self._min_live > self.capacity:
            self._min_live = seq + 1 - self.capacity
            # Compact once the dead prefix outweighs the live window so
            # eviction stays amortized O(1) and memory stays <= 2N.
            if self._min_live - self._base > self.capacity:
                self._compact()

    def _compact(self) -> None:
        drop = self._min_live - self._base
        if drop <= 0:
            return
        del self._events[:drop]
        del self._times[:drop]
        self._base = self._min_live
        for index in (self._by_category, self._by_node):
            for key in list(index):
                seqs = index[key]
                cut = bisect.bisect_left(seqs, self._base)
                if cut:
                    del seqs[:cut]
                if not seqs:
                    del index[key]

    def clear(self) -> None:
        self._events.clear()
        self._times.clear()
        self._base = 0
        self._min_live = 0
        self._by_category.clear()
        self._by_node.clear()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._base + len(self._events) - self._min_live

    @property
    def total_recorded(self) -> int:
        """Events ever appended, including ring-evicted ones."""
        return self._base + len(self._events)

    @property
    def evicted(self) -> int:
        """Events dropped by ring-buffer eviction."""
        return self._min_live

    @property
    def events(self) -> List[Any]:
        """The live events, oldest first.

        In unbounded mode this is the internal list (cheap, and
        source-compatible with the seed's ``tracer.events``); do not
        mutate it.  In ring mode it is a fresh copy of the live window.
        """
        start = self._min_live - self._base
        if start == 0:
            return self._events
        return self._events[start:]

    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def nodes(self) -> List[str]:
        return sorted(self._by_node)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def _candidates(
        self, category: Optional[str], node: Optional[str]
    ) -> Tuple[Sequence[int], Optional[Tuple[str, str]]]:
        """Pick the smallest applicable index; return (seqs, residual)
        where residual is an attribute filter the index can't cover."""
        if category is not None and node is not None:
            by_cat = self._by_category.get(category, _EMPTY)
            by_node = self._by_node.get(node, _EMPTY)
            if len(by_cat) <= len(by_node):
                return by_cat, ("node", node)
            return by_node, ("category", category)
        if category is not None:
            return self._by_category.get(category, _EMPTY), None
        if node is not None:
            return self._by_node.get(node, _EMPTY), None
        return range(self._min_live, self._base + len(self._events)), None

    def _time_of(self, seq: int) -> float:
        return self._times[seq - self._base]

    def _bisect_time(
        self, seqs: Sequence[int], lo: int, hi: int, t: float, right: bool
    ) -> int:
        """First index in seqs[lo:hi] whose event time is >= t (or > t
        when ``right``), by binary search through the times array."""
        while lo < hi:
            mid = (lo + hi) // 2
            tm = self._time_of(seqs[mid])
            if tm < t or (right and tm == t):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _window(
        self, seqs: Sequence[int], since: Optional[float], until: Optional[float]
    ) -> Tuple[int, int]:
        lo = bisect.bisect_left(seqs, self._min_live)
        hi = len(seqs)
        if since is not None:
            lo = self._bisect_time(seqs, lo, hi, since, right=False)
        if until is not None:
            hi = self._bisect_time(seqs, lo, hi, until, right=True)
        return lo, hi

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        reverse: bool = False,
    ) -> Iterator[Any]:
        """Iterate matching events in time order (or reversed)."""
        seqs, residual = self._candidates(category, node)
        lo, hi = self._window(seqs, since, until)
        indices = range(hi - 1, lo - 1, -1) if reverse else range(lo, hi)
        events = self._events
        base = self._base
        if residual is None:
            for i in indices:
                yield events[seqs[i] - base]
        else:
            attr, wanted = residual
            for i in indices:
                event = events[seqs[i] - base]
                if getattr(event, attr) == wanted:
                    yield event

    def count(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> int:
        """Matching-event count; O(log k) unless both category and node
        are constrained (then the smaller index is walked)."""
        seqs, residual = self._candidates(category, node)
        lo, hi = self._window(seqs, since, until)
        if residual is None:
            return hi - lo
        attr, wanted = residual
        events = self._events
        base = self._base
        return sum(
            1 for i in range(lo, hi) if getattr(events[seqs[i] - base], attr) == wanted
        )


class TraceQueryMixin:
    """The tracer query API over an underlying :class:`TraceStore`.

    Shared by the live :class:`~repro.sim.trace.Tracer` and the offline
    :class:`~repro.obs.export.TraceArchive`, so analysis code written
    against one runs unchanged against the other.  Subclasses provide
    ``self._store``.
    """

    _store: TraceStore

    @property
    def events(self) -> List[Any]:
        return self._store.events

    def query(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **criteria: Any,
    ) -> Iterator[Any]:
        """Iterate events filtered by category / node / time / detail."""
        selected = self._store.select(category, node, since, until)
        if not criteria:
            yield from selected
        else:
            for event in selected:
                if event.matches(**criteria):
                    yield event

    def first(self, category: Optional[str] = None, **kw: Any) -> Optional[Any]:
        """First matching event, or None."""
        return next(self.query(category, **kw), None)

    def last(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **criteria: Any,
    ) -> Optional[Any]:
        """Last matching event, or None (reverse index walk, not a full
        forward scan like the seed)."""
        for event in self._store.select(category, node, since, until, reverse=True):
            if not criteria or event.matches(**criteria):
                return event
        return None

    def count(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **criteria: Any,
    ) -> int:
        """Number of matching events."""
        if not criteria:
            return self._store.count(category, node, since, until)
        return sum(
            1
            for event in self._store.select(category, node, since, until)
            if event.matches(**criteria)
        )

    def clear(self) -> None:
        self._store.clear()
